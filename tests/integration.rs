//! Cross-crate integration tests: full-machine behaviour spanning the
//! DRAM model, memory controller, cache, OS, and workloads.

use hammertime::machine::{Machine, MachineConfig};
use hammertime::scenario::{AttackTargeting, BenignKind, CloudScenario};
use hammertime::taxonomy::DefenseKind;
use hammertime_common::DomainId;
use hammertime_workloads::{DmaHammer, HammerPattern, StreamWorkload};

/// The headline reproduction: an undefended multi-tenant host lets one
/// tenant corrupt another's memory; every taxonomy class prevents it.
#[test]
fn one_defense_per_class_stops_the_attack() {
    let cases = [
        DefenseKind::SubarrayIsolation,  // isolation-centric (§4.1)
        DefenseKind::AggressorRemap,     // frequency-centric (§4.2)
        DefenseKind::VictimRefreshInstr, // refresh-centric (§4.3)
    ];
    // Undefended baseline flips.
    let mut s = CloudScenario::build(MachineConfig::fast(DefenseKind::None, 24)).unwrap();
    s.arm_double_sided(3_000).unwrap();
    s.run_windows(40);
    let baseline = s.report();
    assert!(
        baseline.cross_flips_against(2) > 0,
        "baseline must be vulnerable"
    );

    for defense in cases {
        assert!(defense.class().is_some());
        let mut s = CloudScenario::build(MachineConfig::fast(defense, 24)).unwrap();
        s.arm_double_sided(3_000).unwrap();
        s.run_windows(40);
        let r = s.report();
        assert_eq!(
            r.cross_flips_against(2),
            0,
            "{defense} must protect the victim (class {:?})",
            defense.class()
        );
    }
}

/// Isolation physically removes cross-domain adjacency; the attacker
/// can still flip bits, but only inside its own allocation.
#[test]
fn subarray_isolation_confines_flips_to_attacker() {
    let mut s =
        CloudScenario::build_sized(MachineConfig::fast(DefenseKind::SubarrayIsolation, 24), 4)
            .unwrap();
    let targeting = s.arm_double_sided(4_000).unwrap();
    assert_eq!(targeting, AttackTargeting::IntraDomainOnly);
    s.run_windows(60);
    let r = s.report();
    assert_eq!(r.cross_flips_against(2), 0);
    // Intra-domain flips may exist (the paper notes isolation doesn't
    // stop self-disturbance); every victim must be the attacker.
    for (&victim, &count) in &r.flips_by_victim {
        if count > 0 {
            assert_eq!(victim, 1, "flip landed outside the attacker's domain");
        }
    }
}

/// The MC records subarray-group ownership for the host/MC contract.
#[test]
fn subarray_group_ownership_is_registered() {
    let mut m = Machine::new(MachineConfig::fast(DefenseKind::SubarrayIsolation, 1_000)).unwrap();
    let d1 = DomainId(1);
    let d2 = DomainId(2);
    m.add_tenant(d1, 2).unwrap();
    let arena2 = m.add_tenant(d2, 2).unwrap();
    let p2 = m.translate(d2, arena2[0]).unwrap();
    let group = m.mc().map().group_of_frame(p2.page_frame());
    assert_eq!(m.mc().group_owner(group), Some(d2));
}

/// DMA attacks defeat PMU-based software defenses but not defenses
/// built on the paper's MC primitives (§1, §4.2).
#[test]
fn dma_blindspot_end_to_end() {
    let run = |defense: DefenseKind| {
        let mut s = CloudScenario::build(MachineConfig::fast(defense, 24)).unwrap();
        let (above, below, t) = s.find_double_sided();
        assert_eq!(t, AttackTargeting::CrossDomain);
        s.machine
            .set_workload(
                s.attacker,
                Box::new(DmaHammer::new(0, vec![above, below], 3_000)),
            )
            .unwrap();
        s.run_windows(40);
        s.report()
    };
    let anvil = run(DefenseKind::Anvil { miss_threshold: 2 });
    assert!(
        anvil.cross_flips_against(2) > 0,
        "ANVIL cannot see DMA traffic"
    );
    let precise = run(DefenseKind::VictimRefreshInstr);
    assert_eq!(
        precise.cross_flips_against(2),
        0,
        "MC counters see all ACTs regardless of source"
    );
}

/// In-DRAM TRR protects against few aggressors and is bypassed by
/// many-sided patterns (TRRespass, §3).
#[test]
fn trr_bypass_end_to_end() {
    let run = |n_aggr: usize| {
        let cfg = MachineConfig::fast(DefenseKind::InDramTrr { table_size: 4 }, 24);
        let mut s = CloudScenario::build_sized(cfg, 16).unwrap();
        s.arm_many_sided(n_aggr, 5_000).unwrap();
        s.run_windows(80);
        s.report().flips_total
    };
    assert_eq!(run(2), 0, "tracked aggressors must be mitigated");
    assert!(run(8) > 0, "many-sided must bypass the 4-entry tracker");
}

/// Blacksmith-style fuzzed patterns also bypass small TRR trackers —
/// non-uniform schedules keep Misra-Gries counts below the vendor's
/// confidence threshold just like uniform many-sided ones.
#[test]
fn fuzzed_hammer_bypasses_trr() {
    let cfg = MachineConfig::fast(DefenseKind::InDramTrr { table_size: 4 }, 24);
    let mut s = CloudScenario::build_sized(cfg, 16).unwrap();
    s.arm_fuzzed(10, 6_000).unwrap();
    s.run_windows(80);
    let r = s.report();
    assert!(r.flips_total > 0, "fuzzed pattern must bypass the tracker");
}

/// Multi-tenant fairness: benign tenants keep making progress while an
/// attack is being mitigated.
#[test]
fn benign_progress_under_attack_and_defense() {
    let mut s =
        CloudScenario::build(MachineConfig::fast(DefenseKind::VictimRefreshInstr, 24)).unwrap();
    s.arm_double_sided(2_000).unwrap();
    s.add_benign(BenignKind::Stream, 2, 400).unwrap();
    s.add_benign(BenignKind::Zipfian, 2, 400).unwrap();
    s.run_windows(100);
    let r = s.report();
    assert_eq!(r.cross_flips_against(2), 0);
    assert_eq!(r.ops_by_tenant[&10], 400, "stream tenant must finish");
    assert_eq!(r.ops_by_tenant[&11], 400, "zipfian tenant must finish");
}

/// Refresh starvation (failure injection): disabling the periodic REF
/// scheduler trips the retention check.
#[test]
fn refresh_starvation_failure_injection() {
    let mut cfg = MachineConfig::fast(DefenseKind::None, 24);
    cfg.refresh_enabled = false;
    let mut m = Machine::new(cfg).unwrap();
    let d = DomainId(1);
    let arena = m.add_tenant(d, 2).unwrap();
    m.set_workload(d, Box::new(StreamWorkload::new(arena.clone(), 100, 0)))
        .unwrap();
    let t_refw = m.config().timing.t_refw;
    m.run(t_refw * 3);
    assert_eq!(m.mc().stats().refs_issued, 0);
    // A row untouched for 3 windows has decayed. Pick a row nobody
    // accessed (accessing refreshes as a side effect).
    let p = m.translate(d, arena[0]).unwrap();
    let (bank, row) = m.mc().locate(p).unwrap();
    let far_row = row + 100;
    assert!(
        m.check_retention(&bank, far_row, 1.5),
        "unrefreshed rows must decay"
    );
    // With refresh enabled the same scenario stays healthy.
    let mut m2 = Machine::new(MachineConfig::fast(DefenseKind::None, 24)).unwrap();
    m2.add_tenant(d, 2).unwrap();
    m2.run(t_refw * 3);
    assert!(m2.mc().stats().refs_issued > 0);
    assert!(!m2.check_retention(&bank, far_row, 1.5));
}

/// Remapping follows the page through the page table: after the
/// defense migrates a hammered page, the tenant's virtual addresses
/// keep working and land on fresh physical rows.
#[test]
fn remap_preserves_virtual_addressing() {
    let mut s = CloudScenario::build(MachineConfig::fast(DefenseKind::AggressorRemap, 24)).unwrap();
    let (above, _below, _) = s.find_double_sided();
    let before = s.machine.translate(s.attacker, above).unwrap();
    s.arm_double_sided(2_000).unwrap();
    s.run_windows(60);
    let r = s.report();
    assert!(r.overhead.pages_remapped > 0, "defense must have migrated");
    let after = s.machine.translate(s.attacker, above).unwrap();
    assert_ne!(
        before.page_frame(),
        after.page_frame(),
        "hammered frame must have moved"
    );
    assert_eq!(r.cross_flips_against(2), 0);
}

/// The whole defense catalog builds and runs without error on a short
/// benign workload — no configuration is internally inconsistent.
#[test]
fn every_catalog_defense_builds_and_runs() {
    for defense in DefenseKind::catalog(100) {
        let mut m = Machine::new(MachineConfig::fast(defense, 100)).unwrap();
        let d = DomainId(1);
        let arena = m.add_tenant(d, 2).unwrap();
        m.set_workload(d, Box::new(StreamWorkload::new(arena, 50, 4)))
            .unwrap();
        m.run(200_000);
        let r = m.report();
        assert_eq!(r.ops_by_tenant[&1], 50, "{defense} stalled the tenant");
        assert!(r.lockup.is_none());
    }
}

/// Flush-based eviction works end-to-end: the same line misses the
/// LLC after each flush, reaching DRAM every time (the attack
/// prerequisite from §2.1).
#[test]
fn flush_forces_dram_traffic() {
    let mut m = Machine::new(MachineConfig::fast(DefenseKind::None, 1_000_000)).unwrap();
    let d = DomainId(1);
    let arena = m.add_tenant(d, 1).unwrap();
    let line = arena[0];
    m.set_workload(d, Box::new(HammerPattern::new("probe", vec![line], 50)))
        .unwrap();
    m.run(1_000_000);
    let r = m.report();
    // All 50 reads missed (each preceded by a flush).
    assert_eq!(r.cache.misses, 50);
    assert_eq!(r.cache.hits, 0);
    assert_eq!(r.mc.reads, 50);
}

/// Report serialization round-trips (the bench harness depends on it).
#[test]
fn report_round_trips_through_json() {
    let mut s = CloudScenario::build(MachineConfig::fast(DefenseKind::None, 24)).unwrap();
    s.arm_double_sided(500).unwrap();
    s.run_windows(10);
    let r = s.report();
    let json = serde_json::to_string(&r).unwrap();
    let back: hammertime::metrics::SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.flips_total, r.flips_total);
    assert_eq!(back.cycles, r.cycles);
}

/// Line locking defends while leaving room for demand traffic: locked
/// ways are bounded, so the cache still serves other tenants.
#[test]
fn line_locking_bounds_locked_capacity() {
    let mut s = CloudScenario::build(MachineConfig::fast(DefenseKind::LineLocking, 24)).unwrap();
    s.arm_double_sided(3_000).unwrap();
    s.add_benign(BenignKind::Random, 2, 300).unwrap();
    s.run_windows(100);
    let r = s.report();
    assert_eq!(r.cross_flips_against(2), 0);
    assert!(r.overhead.lines_locked > 0);
    // The per-set lock bound keeps evictable ways available: currently
    // resident locks never reach the total capacity.
    let cfg = s.machine.config().cache;
    let max_lockable = cfg.sets * cfg.max_locked_ways;
    assert!(
        s.machine.llc().locked_lines() <= max_lockable,
        "resident locks exceed the per-set bound"
    );
    assert_eq!(r.ops_by_tenant[&10], 300, "benign tenant survived locking");
}

/// The realistic-scale configuration (server geometry, DDR4-2400
/// timing) builds and runs: a sanity check that nothing in the stack
/// depends on the compressed test scale.
#[test]
fn realistic_scale_smoke() {
    use hammertime::dram::DisturbanceProfile;
    // Scaled-down MAC keeps the run short while exercising the real
    // timing constants and the 8 GiB server geometry.
    let profile = DisturbanceProfile::ddr4_2020().scaled_down(100);
    let cfg = MachineConfig::realistic(DefenseKind::VictimRefreshInstr, profile);
    let mut m = Machine::new(cfg).unwrap();
    let d = DomainId(1);
    let arena = m.add_tenant(d, 4).unwrap();
    m.set_workload(d, Box::new(StreamWorkload::new(arena, 300, 8)))
        .unwrap();
    // A few refresh intervals of DDR4-2400.
    let t_refi = m.config().timing.t_refi;
    m.run(t_refi * 40);
    let r = m.report();
    assert_eq!(r.ops_by_tenant[&1], 300);
    assert!(r.mc.refs_issued > 0, "real refresh schedule ran");
    assert!(r.lockup.is_none());
}
