//! The experiment engine's core guarantees: parallel runs are
//! byte-identical to serial runs, and the registry covers every
//! experiment the documentation records.

use hammertime::experiments::{registry, run_all_with, RunOptions};

/// Worker count must not leak into results: cells land in
/// declaration-order slots, so an 8-worker run serializes to exactly
/// the bytes of a serial run.
#[test]
fn parallel_run_is_byte_identical_to_serial() {
    let ids = ["F1", "E3", "E6", "E10"]; // cheap representative subset
    let serial = run_all_with(&RunOptions::new(true).jobs(1).filter(ids)).unwrap();
    let parallel = run_all_with(&RunOptions::new(true).jobs(8).filter(ids)).unwrap();
    let a = serde_json::to_string(&serial).unwrap();
    let b = serde_json::to_string(&parallel).unwrap();
    assert_eq!(a, b, "jobs=8 output diverged from jobs=1");
}

/// Every experiment id recorded in EXPERIMENTS.md must resolve in the
/// registry, and vice versa — the docs and the code cannot drift.
#[test]
fn registry_matches_experiments_md() {
    let md = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md"))
        .expect("EXPERIMENTS.md is readable");
    let documented: Vec<&str> = md
        .lines()
        .filter_map(|l| l.strip_prefix("== ")?.split_whitespace().next())
        .collect();
    assert!(!documented.is_empty(), "no table headers found");
    let registered: Vec<&str> = registry().iter().map(|e| e.id()).collect();
    for id in &documented {
        assert!(
            registered.contains(id),
            "EXPERIMENTS.md documents {id} but the registry lacks it"
        );
    }
    for id in &registered {
        assert!(
            documented.contains(id),
            "registry has {id} but EXPERIMENTS.md does not document it"
        );
    }
}

/// A filter naming no real experiment yields no tables (rather than
/// erroring or running everything).
#[test]
fn unknown_filter_selects_nothing() {
    let tables = run_all_with(&RunOptions::new(true).filter(["Z9"])).unwrap();
    assert!(tables.is_empty());
}
