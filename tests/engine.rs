//! The experiment engine's core guarantees: parallel runs are
//! byte-identical to serial runs, the registry covers every documented
//! experiment, and a misbehaving cell degrades into a structured
//! failure instead of taking the suite down.

use hammertime::experiments::{
    registry, run_all_with, run_suite, silent, Cell, CellCtx, CellRows, Experiment, FailureKind,
    RunOptions,
};
use hammertime::machine::{Machine, MachineConfig};
use hammertime::taxonomy::DefenseKind;
use hammertime_common::{Error, FaultPlan};

/// Worker count must not leak into results: cells land in
/// declaration-order slots, so an 8-worker run serializes to exactly
/// the bytes of a serial run.
#[test]
fn parallel_run_is_byte_identical_to_serial() {
    let ids = ["F1", "E3", "E6", "E10"]; // cheap representative subset
    let serial = run_all_with(&RunOptions::new(true).jobs(1).filter(ids)).unwrap();
    let parallel = run_all_with(&RunOptions::new(true).jobs(8).filter(ids)).unwrap();
    let a = serde_json::to_string(&serial).unwrap();
    let b = serde_json::to_string(&parallel).unwrap();
    assert_eq!(a, b, "jobs=8 output diverged from jobs=1");
}

/// Every core-registry experiment must be documented in
/// EXPERIMENTS.md. (The converse — every documented id resolves in
/// a registry — is checked against the *combined* core + fleet
/// registry by the fleet crate's suite, which is the only layer that
/// can see every experiment.)
#[test]
fn registry_matches_experiments_md() {
    let md = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md"))
        .expect("EXPERIMENTS.md is readable");
    let documented: Vec<&str> = md
        .lines()
        .filter_map(|l| l.strip_prefix("== ")?.split_whitespace().next())
        .collect();
    assert!(!documented.is_empty(), "no table headers found");
    let registered: Vec<&str> = registry().iter().map(|e| e.id()).collect();
    for id in &registered {
        assert!(
            documented.contains(id),
            "registry has {id} but EXPERIMENTS.md does not document it"
        );
    }
}

/// A filter naming no real experiment yields no tables (rather than
/// erroring or running everything).
#[test]
fn unknown_filter_selects_nothing() {
    let report = run_all_with(&RunOptions::new(true).filter(["Z9"])).unwrap();
    assert!(report.tables.is_empty());
}

/// An all-zero fault plan must be indistinguishable from no plan at
/// all: the fault hooks draw nothing from the RNG streams when every
/// rate is zero, so the suite output is byte-identical. Runs a cheap
/// representative subset spanning the machine path (E3), the raw
/// controller path (F1), and the fault sweep itself (F3).
#[test]
fn inert_fault_plan_is_byte_identical_to_none() {
    let ids = ["F1", "E3", "F3"];
    let plan = FaultPlan::none();
    assert!(plan.is_inert());
    let healthy = run_all_with(&RunOptions::new(true).filter(ids)).unwrap();
    let inert = run_all_with(&RunOptions::new(true).filter(ids).with_faults(plan)).unwrap();
    let a = serde_json::to_string(&healthy).unwrap();
    let b = serde_json::to_string(&inert).unwrap();
    assert_eq!(a, b, "an inert fault plan changed suite output");
}

/// A non-trivial plan + seed is fully deterministic: two runs agree,
/// and the worker count does not leak into faulty runs either.
#[test]
fn fault_plan_runs_are_deterministic_across_jobs() {
    let ids = ["E3", "F3"];
    let mut plan = FaultPlan::none();
    plan.seed = 0xC0FFEE;
    plan.dropped_ref = 0.05;
    plan.trr_miss = 0.3;
    plan.dropped_interrupt = 0.2;
    plan.refresh_nack = 0.05;
    let opts = |jobs| {
        RunOptions::new(true)
            .jobs(jobs)
            .filter(ids)
            .with_faults(plan)
    };
    let serial = run_all_with(&opts(1)).unwrap();
    let parallel = run_all_with(&opts(8)).unwrap();
    let again = run_all_with(&opts(1)).unwrap();
    let a = serde_json::to_string(&serial).unwrap();
    let b = serde_json::to_string(&parallel).unwrap();
    let c = serde_json::to_string(&again).unwrap();
    assert_eq!(a, b, "jobs=8 diverged from jobs=1 under a fault plan");
    assert_eq!(a, c, "two identical faulty runs diverged");
}

/// A synthetic experiment with one healthy cell and three misbehaving
/// ones: an `Err` return, a panic, and an infinite loop. The engine
/// must convert each failure into a structured record, let the healthy
/// sibling complete, and classify the kinds correctly.
struct ChaosExp;

impl Experiment for ChaosExp {
    fn id(&self) -> &'static str {
        "CHAOS"
    }

    fn title(&self) -> &'static str {
        "engine failure-semantics fixture"
    }

    fn columns(&self) -> &'static [&'static str] {
        &["cell", "status"]
    }

    fn cells(&self, _ctx: &CellCtx) -> Vec<Cell> {
        vec![
            Cell::new("ok", || {
                Ok(vec![vec!["ok".to_string(), "done".to_string()]])
            }),
            Cell::new("errors", || {
                Err(Error::Config("deliberately broken cell".into()))
            }),
            Cell::new("panics", || -> hammertime_common::Result<CellRows> {
                panic!("boom");
            }),
            Cell::new("runs-away", || {
                let mut m = Machine::new(MachineConfig::fast(DefenseKind::None, 24))?;
                // No tenants, no workloads: this advances simulated
                // time forever. Only the step-budget watchdog stops it.
                loop {
                    m.run(1_000_000);
                }
            }),
        ]
    }
}

#[test]
fn misbehaving_cells_become_structured_failures() {
    // The panicking cells print the default panic-hook message to
    // stderr; that noise is expected and harmless.
    let opts = RunOptions::new(true).jobs(2).step_budget(50_000_000);
    let report = run_suite(&[&ChaosExp], &opts, &silent).unwrap();
    assert_eq!(report.tables.len(), 1);
    let t = &report.tables[0];
    // The healthy sibling completed and its row survived.
    assert_eq!(t.rows, vec![vec!["ok".to_string(), "done".to_string()]]);
    // All three misbehaving cells are recorded, in declaration order.
    let kinds: Vec<(&str, FailureKind)> = t
        .failures
        .iter()
        .map(|f| (f.label.as_str(), f.kind))
        .collect();
    assert_eq!(
        kinds,
        vec![
            ("errors", FailureKind::Error),
            ("panics", FailureKind::Panic),
            ("runs-away", FailureKind::Timeout),
        ]
    );
    assert!(t.failures[0].message.contains("deliberately broken"));
    assert!(t.failures[1].message.contains("boom"));
    assert!(t.failures[2].message.contains("step budget"));
    assert!(report.has_failures());
    // The rendered table marks the failures.
    let shown = t.to_string();
    assert!(shown.contains("!! 3 cell(s) failed:"), "{shown}");
    assert!(shown.contains("runs-away [timeout]"), "{shown}");
}

/// Without a step budget the engine must not arm any watchdog: a
/// normal quick cell completes untouched even after a prior budgeted
/// run on the same thread pool.
#[test]
fn step_budget_does_not_leak_between_runs() {
    let budgeted = RunOptions::new(true).filter(["E6"]).step_budget(1);
    // E6 is pure arithmetic: it never steps a machine, so even a
    // budget of 1 cycle cannot fire.
    let r1 = run_all_with(&budgeted).unwrap();
    assert!(
        !r1.has_failures(),
        "{:?}",
        r1.failures().collect::<Vec<_>>()
    );
    let r2 = run_all_with(&RunOptions::new(true).filter(["F1"])).unwrap();
    assert!(!r2.has_failures());
}

/// Fixture for the dual-path budget test: one cell that hammers
/// forever, on either the event-wheel or the reference scheduler.
struct BudgetPathExp {
    reference: bool,
}

/// Simulated-time waypoints the runaway cell reached before the budget
/// fired (appended once per outer `run` call).
static PROGRESS: std::sync::Mutex<Vec<u64>> = std::sync::Mutex::new(Vec::new());

impl Experiment for BudgetPathExp {
    fn id(&self) -> &'static str {
        "BUDGETPATH"
    }

    fn title(&self) -> &'static str {
        "step-budget dual-path fixture"
    }

    fn columns(&self) -> &'static [&'static str] {
        &["cell", "status"]
    }

    fn cells(&self, _ctx: &CellCtx) -> Vec<Cell> {
        let reference = self.reference;
        vec![Cell::new("runs-away", move || {
            let mut cfg = MachineConfig::fast(DefenseKind::None, 1_000_000);
            cfg.reference_scheduler = reference;
            let mut m = Machine::new(cfg)?;
            let d = hammertime_common::DomainId(1);
            let arena = m.add_tenant(d, 4)?;
            m.set_workload(
                d,
                Box::new(hammertime_workloads::StreamWorkload::new(
                    arena,
                    u64::MAX / 2,
                    0,
                )),
            )?;
            loop {
                m.run(100_000);
                PROGRESS.lock().unwrap().push(m.now().raw());
            }
        })]
    }
}

/// The step budget is charged in *simulated cycles*, so the identical
/// cell exhausts the identical budget at the identical point on both
/// scheduler paths: the wheel must not buy a runaway cell more (or
/// less) simulated time than the reference scanner.
#[test]
fn step_budget_truncates_identically_on_both_scheduler_paths() {
    let opts = RunOptions::new(true).jobs(1).step_budget(2_000_000);
    let mut traces: Vec<Vec<u64>> = Vec::new();
    let mut messages: Vec<String> = Vec::new();
    for reference in [false, true] {
        PROGRESS.lock().unwrap().clear();
        let report = run_suite(&[&BudgetPathExp { reference }], &opts, &silent).unwrap();
        let t = &report.tables[0];
        assert_eq!(t.failures.len(), 1, "runaway cell must fail");
        assert_eq!(t.failures[0].kind, FailureKind::Timeout);
        messages.push(t.failures[0].message.clone());
        traces.push(std::mem::take(&mut *PROGRESS.lock().unwrap()));
    }
    assert_eq!(
        traces[0], traces[1],
        "budget fired at different simulated waypoints on the two scheduler paths"
    );
    assert!(
        !traces[0].is_empty(),
        "the cell must make progress before the budget fires"
    );
    assert_eq!(messages[0], messages[1]);
}
