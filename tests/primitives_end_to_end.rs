//! End-to-end behaviour of the paper's three memory-controller
//! primitives themselves (Table 1), independent of any full defense
//! policy: subarray-isolated interleaving, precise ACT interrupts, and
//! the refresh instruction / REF_NEIGHBORS.

use hammertime::machine::{Machine, MachineConfig};
use hammertime::taxonomy::DefenseKind;
use hammertime_common::addr::LINES_PER_PAGE;
use hammertime_common::{CacheLineAddr, DomainId};
use hammertime_memctrl::{ActCounterConfig, Precision};
use hammertime_workloads::HammerPattern;

/// §4.1 — subarray-isolated interleaving: every page still spreads its
/// lines across banks (parallelism preserved), yet never leaves its
/// domain's subarray group (isolation preserved).
#[test]
fn subarray_isolated_interleaving_properties() {
    let mut m = Machine::new(MachineConfig::fast(DefenseKind::SubarrayIsolation, 1_000)).unwrap();
    let g = m.config().geometry;
    let d1 = DomainId(1);
    let d2 = DomainId(2);
    let a1 = m.add_tenant(d1, 4).unwrap();
    let a2 = m.add_tenant(d2, 4).unwrap();
    for (domain, arena) in [(d1, &a1), (d2, &a2)] {
        let mut groups = std::collections::HashSet::new();
        for chunk in arena.chunks(LINES_PER_PAGE as usize) {
            let mut banks = std::collections::HashSet::new();
            for &vline in chunk {
                let p = m.translate(domain, vline).unwrap();
                let coord = m.mc().map().to_coord(p).unwrap();
                banks.insert(coord.flat_bank(&g));
                groups.insert(coord.subarray(&g));
            }
            assert!(
                banks.len() > 1,
                "page must interleave across banks (got {banks:?})"
            );
        }
        assert_eq!(groups.len(), 1, "{domain} must stay in one subarray group");
    }
}

/// §4.2 — the precise interrupt reports the hammering address; the
/// legacy counter reports nothing actionable. Identical attack, only
/// the primitive differs.
#[test]
fn precise_vs_legacy_interrupts() {
    let run = |precision: Precision| {
        let mut cfg = MachineConfig::fast(DefenseKind::None, 1_000_000);
        cfg.force_act_counters = true;
        let mut m = Machine::new(cfg).unwrap();
        let d = DomainId(1);
        m.add_tenant(d, 4).unwrap();
        // Reconfigure the counter block to the requested precision.
        m.configure_act_counters(ActCounterConfig {
            threshold: 50,
            randomize_reset_window: 0,
            precision,
        });
        let rows = m.rows_of_domain(d);
        let (_, _, l1) = &rows[0];
        let (_, _, l2) = &rows[1];
        m.set_workload(d, Box::new(HammerPattern::double_sided(l1[0], l2[0], 500)))
            .unwrap();
        let aggressor_phys: Vec<CacheLineAddr> = [l1[0], l2[0]]
            .iter()
            .map(|&v| m.translate(d, v).unwrap())
            .collect();
        m.run(2_000_000);
        (m.drain_interrupt_log(), aggressor_phys)
    };
    let (precise, aggressors) = run(Precision::AddressReporting);
    assert!(!precise.is_empty());
    for int in &precise {
        let addr = int.addr.expect("precise interrupts carry addresses");
        assert!(
            aggressors.contains(&addr),
            "reported {addr} is not an aggressor line"
        );
    }
    let (legacy, _) = run(Precision::CountOnly);
    assert!(!legacy.is_empty());
    assert!(
        legacy.iter().all(|i| i.addr.is_none()),
        "legacy counters must not report addresses"
    );
}

/// §4.3 — the refresh instruction resets a victim's accumulated
/// pressure mid-attack, without needing any DRAM support.
///
/// Background REF is disabled so the observed pressure comes from the
/// primitive under test alone.
#[test]
fn refresh_instruction_neutralizes_pressure() {
    let mut cfg = MachineConfig::fast(DefenseKind::None, 1_000_000);
    cfg.refresh_enabled = false;
    let mut m = Machine::new(cfg).unwrap();
    let d = DomainId(1);
    let _ = m.add_tenant(d, 4).unwrap();
    let rows = m.rows_of_domain(d);
    let (bank, r0, l0) = rows[0].clone();
    let (_, _, l1) = rows[1].clone();
    // Aggressors are rows r0 and r0+1; the interesting victim is
    // r0+2 (a non-aggressor, so nothing self-refreshes it).
    m.set_workload(d, Box::new(HammerPattern::double_sided(l0[0], l1[0], 200)))
        .unwrap();
    m.run(100_000);
    let victim_row = r0 + 2;
    assert!(
        m.mc().dram().row_pressure(&bank, victim_row) > 0.0,
        "hammering must have pressured the victim"
    );
    // Host issues the refresh instruction on the victim row.
    let topo = m.topology();
    let victim_line = topo.line_of_row(&bank, victim_row).unwrap();
    m.host_refresh_row(victim_line, true).unwrap();
    m.run(10_000);
    assert_eq!(m.mc().dram().row_pressure(&bank, victim_row), 0.0);
}

/// §4.3 — REF_NEIGHBORS takes the blast radius as an argument, so
/// software adapts coverage without new silicon: radius 1 leaves
/// distance-2 pressure standing, radius 2 clears it.
#[test]
fn ref_neighbors_radius_is_adaptable() {
    for (radius, expect_clear) in [(1u32, false), (2, true)] {
        let mut cfg = MachineConfig::fast(DefenseKind::None, 1_000_000);
        cfg.refresh_enabled = false;
        let mut m = Machine::new(cfg).unwrap();
        let d = DomainId(1);
        let _ = m.add_tenant(d, 4).unwrap();
        let rows = m.rows_of_domain(d);
        let (bank, r0, l0) = rows[0].clone();
        let (_, _, l1) = rows[1].clone();
        m.set_workload(d, Box::new(HammerPattern::double_sided(l0[0], l1[0], 200)))
            .unwrap();
        m.run(100_000);
        let d2_victim = r0 + 2; // distance 2 from aggressor r0
        assert!(m.mc().dram().row_pressure(&bank, d2_victim) > 0.0);
        let topo = m.topology();
        let agg_line = topo.line_of_row(&bank, r0).unwrap();
        m.host_ref_neighbors(agg_line, radius).unwrap();
        m.run(10_000);
        let cleared = m.mc().dram().row_pressure(&bank, d2_victim) == 0.0;
        assert_eq!(
            cleared, expect_clear,
            "radius {radius}: distance-2 victim cleared={cleared}"
        );
    }
}

/// Guests can never issue the host-privileged maintenance operations.
#[test]
fn maintenance_is_host_privileged() {
    use hammertime_common::{Cycle, RequestSource};
    use hammertime_memctrl::request::{MemRequest, RequestKind};
    let mut m = Machine::new(MachineConfig::fast(DefenseKind::None, 1_000)).unwrap();
    let guest_refresh = MemRequest {
        id: 1,
        line: CacheLineAddr(0),
        kind: RequestKind::Refresh { auto_pre: true },
        source: RequestSource::Core(1),
        domain: DomainId(3),
        arrival: Cycle::ZERO,
    };
    let err = m.submit_raw(guest_refresh).unwrap_err();
    assert_eq!(err.kind(), "privilege");
}
