//! Record → replay determinism for the telemetry subsystem.
//!
//! A traced suite run records every DRAM device's full command stream
//! (plus the flips and stats it produced). These tests re-drive fresh
//! devices from those recordings — no scheduler, no machine — and
//! assert the replay reproduces the recorded flip set and `DramStats`
//! exactly, for healthy hardware and under the chaos fault plan, and
//! that the recorded trace itself is byte-identical across worker
//! counts.

use hammertime::experiments::{registry, run_suite_traced, silent, RunOptions};
use hammertime_common::FaultPlan;
use hammertime_dram::replay::replay_records;
use hammertime_telemetry::{diff_traces, TraceRecord};

fn record(filter: &str, jobs: usize, faults: Option<FaultPlan>) -> Vec<TraceRecord> {
    let mut opts = RunOptions::new(true).jobs(jobs).filter([filter]);
    if let Some(plan) = faults {
        opts = opts.with_faults(plan);
    }
    let (report, trace) =
        run_suite_traced(&registry(), &opts, &silent).expect("traced suite run succeeds");
    assert!(
        !report.has_failures(),
        "cells failed while recording {filter}"
    );
    assert!(!trace.is_empty(), "recording {filter} produced no trace");
    trace
}

fn chaos_plan() -> FaultPlan {
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/chaos-plan.json"
    ))
    .expect("chaos fixture present");
    serde_json::from_str(&json).expect("chaos fixture parses")
}

/// Every quick golden cell of T1, E2, and F3 replays exactly: same
/// flips, same final device stats.
#[test]
fn golden_cells_record_and_replay_exactly() {
    for filter in ["T1", "E2", "F3"] {
        let trace = record(filter, 1, None);
        let summary =
            replay_records(&trace).unwrap_or_else(|e| panic!("replay of {filter} diverged: {e}"));
        assert!(summary.devices > 0, "{filter}: no devices in trace");
        assert!(summary.commands > 0, "{filter}: no commands in trace");
    }
}

/// Replay also holds under the chaos fixture plan: fault decisions are
/// part of the recorded device config, so the replayed device injects
/// the identical fault sequence.
#[test]
fn chaos_cell_records_and_replays_exactly() {
    let trace = record("T1", 1, Some(chaos_plan()));
    let summary = replay_records(&trace).expect("chaos replay matches recording");
    assert!(summary.devices > 0);
}

/// The recorded trace is byte-identical across worker counts — the
/// per-cell buffers concatenate in declaration order, like the tables.
#[test]
fn trace_is_identical_across_worker_counts() {
    let j1 = record("E2", 1, None);
    let j8 = record("E2", 8, None);
    let diff = diff_traces(&j1, &j8);
    assert!(diff.is_empty(), "jobs=1 vs jobs=8 trace differs:\n{diff}");
}

/// Tracing is observation only: a traced run renders the exact tables
/// an untraced run does.
#[test]
fn traced_tables_match_untraced_tables() {
    let opts = RunOptions::new(true).filter(["F3"]);
    let untraced = hammertime::experiments::run_suite(&registry(), &opts, &silent).unwrap();
    let (traced, _) = run_suite_traced(&registry(), &opts, &silent).unwrap();
    assert_eq!(untraced.tables.len(), traced.tables.len());
    for (a, b) in untraced.tables.iter().zip(&traced.tables) {
        assert_eq!(a.to_string(), b.to_string(), "table {} differs", a.id);
    }
}
