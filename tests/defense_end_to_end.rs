//! Per-defense end-to-end behaviour: every defense in the catalog is
//! exercised against the attack class it is designed for, together
//! with its characteristic cost signature.

use hammertime::machine::MachineConfig;
use hammertime::scenario::{BenignKind, CloudScenario};
use hammertime::taxonomy::DefenseKind;

const MAC: u64 = 24;

fn attack_run(defense: DefenseKind, accesses: u64) -> hammertime::metrics::SimReport {
    let mut s = CloudScenario::build(MachineConfig::fast(defense, MAC)).unwrap();
    s.arm_double_sided(accesses).unwrap();
    s.run_windows(60);
    s.report()
}

#[test]
fn para_refreshes_probabilistically_and_defends() {
    let r = attack_run(
        DefenseKind::Para {
            prob: 8.0 / MAC as f64,
        },
        3_000,
    );
    assert_eq!(r.cross_flips_against(2), 0);
    assert!(
        r.dram.ref_neighbor_rows > 0,
        "PARA must have refreshed neighbors"
    );
}

#[test]
fn graphene_tracks_and_fires_sparingly() {
    let r = attack_run(DefenseKind::Graphene { table_size: 16 }, 3_000);
    assert_eq!(r.cross_flips_against(2), 0);
    assert!(r.dram.ref_neighbor_rows > 0);
    // Graphene is precise: far fewer refreshes than PARA at equal
    // protection. (The exact PARA count is probabilistic; compare
    // against the ACT volume instead.)
    assert!(
        r.dram.ref_neighbor_rows < r.dram.acts,
        "tracker should not refresh per ACT"
    );
}

#[test]
fn blockhammer_throttles_instead_of_refreshing() {
    let r = attack_run(DefenseKind::BlockHammer { delay: 2_000 }, 1_500);
    assert!(r.overhead.throttle_cycles > 0, "must throttle the hammer");
    assert_eq!(
        r.dram.ref_neighbor_rows, 0,
        "BlockHammer never issues extra refreshes"
    );
    // Throttling slows the attack below the MAC rate: few or no flips.
    assert!(r.cross_flips_against(2) <= 10);
}

#[test]
fn oracle_is_a_lower_bound_on_refresh_cost() {
    let oracle = attack_run(DefenseKind::Oracle, 3_000);
    let para = attack_run(
        DefenseKind::Para {
            prob: 8.0 / MAC as f64,
        },
        3_000,
    );
    assert_eq!(oracle.cross_flips_against(2), 0);
    assert!(
        oracle.dram.ref_neighbor_rows <= para.dram.ref_neighbor_rows,
        "the oracle should refresh no more than blind PARA ({} vs {})",
        oracle.dram.ref_neighbor_rows,
        para.dram.ref_neighbor_rows
    );
}

#[test]
fn victim_refresh_uses_the_refresh_instruction() {
    let r = attack_run(DefenseKind::VictimRefreshInstr, 3_000);
    assert_eq!(r.cross_flips_against(2), 0);
    assert!(r.overhead.refresh_ops > 0);
    assert!(r.mc.maintenance_ops > 0, "refresh instructions executed");
    assert_eq!(r.overhead.convoluted_refreshes, 0);
}

#[test]
fn ref_neighbors_covers_radius_in_one_command() {
    let instr = attack_run(DefenseKind::VictimRefreshInstr, 3_000);
    let refn = attack_run(DefenseKind::VictimRefreshRefNeighbors, 3_000);
    assert_eq!(refn.cross_flips_against(2), 0);
    // One REF_NEIGHBORS covers 2*radius rows; the instruction needs
    // one operation per victim row.
    assert!(
        refn.overhead.refresh_ops < instr.overhead.refresh_ops,
        "REF_NEIGHBORS should need fewer submissions ({} vs {})",
        refn.overhead.refresh_ops,
        instr.overhead.refresh_ops
    );
    assert!(refn.dram.ref_neighbor_rows > 0);
}

#[test]
fn convoluted_refresh_is_far_more_expensive() {
    let instr = attack_run(DefenseKind::VictimRefreshInstr, 2_000);
    let conv = attack_run(DefenseKind::VictimRefreshConvoluted, 2_000);
    assert_eq!(conv.cross_flips_against(2), 0);
    assert!(conv.overhead.convoluted_refreshes > 0);
    // The flush+load path consumes demand bandwidth: reads balloon.
    assert!(
        conv.mc.reads > instr.mc.reads * 2,
        "convoluted path must pay demand reads ({} vs {})",
        conv.mc.reads,
        instr.mc.reads
    );
}

#[test]
fn anvil_defends_cpu_attacks_via_pmu() {
    let r = attack_run(DefenseKind::Anvil { miss_threshold: 2 }, 3_000);
    assert_eq!(r.cross_flips_against(2), 0);
    assert!(r.overhead.convoluted_refreshes > 0, "ANVIL used flush+load");
    assert_eq!(
        r.overhead.refresh_ops, 0,
        "ANVIL has no refresh instruction"
    );
}

#[test]
fn zebram_pays_capacity_for_isolation() {
    let r = attack_run(DefenseKind::ZebramGuard, 3_000);
    assert_eq!(r.cross_flips_against(2), 0);
    assert!(
        r.overhead.guard_frames > 0,
        "guard rows must cost frames ({})",
        r.overhead.guard_frames
    );
}

#[test]
fn bank_partition_trades_parallelism_for_isolation() {
    let r = attack_run(DefenseKind::BankPartitionIsolation, 3_000);
    assert_eq!(r.cross_flips_against(2), 0);
    assert_eq!(r.overhead.guard_frames, 0);
}

#[test]
fn subarray_isolation_keeps_interleaving_and_isolates() {
    let r = attack_run(DefenseKind::SubarrayIsolation, 3_000);
    assert_eq!(r.cross_flips_against(2), 0);
    // No extra refreshes, no throttling, no capacity loss: isolation
    // is free at runtime — the paper's headline property.
    assert_eq!(r.dram.ref_neighbor_rows, 0);
    assert_eq!(r.overhead.throttle_cycles, 0);
    assert_eq!(r.overhead.guard_frames, 0);
}

#[test]
fn aggressor_remap_retires_hammered_frames() {
    let r = attack_run(DefenseKind::AggressorRemap, 3_000);
    assert_eq!(r.cross_flips_against(2), 0);
    assert!(r.overhead.pages_remapped > 0);
    assert_eq!(r.overhead.pages_remapped, r.overhead.frames_retired);
    assert!(r.overhead.remap_copy_lines >= r.overhead.pages_remapped * 64);
}

#[test]
fn line_locking_pins_hot_lines() {
    let r = attack_run(DefenseKind::LineLocking, 3_000);
    assert_eq!(r.cross_flips_against(2), 0);
    assert!(r.overhead.lines_locked > 0);
    // Once pinned, the aggressor lines hit in cache: flushes blocked.
    assert!(r.cache.flushes_blocked > 0);
}

#[test]
fn trr_cost_is_invisible_to_the_host() {
    let r = attack_run(DefenseKind::InDramTrr { table_size: 4 }, 3_000);
    assert_eq!(r.cross_flips_against(2), 0);
    assert!(
        r.dram.trr_refresh_rows > 0,
        "TRR refreshed inside the device"
    );
    assert_eq!(r.overhead.actions, 0, "no host software ran");
    assert_eq!(r.overhead.interrupts, 0);
}

#[test]
fn defense_overheads_keep_benign_tenants_alive() {
    // Even the most intrusive defenses must not starve benign work.
    for defense in [
        DefenseKind::BlockHammer { delay: 2_000 },
        DefenseKind::Para { prob: 0.3 },
        DefenseKind::VictimRefreshConvoluted,
    ] {
        let mut s = CloudScenario::build(MachineConfig::fast(defense, MAC)).unwrap();
        s.arm_double_sided(1_000).unwrap();
        s.add_benign(BenignKind::Stream, 2, 200).unwrap();
        s.run_windows(300);
        let r = s.report();
        assert_eq!(
            r.ops_by_tenant.get(&10).copied().unwrap_or(0),
            200,
            "{defense} starved the benign tenant"
        );
    }
}
