//! Golden-snapshot suite: pins the rendered quick-mode output of every
//! registry experiment, byte for byte.
//!
//! The snapshots in `tests/golden/<ID>.txt` were generated from the
//! pre-fast-path scheduler and disturbance model, so any optimisation
//! that changes a single output byte fails here. To accept an
//! *intentional* behaviour change, regenerate and commit the diff:
//!
//! ```text
//! HAMMERTIME_REGEN_GOLDEN=1 cargo test --test golden
//! ```
//!
//! The suite honours `HAMMERTIME_GOLDEN_JOBS=N` (worker threads;
//! defaults to available parallelism). Output is byte-identical for
//! any worker count, so CI exercises several values.

use hammertime::experiments::RunOptions;
use hammertime_fleet::experiment::{full_registry, run_all_with};
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

fn jobs() -> usize {
    match std::env::var("HAMMERTIME_GOLDEN_JOBS") {
        Ok(v) => v
            .parse()
            .expect("HAMMERTIME_GOLDEN_JOBS must be a positive integer"),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

fn regen() -> bool {
    std::env::var("HAMMERTIME_REGEN_GOLDEN").is_ok_and(|v| v == "1")
}

#[test]
fn quick_mode_suite_matches_goldens() {
    let report = run_all_with(&RunOptions::new(true).jobs(jobs())).expect("suite runs");
    assert!(
        !report.has_failures(),
        "healthy quick-mode suite must not fail any cell: {:?}",
        report.failures().collect::<Vec<_>>()
    );
    let tables = report.tables;
    assert_eq!(
        tables.len(),
        full_registry().len(),
        "every registry experiment must produce a table"
    );

    let dir = golden_dir();
    if regen() {
        fs::create_dir_all(&dir).expect("create tests/golden");
    }

    let mut known = BTreeSet::new();
    for table in &tables {
        let name = format!("{}.txt", table.id);
        let path = dir.join(&name);
        known.insert(name);
        let rendered = table.to_string();
        if regen() {
            fs::write(&path, &rendered)
                .unwrap_or_else(|e| panic!("write golden {}: {e}", path.display()));
            continue;
        }
        let want = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {}: {e}\n\
                 regenerate with: HAMMERTIME_REGEN_GOLDEN=1 cargo test --test golden",
                path.display()
            )
        });
        assert!(
            rendered == want,
            "{} diverged from its golden snapshot ({})\n\
             --- golden ---\n{}--- actual ---\n{}\
             if this change is intentional, regenerate with:\n\
             HAMMERTIME_REGEN_GOLDEN=1 cargo test --test golden",
            table.id,
            path.display(),
            want,
            rendered,
        );
    }

    // A renamed or removed experiment must not leave its stale
    // snapshot behind to rot.
    for entry in fs::read_dir(&dir).expect("read tests/golden") {
        let name = entry
            .expect("golden dir entry")
            .file_name()
            .into_string()
            .expect("golden file names are utf-8");
        assert!(
            known.contains(&name),
            "stray golden file tests/golden/{name} matches no registry experiment"
        );
    }
}
