//! Golden lint coverage: published traces are invariant-clean, and the
//! mutation harness proves every rule class actually fires.
//!
//! Three claims, end to end:
//!
//! 1. every command trace the quick-mode experiment suite records
//!    passes `trace lint` with zero violations — the published tables
//!    rest on protocol-legal command streams;
//! 2. targeted corruptions of a trace (dropped PRE, ACT inside tRP,
//!    fifth ACT inside a full tFAW window, starved refresh) are each
//!    detected by the expected rule — the checker is not vacuously
//!    green;
//! 3. running a machine with the live shadow checker enabled changes
//!    no observable output, observes a clean stream, and confirms the
//!    ACT-conservation law against the device counters.

use hammertime::experiments::{registry, run_suite_traced, silent, RunOptions};
use hammertime::machine::MachineConfig;
use hammertime::scenario::CloudScenario;
use hammertime::taxonomy::DefenseKind;
use hammertime_check::mutate::{self, Mutation};
use hammertime_check::{lint_records, Rule, ShadowChecker};
use hammertime_common::geometry::BankId;
use hammertime_common::{Cycle, Geometry};
use hammertime_dram::{DdrCommand, DramConfig, DramModule, TimingParams};
use hammertime_telemetry::{TraceRecord, Tracer};

/// Every quick-mode experiment cell records a lint-clean trace.
#[test]
fn all_quick_experiment_traces_lint_clean() {
    let opts = RunOptions::new(true);
    let (report, records) =
        run_suite_traced(&registry(), &opts, &silent).expect("traced suite run succeeds");
    assert!(!report.has_failures(), "cells failed while recording");
    assert!(!records.is_empty());
    let lint = lint_records(&records);
    assert!(
        lint.is_clean(),
        "{} violation(s) in quick-suite traces, first: {}",
        lint.violations.len(),
        lint.violations[0]
    );
    assert!(lint.devices > 0 && lint.commands > 0);
}

fn bank(bank_group: u32, bank: u32) -> BankId {
    BankId {
        channel: 0,
        rank: 0,
        bank_group,
        bank,
    }
}

/// Records a device session rich enough to give every mutation a
/// guaranteed site: row open/read/close cycles on one bank (PRE/ACT/
/// CAS sites), a four-ACT burst across bank groups at tRRD_S spacing
/// (a full tFAW window with idle banks to spare), and a REF train
/// spanning more than the 9×tREFI starvation limit.
fn storm_trace() -> Vec<TraceRecord> {
    let tracer = Tracer::buffer();
    let mut config = DramConfig::test_config(1_000_000);
    config.geometry = Geometry::server();
    config.timing = TimingParams::tiny_test();
    config.tracer = Some(tracer.clone());
    {
        let mut dram = DramModule::new(config).unwrap();
        let mut now = Cycle(1);
        let go = |dram: &mut DramModule, cmd: DdrCommand, now: &mut Cycle| {
            let at = dram.earliest(&cmd).max(*now);
            dram.issue(&cmd, at).unwrap();
            *now = at + 1;
        };
        // Open/read/close twice on one bank.
        let b = bank(0, 0);
        for row in [2, 3] {
            go(&mut dram, DdrCommand::Act { bank: b, row }, &mut now);
            go(
                &mut dram,
                DdrCommand::Rd {
                    bank: b,
                    col: 0,
                    auto_pre: false,
                },
                &mut now,
            );
            go(&mut dram, DdrCommand::Pre { bank: b }, &mut now);
        }
        // Fill a tFAW window: four ACTs across bank groups land at
        // tRRD_S spacing (2 cycles), well inside tFAW (12 cycles).
        for bg in 0..4 {
            go(
                &mut dram,
                DdrCommand::Act {
                    bank: bank(bg, 1),
                    row: 0,
                },
                &mut now,
            );
        }
        for bg in 0..4 {
            go(&mut dram, DdrCommand::Pre { bank: bank(bg, 1) }, &mut now);
        }
        // A REF train spanning > 9×tREFI (900 cycles at tiny_test).
        for i in 0..11u64 {
            let cmd = DdrCommand::Ref {
                channel: 0,
                rank: 0,
            };
            let due = Cycle(51 + 100 * i);
            let at = dram.earliest(&cmd).max(due);
            dram.issue(&cmd, at).unwrap();
        }
        let _ = now;
    }
    tracer.take_records()
}

/// The storm trace is legal as recorded (so every violation below is
/// caused by its mutation), and each named corruption trips exactly
/// the rule the issue promises.
#[test]
fn mutations_fire_their_expected_rules() {
    let records = storm_trace();
    assert!(
        lint_records(&records).is_clean(),
        "storm trace must lint clean before mutation"
    );

    let expect = [
        (
            Mutation::DropPre,
            vec![Rule::ActOnOpenBank, Rule::RefWithOpenBank],
        ),
        (Mutation::ActBeforeTrp, vec![Rule::TRp, Rule::TRc]),
        (Mutation::CasBeforeTrcd, vec![Rule::TRcd]),
        (Mutation::FifthActInFaw, vec![Rule::TFaw]),
        (Mutation::StarveRef, vec![Rule::RefStarved]),
    ];
    for (mutation, expected_rules) in expect {
        let mutated = mutation
            .apply(&records)
            .unwrap_or_else(|| panic!("{} found no site in the storm trace", mutation.name()));
        let fired = lint_records(&mutated).rules_fired();
        assert!(
            fired.iter().any(|r| expected_rules.contains(r)),
            "{}: expected one of {:?}, got {:?}",
            mutation.name(),
            expected_rules,
            fired
        );
    }
}

/// The full self-test (what `trace lint --self-test` runs) passes on
/// the storm trace with every mutation applicable — proving at least
/// four distinct rule classes fire.
#[test]
fn storm_trace_self_test_proves_all_rule_classes() {
    let records = storm_trace();
    let report = mutate::self_test(&records);
    assert!(report.passed(), "{}", report.summary());
    for outcome in &report.outcomes {
        assert!(
            outcome.fired.is_some(),
            "{} skipped on the storm trace",
            outcome.mutation.name()
        );
    }
    assert!(report.classes_proven() >= mutate::MIN_CLASSES_PROVEN);
}

fn run_attack(shadow: Option<ShadowChecker>) -> hammertime::metrics::SimReport {
    let mut cfg = MachineConfig::fast(DefenseKind::None, 24);
    cfg.shadow = shadow;
    let mut scenario = CloudScenario::build(cfg).unwrap();
    scenario.arm_double_sided(4_000).unwrap();
    scenario.run_windows(30);
    scenario.report()
}

/// The live shadow checker is observation-only: enabling it changes no
/// output, the stream it sees is invariant-clean, and the ACT
/// conservation law holds against the device counters.
#[test]
fn shadow_checker_is_clean_and_changes_nothing() {
    let baseline = run_attack(None);
    let shadow = ShadowChecker::new();
    let shadowed = run_attack(Some(shadow.clone()));

    // Identical observable output (SimReport has no handle fields, so
    // JSON equality is full equality).
    assert_eq!(
        serde_json::to_string(&baseline).unwrap(),
        serde_json::to_string(&shadowed).unwrap(),
        "shadow checker perturbed the simulation"
    );
    assert!(baseline.flips_total > 0, "attack must actually flip bits");

    assert!(shadow.commands_checked() > 0, "shadow saw no commands");
    shadow.finish(Cycle(shadowed.cycles));
    let violations = shadow.violations();
    assert!(
        violations.is_empty(),
        "live stream violated invariants, first: {}",
        violations[0]
    );
    // Cross-layer conservation: every ACT the controller put on the
    // bus is accounted for by the device.
    assert_eq!(shadow.acts_observed(), shadowed.dram.acts);
}
