//! Determinism: identical configuration and seed must reproduce the
//! entire simulation bit-for-bit — reports, flip events, and
//! experiment tables. Reviewers rerun our numbers; they must get the
//! same ones.

use hammertime::machine::{Machine, MachineConfig};
use hammertime::scenario::{BenignKind, CloudScenario};
use hammertime::taxonomy::DefenseKind;
use hammertime_common::DomainId;
use hammertime_workloads::StreamWorkload;

fn full_scenario(seed: u64) -> String {
    let mut cfg = MachineConfig::fast(DefenseKind::VictimRefreshInstr, 24);
    cfg.seed = seed;
    let mut s = CloudScenario::build(cfg).unwrap();
    s.arm_double_sided(2_000).unwrap();
    s.add_benign(BenignKind::Random, 2, 200).unwrap();
    s.run_windows(60);
    serde_json::to_string(&s.report()).unwrap()
}

#[test]
fn same_seed_reproduces_full_report() {
    assert_eq!(full_scenario(7), full_scenario(7));
}

#[test]
fn different_seed_changes_something() {
    // Stochastic components (flip sampling, counter resets, random
    // workloads) must actually react to the seed.
    let a = full_scenario(7);
    let b = full_scenario(8);
    assert_ne!(a, b, "seed had no effect at all");
}

#[test]
fn flip_event_streams_are_identical() {
    let run = |seed: u64| {
        let mut cfg = MachineConfig::fast(DefenseKind::None, 24);
        cfg.seed = seed;
        let mut s = CloudScenario::build(cfg).unwrap();
        s.arm_double_sided(2_000).unwrap();
        s.run_windows(30);
        s.machine.drain_annotated_flips()
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x, y);
    }
}

#[test]
fn experiment_tables_are_reproducible() {
    let t1 = hammertime::experiments::e3_dma_blindspot(true).unwrap();
    let t2 = hammertime::experiments::e3_dma_blindspot(true).unwrap();
    assert_eq!(t1.rows, t2.rows);
}

#[test]
fn machine_stats_reproducible_under_mixed_tenancy() {
    let run = || {
        let mut m =
            Machine::new(MachineConfig::fast(DefenseKind::Para { prob: 0.05 }, 50)).unwrap();
        for d in 1..=3 {
            let arena = m.add_tenant(DomainId(d), 2).unwrap();
            m.set_workload(DomainId(d), Box::new(StreamWorkload::new(arena, 300, 7)))
                .unwrap();
        }
        m.run(500_000);
        let r = m.report();
        (r.dram, r.mc, r.cache, r.cycles)
    };
    assert_eq!(run(), run());
}
