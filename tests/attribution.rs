//! Per-tenant trigger-attribution regressions.
//!
//! The controller charges every mitigation trigger (TRR sample,
//! throttle delay, neighbor refresh, forced REF, ACT interrupt) to
//! the tenant that earned it. These tests pin the two ways that
//! accounting can go wrong for a *bystander*: a degraded counter
//! (stuck ACT-count window under the canonical chaos plan) must not
//! blame whoever happens to share the counter, and the BreakHammer
//! quota throttle must slow the suspect without taxing co-tenants.

use hammertime::machine::MachineConfig;
use hammertime::scenario::{BenignKind, CloudScenario};
use hammertime::taxonomy::DefenseKind;
use hammertime_common::FaultPlan;
use proptest::prelude::*;

const MAC: u64 = 24;

fn breakhammer() -> DefenseKind {
    DefenseKind::BreakHammer { score_threshold: 4 }
}

fn chaos_plan() -> FaultPlan {
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/chaos-plan.json"
    ))
    .expect("chaos fixture is readable");
    serde_json::from_str(&json).expect("chaos fixture parses")
}

/// Under the canonical 0xF3F3 chaos plan, `StuckActCountWindow`
/// faults freeze ACT-count windows mid-flight; when a stuck window
/// finally overflows, its per-domain composition is garbage. The
/// counter block therefore swallows such windows instead of
/// attributing them. The regression this pins: an innocent streaming
/// tenant whose own activation rate stays below the MAC must end the
/// run with zero interrupt charges and zero throttle charges, while
/// the hammering tenant is still caught.
#[test]
fn stuck_act_windows_do_not_inflate_innocent_tenants() {
    let mut cfg = MachineConfig::fast(breakhammer(), MAC);
    cfg.faults = Some(chaos_plan());
    let mut s = CloudScenario::build(cfg).unwrap();
    // Wide arena, few sweeps: the bystander's per-row ACT count stays
    // well under the MAC, so any interrupt charged to it is spurious.
    let innocent = s.add_benign(BenignKind::Stream, 8, 2_000).unwrap();
    s.arm_double_sided(3_000).unwrap();
    s.run_windows(40);

    let report = s.report();
    let mc = s.machine.mc();
    assert!(
        mc.fault_injections() > 0,
        "the chaos plan must actually inject faults"
    );

    let hot = mc.trigger_counts(s.attacker);
    let cold = mc.trigger_counts(innocent);
    assert!(
        hot.act_interrupts > 0,
        "the hammer must still overflow counters under chaos: {hot:?}"
    );
    assert_eq!(
        cold.act_interrupts, 0,
        "innocent tenant charged for a shared/stuck counter: {cold:?}"
    );
    assert_eq!(
        cold.throttle_delays, 0,
        "innocent tenant was quota-throttled: {cold:?}"
    );
    assert!(
        mc.mitigation().suspect_score(innocent) < mc.mitigation().suspect_score(s.attacker),
        "suspicion must concentrate on the hammer"
    );
    // The report mirrors the ledger for every charged tenant.
    assert_eq!(
        report.triggers_by_tenant.get(&s.attacker.0),
        Some(&hot),
        "report must carry the attacker's ledger entry"
    );
}

proptest! {
    /// BreakHammer differential, throttle-on vs throttle-off: the
    /// hammering tenant's completed-request count measurably drops,
    /// while the co-tenant victim completes no fewer of its own reads
    /// and suffers no more cross-domain flips. Throttling punishes
    /// the suspect, not the neighbourhood.
    #[test]
    fn throttle_differential_hits_only_the_suspect(seed in 0u64..1024) {
        let run = |defense: DefenseKind| {
            let mut cfg = MachineConfig::fast(defense, MAC);
            cfg.seed = 0x7417 ^ seed;
            let mut s = CloudScenario::build(cfg).unwrap();
            s.arm_double_sided(5_000).unwrap();
            s.victim_reads(400).unwrap();
            s.run_windows(12);
            s.report()
        };
        let off = run(DefenseKind::None);
        let on = run(breakhammer());
        let ops = |r: &hammertime::metrics::SimReport, d: u32| {
            r.ops_by_tenant.get(&d).copied().unwrap_or(0)
        };

        prop_assert!(
            on.overhead.quota_throttles > 0,
            "the hammer must trip the quota (seed {seed})"
        );
        prop_assert!(
            ops(&on, 1) < ops(&off, 1),
            "throttle must slow the hammer: {} !< {} (seed {seed})",
            ops(&on, 1), ops(&off, 1)
        );
        prop_assert!(
            ops(&on, 2) >= ops(&off, 2),
            "victim service must not degrade: {} < {} (seed {seed})",
            ops(&on, 2), ops(&off, 2)
        );
        prop_assert!(
            on.cross_flips_against(2) <= off.cross_flips_against(2),
            "victim flip exposure must not grow (seed {seed})"
        );
        // Stats blocks agree on the throttle count.
        prop_assert_eq!(on.overhead.quota_throttles, on.mc.quota_throttles);
    }
}
