//! Offline stand-in for `serde_json` over the vendored `serde`.
//!
//! Provides the three entry points the workspace uses: [`to_string`],
//! [`to_string_pretty`], and [`from_str`].

pub use serde::{Error, Value};

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible in practice (kept `Result` for API compatibility).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` to indented JSON.
///
/// # Errors
///
/// Returns [`Error`] if the compact encoding is not valid JSON (a bug
/// in a hand-written `Serialize` impl).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let parsed = serde::parse_json(&compact)?;
    let mut out = String::new();
    serde::render_pretty(&parsed, &mut out, 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::parse_json(s)?;
    T::deserialize_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_round_trip() {
        let v = vec![1u64, u64::MAX, 0];
        let s = to_string(&v).unwrap();
        assert_eq!(s, format!("[1,{},0]", u64::MAX));
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_indents() {
        let v = vec![vec![1u32], vec![2]];
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&p).unwrap();
        assert_eq!(back, v);
    }
}
