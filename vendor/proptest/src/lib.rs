//! Offline stand-in for `proptest`.
//!
//! Provides the subset the workspace's property suites use: the
//! [`proptest!`] macro, a [`strategy::Strategy`] trait with
//! `prop_map`, integer/float range strategies, `any::<T>()`,
//! `prop::collection::vec`, `Just`, `prop_oneof!`, and the
//! `prop_assert*` macros. Differences from the real crate:
//!
//! - No shrinking: a failing case panics with its inputs unshrunk.
//! - Deterministic seeding: each test's RNG is seeded from its name,
//!   so failures reproduce without a persistence file.
//! - Case count defaults to 64; override with `PROPTEST_CASES`.

/// Number of cases per property (env-overridable).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Error type threaded through property bodies (`return Ok(())` is
/// the "discard this case" idiom the suites use).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary byte string (e.g. the test name).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut x = h;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategies: how to sample a value of some type.
pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// A recipe producing values of `Value`.
    pub trait Strategy {
        /// The produced type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps the produced value through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit()
        }
    }

    /// The strategy returned by [`super::prelude::any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        choices: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds from pre-boxed choices.
        pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!choices.is_empty(), "prop_oneof! needs an alternative");
            Union { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].sample(rng)
        }
    }

    /// Boxes a strategy (helper for `prop_oneof!` type erasure).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// `prop::collection::vec(element, len_range)`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Range {
                start: self.len.start,
                end: self.len.end,
            }
            .sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Constructs a [`VecStrategy`].
    pub fn vec_strategy<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Collection strategies namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{vec_strategy, Strategy, VecStrategy};
        use std::ops::Range;

        /// A strategy for vectors with element strategy and length range.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            vec_strategy(element, len)
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// An unconstrained value of `T`.
    pub fn any<T: crate::strategy::Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any::default()
    }
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases()` sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut proptest_rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..$crate::cases() {
                    #[allow(clippy::redundant_closure_call)]
                let case = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut proptest_rng);)*
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = case {
                        panic!("property {} failed: {}", stringify!($name), e.0);
                    }
                }
            }
        )*
    };
}

/// `assert!` for property bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro compiles, samples, and respects ranges.
        #[test]
        fn ranges_hold(a in 5u64..10, v in prop::collection::vec(0u8..3, 1..9)) {
            prop_assert!((5..10).contains(&a));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 3));
        }

        /// Early `return Ok(())` discards a case.
        #[test]
        fn discard_works(x in any::<u64>()) {
            if x.is_multiple_of(2) {
                return Ok(());
            }
            prop_assert_ne!(x % 2, 0);
        }
    }

    #[test]
    fn oneof_and_map() {
        let s = prop_oneof![Just(1u32), Just(2), (0u32..4).prop_map(|x| x + 10)];
        let mut rng = crate::TestRng::from_name("oneof");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v == 1 || v == 2 || (10..14).contains(&v));
        }
    }
}
