//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored
//! `serde` stand-in.
//!
//! `syn`/`quote` are unavailable in this offline environment, so the
//! item is parsed directly from the `proc_macro::TokenStream` and the
//! impl is emitted as source text. Supported shapes are exactly what
//! the workspace uses: non-generic structs (named, tuple, unit) and
//! enums whose variants are unit, tuple, or struct-like. The JSON
//! encoding mirrors serde's externally-tagged defaults:
//!
//! - named struct        → `{"field": value, …}`
//! - 1-field tuple struct → the inner value (newtype transparency)
//! - n-field tuple struct → `[v0, …]`
//! - unit enum variant   → `"Variant"`
//! - newtype variant     → `{"Variant": value}`
//! - tuple variant       → `{"Variant": [v0, …]}`
//! - struct variant      → `{"Variant": {"field": value, …}}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What one parsed item looks like.
enum Item {
    Struct(String, Fields),
    Enum(String, Vec<(String, Fields)>),
}

/// Field shape of a struct or enum variant.
enum Fields {
    Unit,
    /// Tuple fields: just how many.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct(name, fields) => {
            let body = serialize_fields_body(fields, "self", None);
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn serialize_json(&self, out: &mut ::std::string::String) {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => out.push_str(\"\\\"{vname}\\\"\"),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let pat = binds.join(", ");
                        let mut body = String::new();
                        body.push_str(&format!("out.push_str(\"{{\\\"{vname}\\\":\");"));
                        if *n == 1 {
                            body.push_str("serde::Serialize::serialize_json(f0, out);");
                        } else {
                            body.push_str("out.push('[');");
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    body.push_str("out.push(',');");
                                }
                                body.push_str(&format!(
                                    "serde::Serialize::serialize_json({b}, out);"
                                ));
                            }
                            body.push_str("out.push(']');");
                        }
                        body.push_str("out.push('}');");
                        arms.push_str(&format!("{name}::{vname}({pat}) => {{ {body} }}\n"));
                    }
                    Fields::Named(fields) => {
                        let pat = fields.join(", ");
                        let mut body = String::new();
                        body.push_str(&format!("out.push_str(\"{{\\\"{vname}\\\":{{\");"));
                        for (i, f) in fields.iter().enumerate() {
                            if i > 0 {
                                body.push_str("out.push(',');");
                            }
                            body.push_str(&format!(
                                "serde::write_json_key(out, \"{f}\");\
                                 serde::Serialize::serialize_json({f}, out);"
                            ));
                        }
                        body.push_str("out.push('}');out.push('}');");
                        arms.push_str(&format!("{name}::{vname} {{ {pat} }} => {{ {body} }}\n"));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn serialize_json(&self, out: &mut ::std::string::String) {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("derive(Serialize) generated invalid code")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct(name, fields) => {
            let body = deserialize_fields_expr(fields, name, name);
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn deserialize_json(v: &serde::Value) -> ::std::result::Result<{name}, serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => return Ok({name}::{vname}),\n"))
                    }
                    _ => {
                        let ctor = format!("{name}::{vname}");
                        let expr = deserialize_fields_expr(fields, &ctor, name);
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {{ let v = inner; return {expr}; }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn deserialize_json(v: &serde::Value) -> ::std::result::Result<{name}, serde::Error> {{\n\
                 if let Some(s) = v.as_str() {{ match s {{ {unit_arms} _ => {{}} }} }}\n\
                 if let Some(obj) = v.as_obj() {{\n\
                   if let [(tag, inner)] = obj {{\n\
                     #[allow(unused_variables)]\n\
                     match tag.as_str() {{ {payload_arms} _ => {{}} }}\n\
                   }}\n\
                 }}\n\
                 Err(serde::Error::expected(\"variant of {name}\", \"{name}\"))\n\
                 }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("derive(Deserialize) generated invalid code")
}

/// Emits the statements serializing `fields` of `recv` (a named struct
/// receiver, i.e. `self`).
fn serialize_fields_body(fields: &Fields, recv: &str, _variant: Option<&str>) -> String {
    match fields {
        Fields::Unit => "out.push_str(\"null\");".to_string(),
        Fields::Tuple(1) => {
            format!("serde::Serialize::serialize_json(&{recv}.0, out);")
        }
        Fields::Tuple(n) => {
            let mut body = String::from("out.push('[');");
            for i in 0..*n {
                if i > 0 {
                    body.push_str("out.push(',');");
                }
                body.push_str(&format!(
                    "serde::Serialize::serialize_json(&{recv}.{i}, out);"
                ));
            }
            body.push_str("out.push(']');");
            body
        }
        Fields::Named(names) => {
            let mut body = String::from("out.push('{');");
            for (i, f) in names.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');");
                }
                body.push_str(&format!(
                    "serde::write_json_key(out, \"{f}\");\
                     serde::Serialize::serialize_json(&{recv}.{f}, out);"
                ));
            }
            body.push_str("out.push('}');");
            body
        }
    }
}

/// Emits an expression of type `Result<T, serde::Error>` that decodes
/// `fields` from the in-scope `v: &serde::Value`, constructing via
/// `ctor` (`Type` or `Type::Variant`).
fn deserialize_fields_expr(fields: &Fields, ctor: &str, context: &str) -> String {
    match fields {
        Fields::Unit => format!("Ok({ctor})"),
        Fields::Tuple(1) => format!("Ok({ctor}(serde::Deserialize::deserialize_json(v)?))"),
        Fields::Tuple(n) => {
            let mut args = String::new();
            for i in 0..*n {
                if i > 0 {
                    args.push_str(", ");
                }
                args.push_str(&format!("serde::Deserialize::deserialize_json(&arr[{i}])?"));
            }
            format!(
                "{{ let arr = v.as_arr().ok_or_else(|| serde::Error::expected(\"array\", \"{context}\"))?;\n\
                 if arr.len() != {n} {{ return Err(serde::Error::expected(\"{n}-element array\", \"{context}\")); }}\n\
                 Ok({ctor}({args})) }}"
            )
        }
        Fields::Named(names) => {
            let mut inits = String::new();
            for f in names {
                inits.push_str(&format!(
                    "{f}: serde::field(obj, \"{f}\", \"{context}\")?,\n"
                ));
            }
            format!(
                "{{ let obj = v.as_obj().ok_or_else(|| serde::Error::expected(\"object\", \"{context}\"))?;\n\
                 Ok({ctor} {{ {inits} }}) }}"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Token-stream parsing.
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stand-in: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => {
            // Named: `{ … }`; tuple: `( … ) ;`; unit: `;`.
            match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Item::Struct(name, Fields::Named(parse_named_fields(g.stream())))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Item::Struct(name, Fields::Tuple(count_tuple_fields(g.stream())))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct(name, Fields::Unit),
                other => panic!("serde derive: malformed struct `{name}`: {other:?}"),
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde derive: malformed enum `{name}`: {other:?}"),
            };
            Item::Enum(name, parse_variants(body))
        }
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

/// Advances `i` past any leading `#[…]` attributes and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[…]`.
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // Optional `(crate)` / `(super)` etc.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream on top-level commas, treating `<…>` as
/// nesting (groups are already atomic token trees).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Parses `name: Type, …` returning the field names in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut i = 0usize;
            skip_attrs_and_vis(&part, &mut i);
            match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .count()
}

/// Parses enum variants: `Name`, `Name(Ty, …)`, `Name { f: Ty, … }`,
/// optionally with discriminants (`Name = 3`).
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    split_top_level(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut i = 0usize;
            skip_attrs_and_vis(&part, &mut i);
            let name = match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde derive: expected variant name, got {other:?}"),
            };
            i += 1;
            let fields = match part.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                // `= discriminant` or nothing: unit variant.
                _ => Fields::Unit,
            };
            (name, fields)
        })
        .collect()
}
