//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput annotations, `Bencher::iter` and
//! `iter_batched`, and `black_box` — with plain wall-clock timing
//! (median of the sampled runs) instead of criterion's full statistics
//! pipeline. Good enough to smoke-run benches and eyeball regressions
//! offline; not a statistical replacement.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched inputs are sized (accepted for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Bencher {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Times `routine` for the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn print_result(id: &str, median: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {id:<48} median {median:>12.3?}{rate}");
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Criterion {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        print_result(&id.to_string(), b.median(), None);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        print_result(&format!("{}/{id}", self.name), b.median(), self.throughput);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 4], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn harness_runs() {
        smoke();
    }
}
