//! Offline stand-in for `serde`, vendored into this workspace.
//!
//! The build environment has no network access, so the real `serde`
//! cannot be fetched. This crate provides the subset the workspace
//! uses: `#[derive(Serialize, Deserialize)]` plus blanket impls for
//! the standard types that appear in reports, traces, and tables. The
//! data model is JSON-only (that is the only format the workspace
//! serializes to, via the sibling `serde_json` stand-in).
//!
//! Numbers are carried as raw token strings end to end so `u64` values
//! above 2^53 round-trip exactly (the workload property tests
//! serialize traces holding arbitrary `u64` addresses).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Deserialization/serialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds a "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> Error {
        Error(format!("expected {what} while deserializing {context}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its raw token so integer width is preserved.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a JSON string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The raw number token, if this is a JSON number.
    pub fn as_num(&self) -> Option<&str> {
        match self {
            Value::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The elements, if this is a JSON array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is a JSON object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialization into a JSON string.
///
/// Unlike real serde this is not format-generic; the workspace only
/// ever serializes to JSON.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Deserialization from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    /// Decodes `Self` from `v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `v` does not have the expected shape.
    fn deserialize_json(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-generated code.
// ---------------------------------------------------------------------------

/// Appends `"key":` to `out` (derive helper).
pub fn write_json_key(out: &mut String, key: &str) {
    write_json_string(out, key);
    out.push(':');
}

/// Appends a JSON string literal (escaped) to `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Extracts field `name` from an object's members (derive helper).
///
/// # Errors
///
/// Returns [`Error`] when the field is missing or has the wrong shape.
pub fn field<T: Deserialize>(
    obj: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, Error> {
    let v = obj
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field `{name}` in {context}")))?;
    T::deserialize_json(v)
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &Value) -> Result<Self, Error> {
                v.as_num()
                    .ok_or_else(|| Error::expected("number", stringify!($t)))?
                    .parse::<$t>()
                    .map_err(|e| Error(format!("bad {}: {e}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // Rust's shortest-round-trip Display is valid JSON
                    // for finite values and parses back exactly.
                    out.push_str(&self.to_string());
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Null => Ok(<$t>::NAN),
                    _ => v
                        .as_num()
                        .ok_or_else(|| Error::expected("number", stringify!($t)))?
                        .parse::<$t>()
                        .map_err(|e| Error(format!("bad {}: {e}", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

/// Real serde deserializes `&'de str` by borrowing from the input;
/// this stand-in parses into an owned `Value` first, so borrowing is
/// impossible. Structs in this workspace only use `&'static str` for
/// interned display names, so leaking the handful of deserialized
/// names is acceptable.
impl Deserialize for &'static str {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| Error::expected("string", "&str"))
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, &self.to_string());
    }
}

impl Deserialize for char {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::deserialize_json)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_arr()
            .ok_or_else(|| Error::expected("array", "tuple"))?;
        if a.len() != 2 {
            return Err(Error::expected("2-element array", "tuple"));
        }
        Ok((A::deserialize_json(&a[0])?, B::deserialize_json(&a[1])?))
    }
}

/// Map keys: JSON object keys are strings, so keyed collections need a
/// string round trip for their key type.
pub trait MapKey: Sized {
    /// Encodes the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Decodes the key from a JSON object key.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on malformed keys.
    fn from_key(s: &str) -> Result<Self, Error>;
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|e| Error(format!("bad map key: {e}")))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_key(out, &k.to_key());
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        let obj = v.as_obj().ok_or_else(|| Error::expected("object", "map"))?;
        let mut map = BTreeMap::new();
        for (k, val) in obj {
            map.insert(K::from_key(k)?, V::deserialize_json(val)?);
        }
        Ok(map)
    }
}

impl<K: MapKey + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_json(&self, out: &mut String) {
        // Sort keys so serialization is deterministic regardless of
        // hash iteration order — the determinism suite compares
        // serialized reports byte for byte.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        out.push('{');
        for (i, (k, v)) in entries.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_key(out, &k.to_key());
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        let obj = v.as_obj().ok_or_else(|| Error::expected("object", "map"))?;
        let mut map = HashMap::with_capacity_and_hasher(obj.len(), S::default());
        for (k, val) in obj {
            map.insert(K::from_key(k)?, V::deserialize_json(val)?);
        }
        Ok(map)
    }
}

// ---------------------------------------------------------------------------
// JSON text parsing (used by the serde_json stand-in).
// ---------------------------------------------------------------------------

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input.
pub fn parse_json(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing data at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(Error("unexpected end of input".into()));
    };
    match c {
        b'n' => expect_lit(b, pos, "null").map(|()| Value::Null),
        b't' => expect_lit(b, pos, "true").map(|()| Value::Bool(true)),
        b'f' => expect_lit(b, pos, "false").map(|()| Value::Bool(false)),
        b'"' => parse_string(b, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(Error(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        b'-' | b'0'..=b'9' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            Ok(Value::Num(
                std::str::from_utf8(&b[start..*pos])
                    .map_err(|_| Error("invalid utf8 in number".into()))?
                    .to_string(),
            ))
        }
        other => Err(Error(format!("unexpected byte {other:#x} at {pos}"))),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error(format!("expected `{lit}` at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected '\"' at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(Error("unterminated string".into()));
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err(Error("unterminated escape".into()));
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error("bad \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error("bad \\u escape".into()))?;
                        *pos += 4;
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error("bad codepoint".into()))?,
                        );
                    }
                    other => return Err(Error(format!("bad escape \\{}", other as char))),
                }
            }
            c => {
                // Re-decode multi-byte UTF-8 sequences.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let start = *pos - 1;
                    let width = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = b
                        .get(start..start + width)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| Error("invalid utf8 in string".into()))?;
                    out.push_str(chunk);
                    *pos = start + width;
                }
            }
        }
    }
}

/// Renders a [`Value`] back to compact JSON.
pub fn render_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => out.push_str(n),
        Value::Str(s) => write_json_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_key(out, k);
                render_compact(val, out);
            }
            out.push('}');
        }
    }
}

/// Renders a [`Value`] as indented multi-line JSON.
pub fn render_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                render_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_json_string(out, k);
                out.push_str(": ");
                render_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => render_compact(other, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let src = r#"{"a":[1,2.5,null,true],"b":"x\"y","c":{"k":18446744073709551615}}"#;
        let v = parse_json(src).unwrap();
        let mut out = String::new();
        render_compact(&v, &mut out);
        assert_eq!(out, src);
    }

    #[test]
    fn u64_precision_survives() {
        let v = parse_json("18446744073709551615").unwrap();
        assert_eq!(u64::deserialize_json(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn string_escapes() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\n\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\n\\u0001\"");
        let back = parse_json(&out).unwrap();
        assert_eq!(back.as_str().unwrap(), "a\"b\\c\n\u{1}");
    }

    #[test]
    fn maps_sort_keys() {
        let mut m: HashMap<u32, u64> = HashMap::new();
        m.insert(10, 1);
        m.insert(2, 2);
        let mut out = String::new();
        m.serialize_json(&mut out);
        assert_eq!(out, r#"{"2":2,"10":1}"#);
    }
}
