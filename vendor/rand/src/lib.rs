//! Offline stand-in for the `rand` crate.
//!
//! The workspace funnels all randomness through
//! `hammertime_common::DetRng`, which uses exactly this surface:
//! `rngs::SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}`. `SmallRng` here is xoshiro256++ seeded via
//! SplitMix64 — the same algorithm family the real crate uses on
//! 64-bit targets, deterministic and cheap.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Values samplable uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Rejection sampling for an unbiased draw.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, decent-quality PRNG.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 stream expands the seed into full state; it
            // cannot produce the all-zero state xoshiro forbids.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SmallRng {
        /// Exposes the raw xoshiro256++ state, for checkpoint codecs
        /// that must serialize a generator mid-stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured state.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which xoshiro forbids (it is
        /// a fixed point) and which [`SmallRng::state`] can never
        /// return.
        pub fn from_state(s: [u64; 4]) -> SmallRng {
            assert!(s.iter().any(|&w| w != 0), "all-zero xoshiro state");
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
        let f = r.gen_range(0.5f64..0.75);
        assert!((0.5..0.75).contains(&f));
    }

    #[test]
    fn gen_bool_calibrated() {
        let mut r = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_interval() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
