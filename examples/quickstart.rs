//! Quickstart: mount a Rowhammer attack on an undefended machine,
//! then stop it with one of the paper's proposed defenses.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hammertime::machine::MachineConfig;
use hammertime::scenario::CloudScenario;
use hammertime::taxonomy::DefenseKind;

fn run(defense: DefenseKind) -> hammertime::metrics::SimReport {
    // Two tenants on one host: domain 1 attacks, domain 2 is the
    // victim. `fast` uses a compressed machine (medium geometry,
    // scaled-down MAC of 24) so this finishes in milliseconds.
    let mut scenario =
        CloudScenario::build(MachineConfig::fast(defense, 24)).expect("machine builds");
    // A double-sided hammer: two attacker rows sandwiching a victim
    // row, 4000 flush+read accesses.
    let targeting = scenario.arm_double_sided(4_000).expect("attack arms");
    println!("  [{defense}] targeting: {targeting:?}");
    // The victim reads its own memory, as a real tenant would.
    scenario.victim_reads(500).expect("victim workload");
    scenario.run_windows(60);
    scenario.report()
}

fn main() {
    println!("== hammertime quickstart ==\n");
    println!("1. Undefended machine:");
    let undefended = run(DefenseKind::None);
    println!(
        "  {} bit flips, {} in the victim's memory — the attack works.\n",
        undefended.flips_total,
        undefended.cross_flips_against(2),
    );
    assert!(undefended.cross_flips_against(2) > 0);

    println!("2. Same attack, refresh-centric defense (the paper's refresh instruction):");
    let defended = run(DefenseKind::VictimRefreshInstr);
    println!(
        "  {} flips against the victim; defense issued {} victim refreshes \
         triggered by {} precise ACT interrupts.\n",
        defended.cross_flips_against(2),
        defended.overhead.refresh_ops,
        defended.overhead.interrupts,
    );
    assert_eq!(defended.cross_flips_against(2), 0);

    println!("3. Same attack, isolation-centric defense (subarray-isolated interleaving):");
    let isolated = run(DefenseKind::SubarrayIsolation);
    println!(
        "  {} flips against the victim; zero runtime defense actions ({}) — \
         isolation is free once the allocator places domains in disjoint \
         subarray groups.\n",
        isolated.cross_flips_against(2),
        isolated.overhead.actions,
    );
    assert_eq!(isolated.cross_flips_against(2), 0);

    println!("Summary:");
    for r in [&undefended, &defended, &isolated] {
        println!("  {}", r.summary());
    }
}
