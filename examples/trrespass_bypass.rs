//! TRRespass in miniature (paper §3): the in-DRAM TRR blackbox
//! mitigation defends single- and double-sided hammers, then collapses
//! the moment the attack uses more aggressor rows than the vendor's
//! tracker has entries.
//!
//! ```sh
//! cargo run --release --example trrespass_bypass
//! ```

use hammertime::machine::MachineConfig;
use hammertime::scenario::CloudScenario;
use hammertime::taxonomy::DefenseKind;

fn main() {
    println!("== TRRespass bypass: many-sided hammer vs in-DRAM TRR (tracker = 4 entries) ==\n");
    println!(
        "{:>10} {:>12} {:>16} {:>18}",
        "aggressors", "total flips", "victim flips", "TRR refreshes"
    );
    let mut cliff = None;
    for n_aggr in [2usize, 3, 4, 6, 8, 12, 16] {
        let cfg = MachineConfig::fast(DefenseKind::InDramTrr { table_size: 4 }, 24);
        let mut s = CloudScenario::build_sized(cfg, 16).expect("build");
        s.arm_many_sided(n_aggr, 6_000).expect("attack");
        s.run_windows(100);
        let r = s.report();
        println!(
            "{:>10} {:>12} {:>16} {:>18}",
            n_aggr,
            r.flips_total,
            r.cross_flips_against(2),
            r.dram.trr_refresh_rows
        );
        if cliff.is_none() && r.flips_total > 0 {
            cliff = Some(n_aggr);
        }
    }
    match cliff {
        Some(n) => println!(
            "\nThe tracker holds 4 aggressors; at {n} distinct aggressors the\n\
             Misra-Gries counters thrash below the device's confidence\n\
             threshold and the TRR engine goes silent (note the refresh\n\
             column dropping to zero) — the TRRespass mechanism."
        ),
        None => println!("\nNo bypass observed — increase attack length."),
    }
}
