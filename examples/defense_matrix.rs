//! Regenerates the paper's Table 1 as a measured matrix: every defense
//! in the taxonomy catalog against every attack class, plus the benign
//! cost — the summary artifact of the whole evaluation.
//!
//! Pass `--full` for the longer (non-quick) run the benchmarks use.
//!
//! ```sh
//! cargo run --release --example defense_matrix
//! cargo run --release --example defense_matrix -- --full
//! ```

use hammertime::experiments;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let quick = !full;
    println!(
        "== defense matrix ({} mode) ==\n",
        if quick { "quick" } else { "full" }
    );
    let t1 = experiments::t1_defense_matrix(quick).expect("T1 runs");
    println!("{t1}");
    let e9 = experiments::e9_overhead(quick).expect("E9 runs");
    println!("{e9}");
    println!(
        "Reading guide: the three paper proposals (subarray-isolation,\n\
         aggressor-remap / line-locking, victim-refresh/instr+refn) each zero\n\
         the attack columns; their benign cost ranges from free (isolation)\n\
         to visible (remap). Baselines fail somewhere: 'none' everywhere,\n\
         'anvil' on DMA, small 'trr' trackers on many-sided patterns."
    );
}
