//! The paper's motivating scenario (§1): a cloud host with several
//! tenant VMs, one of them malicious, including a DMA-capable device —
//! the workload the ANVIL-style PMU defenses cannot see.
//!
//! Sweeps the defense catalog and prints, for each defense: whether
//! the CPU and DMA attacks were stopped, and what the benign tenants
//! paid in throughput.
//!
//! ```sh
//! cargo run --release --example cloud_multitenant
//! ```

use hammertime::machine::MachineConfig;
use hammertime::scenario::{BenignKind, CloudScenario};
use hammertime::taxonomy::DefenseKind;

const MAC: u64 = 24;

struct Outcome {
    defense: DefenseKind,
    cpu_flips: u64,
    dma_flips: u64,
    benign_ops: u64,
    cycles: u64,
}

fn attack(defense: DefenseKind, dma: bool) -> u64 {
    let mut s = CloudScenario::build(MachineConfig::fast(defense, MAC)).expect("build");
    if dma {
        s.arm_dma(3_000).expect("dma attack");
    } else {
        s.arm_double_sided(3_000).expect("cpu attack");
    }
    s.victim_reads(300).expect("victim");
    s.run_windows(50);
    s.report().cross_flips_against(2)
}

fn benign(defense: DefenseKind) -> (u64, u64) {
    let mut s = CloudScenario::build(MachineConfig::fast(defense, MAC)).expect("build");
    s.add_benign(BenignKind::Stream, 2, 500).expect("stream");
    s.add_benign(BenignKind::Random, 2, 500).expect("random");
    s.add_benign(BenignKind::Zipfian, 2, 500).expect("zipf");
    // Run until the benign tenants finish (makespan).
    let t_refw = s.machine.config().timing.t_refw;
    for _ in 0..2_000 {
        s.machine.run(t_refw);
        if s.machine.all_finished() {
            break;
        }
    }
    let r = s.report();
    (r.total_ops(), r.cycles)
}

fn main() {
    println!("== cloud multi-tenant sweep: attacker VM + DMA device + 3 benign VMs ==\n");
    let mut outcomes = Vec::new();
    for defense in DefenseKind::catalog(MAC) {
        let cpu_flips = attack(defense, false);
        let dma_flips = attack(defense, true);
        let (benign_ops, cycles) = benign(defense);
        outcomes.push(Outcome {
            defense,
            cpu_flips,
            dma_flips,
            benign_ops,
            cycles,
        });
    }
    println!(
        "{:<26} {:<18} {:>9} {:>9} {:>14}",
        "defense", "class", "cpu-flips", "dma-flips", "benign ops/kcyc"
    );
    for o in &outcomes {
        let class = o
            .defense
            .class()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "-".into());
        let thrpt = o.benign_ops as f64 * 1000.0 / o.cycles.max(1) as f64;
        let verdict = match (o.cpu_flips, o.dma_flips) {
            (0, 0) => "",
            (0, _) => "  <- DMA blind spot",
            _ => "  <- vulnerable",
        };
        println!(
            "{:<26} {:<18} {:>9} {:>9} {:>14.2}{verdict}",
            o.defense.name(),
            class,
            o.cpu_flips,
            o.dma_flips,
            thrpt
        );
    }
    println!(
        "\nNote the ANVIL row: it stops the CPU hammer via PMU sampling but is\n\
         blind to the DMA device (paper §1) — exactly the gap the paper's\n\
         MC-level precise ACT interrupts close."
    );
}
