//! Enclave memory under Rowhammer (paper §4.4): integrity-checked
//! memory converts corruption into a platform denial-of-service, while
//! unchecked memory silently corrupts — unless the CPU delivers ACT
//! interrupts to the enclave so it can exit or request a remap.
//!
//! ```sh
//! cargo run --release --example enclave_dos
//! ```

use hammertime::machine::MachineConfig;
use hammertime::scenario::CloudScenario;
use hammertime::taxonomy::DefenseKind;
use hammertime_os::AttackResponse;

fn run(label: &str, integrity_checked: bool, response: AttackResponse, interrupts: bool) {
    // MAC above the victim's own activation volume; the host runs no
    // defense of its own — the enclave is on its own (§4.4's threat
    // model: the host OS is untrusted).
    let mut cfg = MachineConfig::fast(DefenseKind::None, 64);
    cfg.force_act_counters = interrupts;
    let mut s = CloudScenario::build_sized(cfg, 4).expect("build");
    let victim = s.victim;
    s.machine.make_enclave(victim, integrity_checked, response);
    s.arm_double_sided(3_000).expect("attack");
    s.victim_reads(400).expect("enclave workload");
    s.run_windows(50);
    let enclave = s.machine.enclave(victim).cloned().expect("enclave exists");
    let r = s.report();
    println!("{label}:");
    println!("  enclave status:     {:?}", enclave.status);
    println!("  poisoned reads:     {}", enclave.poisoned_reads);
    println!("  interrupts to it:   {}", enclave.interrupts_seen);
    println!("  flips in its pages: {}", r.cross_flips_against(victim.0));
    match &r.lockup {
        Some(msg) => println!("  PLATFORM LOCKUP:    {msg}"),
        None => println!("  platform:           healthy"),
    }
    println!();
}

fn main() {
    println!("== enclave memory under a hammering co-tenant (§4.4) ==\n");
    run(
        "1. SGX-style integrity-checked memory, no interrupt delivery",
        true,
        AttackResponse::Ignore,
        false,
    );
    run(
        "2. Unchecked memory, no interrupt delivery (the dangerous case)",
        false,
        AttackResponse::Ignore,
        false,
    );
    run(
        "3. Unchecked memory + enclave-visible ACT interrupts, exit policy",
        false,
        AttackResponse::Exit,
        true,
    );
    run(
        "4. Unchecked memory + enclave-visible ACT interrupts, remap policy",
        false,
        AttackResponse::RequestRemap,
        true,
    );
    println!(
        "Takeaways: (1) integrity checking bounds the damage to DoS — the\n\
         machine locks up before corrupted state is consumed; (2) without\n\
         checks the enclave is silently corrupted; (3)-(4) the paper's\n\
         enclave-visible interrupts restore safety without trusting the\n\
         host: exit beats corruption, remap even preserves availability."
    );
}
