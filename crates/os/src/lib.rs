//! Model host OS for the `hammertime` workspace.
//!
//! Everything the paper asks the *software* side of the co-design to
//! do lives here:
//!
//! - [`frame_alloc`]: the physical frame allocator with
//!   Rowhammer-aware placement policies (isolation-centric defenses
//!   are allocation policies, §4.1);
//! - [`page_table`]: per-domain address spaces and the page-remap
//!   primitive;
//! - [`defense`]: the runtime defense daemons — frequency-centric
//!   (aggressor remapping, cache-line locking, §4.2), refresh-centric
//!   (victim refresh via the proposed instruction, §4.3), and the
//!   ANVIL baseline with its DMA blind spot;
//! - [`adjacency`]: inference of subarray boundaries and internal row
//!   remaps from hammer-probe outcomes (§2.1, §4.1);
//! - [`enclave`]: enclave-memory behaviour under attack (§4.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod defense;
pub mod enclave;
pub mod frame_alloc;
pub mod page_table;

pub use adjacency::AdjacencyMap;
pub use defense::{DefenseAction, NoDefense, SoftwareDefense, Topology};
pub use enclave::{AttackResponse, Enclave, EnclaveReaction, EnclaveStatus};
pub use frame_alloc::{FrameAllocator, PlacementPolicy};
pub use page_table::{AddressSpaces, PageTable};
