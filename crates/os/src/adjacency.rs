//! Row-adjacency, subarray-boundary, and remap inference.
//!
//! DRAM vendors expose neither internal subarray boundaries nor row
//! remappings, but both can be inferred from software by observing
//! which hammer attacks succeed (paper §2.1, §4.1): disturbance only
//! crosses *internally adjacent* rows within one subarray, so the flip
//! pattern of a probing campaign reveals the hidden structure.
//!
//! The algorithms here are pure: the caller supplies a `probe`
//! closure that hammers a logical row (on the real machine model) and
//! reports which logical victim rows flipped. Experiment E7 drives
//! them against modules with remapping enabled and scores accuracy.

use std::collections::HashMap;

/// The result of probing every row of a bank: `victims_of[r]` are the
/// logical rows that flipped when logical row `r` was hammered.
#[derive(Debug, Clone, Default)]
pub struct AdjacencyMap {
    /// Victim rows observed per hammered row.
    pub victims_of: HashMap<u32, Vec<u32>>,
}

impl AdjacencyMap {
    /// Builds the map by probing every row in `0..rows`.
    pub fn build(rows: u32, probe: &mut dyn FnMut(u32) -> Vec<u32>) -> AdjacencyMap {
        let mut victims_of = HashMap::new();
        for r in 0..rows {
            let v = probe(r);
            if !v.is_empty() {
                victims_of.insert(r, v);
            }
        }
        AdjacencyMap { victims_of }
    }

    /// The observed victims of `row` (empty if none flipped).
    pub fn victims(&self, row: u32) -> &[u32] {
        self.victims_of.get(&row).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Infers subarray boundaries: position `p` (the cut between rows
    /// `p-1` and `p`) is a boundary when no observed disturbance edge
    /// crosses it. Interior cuts always see crossings because an
    /// aggressor flips victims on both sides; electromagnetically
    /// isolated subarray seams never do.
    ///
    /// Returns cut positions in `1..rows`. Rows that never flipped
    /// anything leave their cuts unconstrained, so probe campaigns
    /// must be aggressive enough to flip reliably.
    pub fn infer_boundaries(&self, rows: u32) -> Vec<u32> {
        let mut crossed = vec![false; rows as usize + 1];
        for (&r, victims) in &self.victims_of {
            for &v in victims {
                let (lo, hi) = if r < v { (r, v) } else { (v, r) };
                for p in (lo + 1)..=hi {
                    crossed[p as usize] = true;
                }
            }
        }
        (1..rows).filter(|&p| !crossed[p as usize]).collect()
    }

    /// Flags logically-labelled rows involved in internal remapping:
    /// any hammered row whose victims include a row farther than
    /// `assumed_radius` away in logical space must have been remapped
    /// (or disturbed a remapped victim).
    pub fn infer_remap_suspects(&self, assumed_radius: u32) -> Vec<u32> {
        let mut suspects: Vec<u32> = self
            .victims_of
            .iter()
            .filter(|(&r, victims)| victims.iter().any(|&v| v.abs_diff(r) > assumed_radius))
            .map(|(&r, _)| r)
            .collect();
        suspects.sort_unstable();
        suspects
    }

    /// The safe victim set a refresh-centric defense should cover for
    /// `row`: observed victims if the row was probed, otherwise the
    /// logical neighbors within `radius` (the default assumption).
    pub fn victims_or_default(&self, row: u32, radius: u32, rows: u32) -> Vec<u32> {
        let observed = self.victims(row);
        if !observed.is_empty() {
            return observed.to_vec();
        }
        let mut out = Vec::new();
        for d in 1..=radius {
            if let Some(v) = row.checked_sub(d) {
                out.push(v);
            }
            if row + d < rows {
                out.push(row + d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic module: 32 rows, subarrays of 8, radius 1, rows 3
    /// and 20 swapped internally.
    fn synthetic_probe(r: u32) -> Vec<u32> {
        let to_internal = |x: u32| match x {
            3 => 20,
            20 => 3,
            other => other,
        };
        let internal = to_internal(r);
        let mut victims = Vec::new();
        for d in [-1i64, 1] {
            let vi = internal as i64 + d;
            if !(0..32).contains(&vi) {
                continue;
            }
            let vi = vi as u32;
            // Stay within the internal subarray (blocks of 8).
            if vi / 8 != internal / 8 {
                continue;
            }
            victims.push(to_internal(vi)); // report logical label
        }
        victims
    }

    #[test]
    fn boundaries_found_on_clean_module() {
        let mut probe = |r: u32| {
            let mut v = Vec::new();
            for d in [-1i64, 1] {
                let x = r as i64 + d;
                if (0..32).contains(&x) && (x as u32) / 8 == r / 8 {
                    v.push(x as u32);
                }
            }
            v
        };
        let map = AdjacencyMap::build(32, &mut probe);
        assert_eq!(map.infer_boundaries(32), vec![8, 16, 24]);
        assert!(map.infer_remap_suspects(1).is_empty());
    }

    #[test]
    fn remapped_rows_are_flagged() {
        let map = AdjacencyMap::build(32, &mut synthetic_probe);
        let suspects = map.infer_remap_suspects(1);
        // Hammering 3 disturbs internal 19/21 -> logical 19, 21 (far).
        // Hammering 19/21 disturbs internal 20 -> logical 3 (far).
        assert!(suspects.contains(&3));
        assert!(suspects.contains(&19) || suspects.contains(&21));
        assert!(!suspects.contains(&10), "clean rows must not be flagged");
    }

    #[test]
    fn victims_or_default_prefers_observations() {
        let map = AdjacencyMap::build(32, &mut synthetic_probe);
        // Row 3 is remapped: observed victims differ from logical +-1.
        let v3 = map.victims_or_default(3, 1, 32);
        assert_eq!(v3, map.victims(3));
        assert!(!v3.contains(&2) && !v3.contains(&4));
        // An unprobed map falls back to logical neighbors.
        let empty = AdjacencyMap::default();
        assert_eq!(empty.victims_or_default(5, 1, 32), vec![4, 6]);
        assert_eq!(empty.victims_or_default(0, 2, 32), vec![1, 2]);
        assert_eq!(empty.victims_or_default(31, 1, 32), vec![30]);
    }

    #[test]
    fn unprobed_rows_leave_boundaries_unconstrained() {
        // Probing nothing claims every cut is a boundary — the method
        // documents this; the caller must probe aggressively.
        let map = AdjacencyMap::default();
        assert_eq!(map.infer_boundaries(4), vec![1, 2, 3]);
    }
}
