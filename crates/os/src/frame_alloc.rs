//! Physical frame allocation with Rowhammer-aware placement policies.
//!
//! The isolation-centric mitigations differ only in *where* the host
//! allocator places each trust domain's frames (paper §4.1):
//!
//! - [`PlacementPolicy::Default`] — first fit, domains mix freely
//!   (vulnerable baseline).
//! - [`PlacementPolicy::SubarrayGroup`] — the paper's proposal: each
//!   domain draws from its own subarray group; interleaving stays on.
//! - [`PlacementPolicy::BankPartition`] — the prior-work approach:
//!   each domain gets private banks; interleaving must be disabled.
//! - [`PlacementPolicy::ZebramGuard`] — guard rows: `radius` unused
//!   row stripes separate any two domains' allocations.

use hammertime_common::geometry::BankId;
use hammertime_common::{DomainId, Error, Result};
use hammertime_memctrl::addrmap::{AddressMap, MappingScheme};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Frame placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// First-fit anywhere; trust domains intermix.
    Default,
    /// One subarray group per domain (requires
    /// [`MappingScheme::SubarrayIsolated`]).
    SubarrayGroup,
    /// Private banks per domain (requires
    /// [`MappingScheme::BankPartition`]).
    BankPartition,
    /// Guard stripes: `radius` unallocated row stripes between
    /// different domains (requires a stripe-forming interleaved map).
    ZebramGuard {
        /// Guard width in row stripes (should be >= the blast radius).
        radius: u32,
    },
    /// CATT-style kernel/user physical partitioning: the bottom
    /// eighth of each bank's row stripes (at least one) is reserved
    /// for the host kernel, a `radius`-stripe guard band separates it
    /// from user tenants, and no allocation ever crosses the boundary
    /// (requires a stripe-forming interleaved map).
    CattPartition {
        /// Guard width in row stripes (should be >= the blast radius).
        radius: u32,
    },
}

/// Kernel region size under [`PlacementPolicy::CattPartition`]: an
/// eighth of the bank's row stripes, at least one.
fn catt_kernel_stripes(map: &AddressMap) -> u32 {
    (map.geometry().rows_per_bank() / 8).max(1)
}

/// The host OS physical frame allocator.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    policy: PlacementPolicy,
    map: AddressMap,
    free: BTreeSet<u64>,
    owner: HashMap<u64, DomainId>,
    /// SubarrayGroup: domain → group; BankPartition: domain → flat bank.
    domain_region: HashMap<DomainId, u32>,
    /// ZebramGuard: row stripe → owning domain (while any frame of the
    /// stripe is out), plus reserved guard stripes.
    stripe_owner: BTreeMap<u32, DomainId>,
    guard_stripes: BTreeSet<u32>,
    /// Frames sacrificed as guards (capacity accounting).
    pub guard_frames: u64,
}

impl FrameAllocator {
    /// Builds an allocator over the controller's address map.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if the policy is incompatible with the
    /// mapping scheme.
    pub fn new(policy: PlacementPolicy, map: AddressMap) -> Result<FrameAllocator> {
        match policy {
            PlacementPolicy::SubarrayGroup if map.scheme() != MappingScheme::SubarrayIsolated => {
                return Err(Error::Config(
                    "SubarrayGroup placement requires subarray-isolated interleaving".into(),
                ));
            }
            PlacementPolicy::BankPartition if map.scheme() != MappingScheme::BankPartition => {
                return Err(Error::Config(
                    "BankPartition placement requires the bank-partition mapping".into(),
                ));
            }
            PlacementPolicy::ZebramGuard { .. } => {
                // Guard stripes need a stripe-forming map.
                map.row_stripe_of_frame(0).map_err(|_| {
                    Error::Config("ZebramGuard requires a row-stripe-forming map".into())
                })?;
            }
            PlacementPolicy::CattPartition { radius } => {
                map.row_stripe_of_frame(0).map_err(|_| {
                    Error::Config("CattPartition requires a row-stripe-forming map".into())
                })?;
                let kernel = catt_kernel_stripes(&map);
                if kernel + radius >= map.geometry().rows_per_bank() {
                    return Err(Error::Config(
                        "CattPartition kernel region + guard band leaves no user stripes".into(),
                    ));
                }
            }
            _ => {}
        }
        let free: BTreeSet<u64> = (0..map.geometry().total_frames()).collect();
        let mut alloc = FrameAllocator {
            policy,
            map,
            free,
            owner: HashMap::new(),
            domain_region: HashMap::new(),
            stripe_owner: BTreeMap::new(),
            guard_stripes: BTreeSet::new(),
            guard_frames: 0,
        };
        if let PlacementPolicy::CattPartition { radius } = policy {
            // Reserve the kernel/user guard band up front: its frames
            // never enter circulation, so the boundary holds for the
            // allocator's whole lifetime.
            let kernel = catt_kernel_stripes(&alloc.map);
            for s in kernel..kernel + radius {
                if alloc.guard_stripes.insert(s) {
                    for f in alloc.map.frames_of_row_stripe(s) {
                        if alloc.free.remove(&f) {
                            alloc.guard_frames += 1;
                        }
                    }
                }
            }
        }
        Ok(alloc)
    }

    /// The placement policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// The address map the allocator reasons over.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// Registers a domain, claiming its region under region-based
    /// policies. Must be called before [`FrameAllocator::alloc`] for
    /// that domain.
    ///
    /// # Errors
    ///
    /// [`Error::Exhausted`] when no region remains.
    pub fn register_domain(&mut self, domain: DomainId) -> Result<()> {
        if self.domain_region.contains_key(&domain) {
            return Ok(());
        }
        match self.policy {
            PlacementPolicy::SubarrayGroup => {
                let groups = self.map.subarray_groups();
                let used: BTreeSet<u32> = self.domain_region.values().copied().collect();
                let group = (0..groups)
                    .find(|g| !used.contains(g))
                    .ok_or_else(|| Error::Exhausted("no free subarray group".into()))?;
                self.domain_region.insert(domain, group);
            }
            PlacementPolicy::BankPartition => {
                let g = self.map.geometry();
                let banks = g.total_banks() as u32;
                let used: BTreeSet<u32> = self.domain_region.values().copied().collect();
                let bank = (0..banks)
                    .find(|b| !used.contains(b))
                    .ok_or_else(|| Error::Exhausted("no free bank".into()))?;
                self.domain_region.insert(domain, bank);
            }
            PlacementPolicy::Default
            | PlacementPolicy::ZebramGuard { .. }
            | PlacementPolicy::CattPartition { .. } => {
                self.domain_region.insert(domain, 0);
            }
        }
        Ok(())
    }

    /// The subarray group (or flat bank) assigned to `domain`, if the
    /// policy is region-based.
    pub fn region_of(&self, domain: DomainId) -> Option<u32> {
        match self.policy {
            PlacementPolicy::SubarrayGroup | PlacementPolicy::BankPartition => {
                self.domain_region.get(&domain).copied()
            }
            _ => None,
        }
    }

    /// Allocates one frame for `domain`.
    ///
    /// # Errors
    ///
    /// [`Error::Exhausted`] when no placement-compatible frame is
    /// free; [`Error::Config`] for unregistered domains.
    pub fn alloc(&mut self, domain: DomainId) -> Result<u64> {
        if !self.domain_region.contains_key(&domain) {
            return Err(Error::Config(format!("{domain} not registered")));
        }
        let frame = match self.policy {
            PlacementPolicy::Default => self.free.iter().next().copied(),
            PlacementPolicy::SubarrayGroup => {
                let group = self.domain_region[&domain];
                let range = self.map.frames_of_group(group)?;
                self.free.range(range).next().copied()
            }
            PlacementPolicy::BankPartition => {
                let bank = self.domain_region[&domain];
                self.free
                    .iter()
                    .find(|&&f| {
                        self.map
                            .bank_of_frame(f)
                            .map(|b| b.flat(self.map.geometry()) as u32 == bank)
                            .unwrap_or(false)
                    })
                    .copied()
            }
            PlacementPolicy::ZebramGuard { radius } => self.zebram_candidate(domain, radius),
            PlacementPolicy::CattPartition { radius } => {
                let kernel = catt_kernel_stripes(&self.map);
                let first_user = kernel + radius;
                self.free
                    .iter()
                    .copied()
                    .find(|&f| match self.map.row_stripe_of_frame(f) {
                        Ok(s) if domain.is_host() => s < kernel,
                        Ok(s) => s >= first_user,
                        Err(_) => false,
                    })
            }
        }
        .ok_or_else(|| Error::Exhausted(format!("no frame available for {domain}")))?;

        if let PlacementPolicy::ZebramGuard { radius } = self.policy {
            self.claim_stripe_with_guards(frame, domain, radius)?;
        }
        self.free.remove(&frame);
        self.owner.insert(frame, domain);
        Ok(frame)
    }

    /// The last valid row stripe (stripes are in-bank rows).
    fn max_stripe(&self) -> u32 {
        self.map.geometry().rows_per_bank() - 1
    }

    fn zebram_candidate(&self, domain: DomainId, radius: u32) -> Option<u64> {
        // Prefer a free frame in a stripe this domain already owns.
        for &f in &self.free {
            let stripe = self.map.row_stripe_of_frame(f).ok()?;
            if self.stripe_owner.get(&stripe) == Some(&domain) {
                return Some(f);
            }
        }
        // Otherwise find a frame whose stripe (and guard band) is
        // untouched by other domains.
        'frames: for &f in &self.free {
            let stripe = match self.map.row_stripe_of_frame(f) {
                Ok(s) => s,
                Err(_) => continue,
            };
            if self.guard_stripes.contains(&stripe) {
                continue;
            }
            if self.stripe_owner.contains_key(&stripe) {
                continue; // owned by someone else (same-domain case handled above)
            }
            let lo = stripe.saturating_sub(radius);
            let hi = (stripe + radius).min(self.max_stripe());
            for s in lo..=hi {
                if let Some(&o) = self.stripe_owner.get(&s) {
                    if o != domain {
                        continue 'frames;
                    }
                }
            }
            return Some(f);
        }
        None
    }

    fn claim_stripe_with_guards(
        &mut self,
        frame: u64,
        domain: DomainId,
        radius: u32,
    ) -> Result<()> {
        let stripe = self.map.row_stripe_of_frame(frame)?;
        if self.stripe_owner.get(&stripe) == Some(&domain) {
            return Ok(());
        }
        self.stripe_owner.insert(stripe, domain);
        // Reserve guard stripes on both sides: remove their frames from
        // the free pool so nobody can ever land there. Clamp to the
        // last real stripe — an edge-of-region claim must not record
        // phantom guard stripes past the top of the bank (they would
        // inflate the guard set and skew capacity accounting).
        let lo = stripe.saturating_sub(radius);
        let hi = (stripe + radius).min(self.max_stripe());
        for s in lo..=hi {
            if s == stripe || self.stripe_owner.contains_key(&s) {
                continue;
            }
            if self.guard_stripes.insert(s) {
                for f in self.map.frames_of_row_stripe(s) {
                    if self.free.remove(&f) {
                        self.guard_frames += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Allocates a frame whose row-stripe neighborhood (±`radius`
    /// stripes) contains no frames owned by *other* domains — the
    /// placement a migration-based defense must use, because dropping
    /// the displaced page into a first-fit hole next to another
    /// tenant's pages re-creates exactly the adjacency the migration
    /// was meant to destroy.
    ///
    /// Falls back to plain [`FrameAllocator::alloc`] when no isolated
    /// frame exists (or the mapping forms no row stripes).
    ///
    /// # Errors
    ///
    /// [`Error::Exhausted`] when nothing is free at all.
    pub fn alloc_isolated(&mut self, domain: DomainId, radius: u32) -> Result<u64> {
        if !self.domain_region.contains_key(&domain) {
            return Err(Error::Config(format!("{domain} not registered")));
        }
        // Precompute foreign-owned stripes once.
        let mut foreign_stripes = BTreeSet::new();
        for (&frame, &owner) in &self.owner {
            if owner != domain {
                if let Ok(s) = self.map.row_stripe_of_frame(frame) {
                    foreign_stripes.insert(s);
                }
            }
        }
        let candidate = self.free.iter().copied().find(|&f| {
            let Ok(stripe) = self.map.row_stripe_of_frame(f) else {
                return false;
            };
            let lo = stripe.saturating_sub(radius);
            let hi = (stripe + radius).min(self.max_stripe());
            foreign_stripes.range(lo..=hi).next().is_none()
        });
        match candidate {
            Some(f) => {
                self.free.remove(&f);
                self.owner.insert(f, domain);
                Ok(f)
            }
            None => self.alloc(domain),
        }
    }

    /// Frees a frame.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if the frame is not allocated.
    pub fn release(&mut self, frame: u64) -> Result<()> {
        if self.owner.remove(&frame).is_none() {
            return Err(Error::Config(format!("frame {frame} not allocated")));
        }
        self.free.insert(frame);
        Ok(())
    }

    /// The domain owning `frame`, if any.
    pub fn owner_of(&self, frame: u64) -> Option<DomainId> {
        self.owner.get(&frame).copied()
    }

    /// Transfers ownership of an allocated frame (used to retire a
    /// hammered frame to the host's quarantine pool after a remap:
    /// the frame stays unavailable but no longer attributes flips to
    /// its former owner).
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if the frame is not allocated.
    pub fn reassign(&mut self, frame: u64, to: DomainId) -> Result<()> {
        match self.owner.get_mut(&frame) {
            Some(owner) => {
                *owner = to;
                Ok(())
            }
            None => Err(Error::Config(format!("frame {frame} not allocated"))),
        }
    }

    /// All frames currently owned by `domain`.
    pub fn frames_of(&self, domain: DomainId) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .owner
            .iter()
            .filter(|(_, &d)| d == domain)
            .map(|(&f, _)| f)
            .collect();
        v.sort_unstable();
        v
    }

    /// Free frames remaining.
    pub fn free_frames(&self) -> u64 {
        self.free.len() as u64
    }

    /// Row stripes currently reserved as guards (ZebramGuard only).
    /// Every entry is a real stripe of the geometry — edge-of-region
    /// claims are clamped, never recorded as phantom stripes.
    pub fn guard_stripe_set(&self) -> Vec<u32> {
        self.guard_stripes.iter().copied().collect()
    }

    /// `(kernel stripes, first user stripe)` under
    /// [`PlacementPolicy::CattPartition`]; `None` otherwise. The guard
    /// band occupies the stripes in between.
    pub fn catt_regions(&self) -> Option<(u32, u32)> {
        match self.policy {
            PlacementPolicy::CattPartition { radius } => {
                let kernel = catt_kernel_stripes(&self.map);
                Some((kernel, kernel + radius))
            }
            _ => None,
        }
    }

    /// `(row stripe, region)` pairs for every stripe holding allocated
    /// frames under CATT partitioning — region 0 is the kernel side of
    /// the boundary, region 1 the user side — in the shape
    /// `hammertime-check`'s `lint_domain_stripes` expects. The view is
    /// derived from the *boundary*, not per-frame owners: a
    /// HOST-quarantined frame inside the user region stays region 1,
    /// so quarantine churn cannot fake a partition violation. Empty
    /// under any other policy.
    pub fn partition_view(&self) -> Vec<(u32, u64)> {
        let Some((kernel, _)) = self.catt_regions() else {
            return Vec::new();
        };
        let mut stripes: BTreeMap<u32, u64> = BTreeMap::new();
        for &frame in self.owner.keys() {
            if let Ok(s) = self.map.row_stripe_of_frame(frame) {
                stripes.insert(s, u64::from(s >= kernel));
            }
        }
        stripes.into_iter().collect()
    }

    /// `(row stripe, owning domain)` pairs for every stripe a domain
    /// currently owns frames in — the input the isolation-domain
    /// invariant checker (`hammertime-check`) lints against the guard
    /// radius.
    pub fn stripe_ownership(&self) -> Vec<(u32, u64)> {
        self.stripe_owner
            .iter()
            .map(|(&s, &d)| (s, u64::from(d.0)))
            .collect()
    }

    /// The owner of the frame containing in-bank `row` of `bank`, for
    /// flip-event domain annotation. Scans the row's stripe frames
    /// under interleaved maps, or computes directly under
    /// bank-partitioned maps.
    pub fn owner_of_row(&self, bank: &BankId, row: u32) -> Option<DomainId> {
        // Any line in (bank,row): reconstruct via the inverse map.
        let coord = hammertime_common::DramCoord {
            channel: bank.channel,
            rank: bank.rank,
            bank_group: bank.bank_group,
            bank: bank.bank,
            row,
            col: 0,
        };
        let line = self.map.to_line(&coord).ok()?;
        self.owner_of(line.page_frame())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime_common::Geometry;

    fn map(scheme: MappingScheme) -> AddressMap {
        AddressMap::new(scheme, Geometry::medium()).unwrap()
    }

    #[test]
    fn default_policy_allocates_everything() {
        let mut a = FrameAllocator::new(
            PlacementPolicy::Default,
            map(MappingScheme::CacheLineInterleave),
        )
        .unwrap();
        let d = DomainId(1);
        a.register_domain(d).unwrap();
        let total = a.free_frames();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..total {
            let f = a.alloc(d).unwrap();
            assert!(seen.insert(f), "double allocation of {f}");
        }
        assert!(a.alloc(d).is_err(), "exhaustion must error");
        assert_eq!(a.frames_of(d).len() as u64, total);
    }

    #[test]
    fn alloc_requires_registration() {
        let mut a = FrameAllocator::new(
            PlacementPolicy::Default,
            map(MappingScheme::CacheLineInterleave),
        )
        .unwrap();
        assert!(a.alloc(DomainId(9)).is_err());
    }

    #[test]
    fn release_and_reuse() {
        let mut a = FrameAllocator::new(
            PlacementPolicy::Default,
            map(MappingScheme::CacheLineInterleave),
        )
        .unwrap();
        let d = DomainId(1);
        a.register_domain(d).unwrap();
        let f = a.alloc(d).unwrap();
        assert_eq!(a.owner_of(f), Some(d));
        a.release(f).unwrap();
        assert_eq!(a.owner_of(f), None);
        assert!(a.release(f).is_err(), "double free must error");
        let f2 = a.alloc(d).unwrap();
        assert_eq!(f, f2, "first-fit reuses the freed frame");
    }

    #[test]
    fn subarray_group_policy_separates_domains() {
        let m = map(MappingScheme::SubarrayIsolated);
        let mut a = FrameAllocator::new(PlacementPolicy::SubarrayGroup, m).unwrap();
        let (d1, d2) = (DomainId(1), DomainId(2));
        a.register_domain(d1).unwrap();
        a.register_domain(d2).unwrap();
        assert_ne!(a.region_of(d1), a.region_of(d2));
        for _ in 0..10 {
            let f1 = a.alloc(d1).unwrap();
            let f2 = a.alloc(d2).unwrap();
            assert_eq!(a.map().group_of_frame(f1), a.region_of(d1).unwrap());
            assert_eq!(a.map().group_of_frame(f2), a.region_of(d2).unwrap());
        }
    }

    #[test]
    fn subarray_group_rejects_wrong_mapping() {
        let m = map(MappingScheme::CacheLineInterleave);
        assert!(FrameAllocator::new(PlacementPolicy::SubarrayGroup, m).is_err());
    }

    #[test]
    fn subarray_groups_exhaust_at_geometry_limit() {
        let m = map(MappingScheme::SubarrayIsolated); // 4 subarrays
        let mut a = FrameAllocator::new(PlacementPolicy::SubarrayGroup, m).unwrap();
        for i in 1..=4 {
            a.register_domain(DomainId(i)).unwrap();
        }
        assert!(a.register_domain(DomainId(5)).is_err());
    }

    #[test]
    fn bank_partition_policy_separates_banks() {
        let m = map(MappingScheme::BankPartition);
        let mut a = FrameAllocator::new(PlacementPolicy::BankPartition, m).unwrap();
        let (d1, d2) = (DomainId(1), DomainId(2));
        a.register_domain(d1).unwrap();
        a.register_domain(d2).unwrap();
        let f1 = a.alloc(d1).unwrap();
        let f2 = a.alloc(d2).unwrap();
        let g = *a.map().geometry();
        assert_ne!(
            a.map().bank_of_frame(f1).unwrap().flat(&g),
            a.map().bank_of_frame(f2).unwrap().flat(&g)
        );
    }

    #[test]
    fn zebram_guard_invariant_holds() {
        let radius = 2;
        let m = map(MappingScheme::CacheLineInterleave);
        let mut a = FrameAllocator::new(PlacementPolicy::ZebramGuard { radius }, m).unwrap();
        let (d1, d2) = (DomainId(1), DomainId(2));
        a.register_domain(d1).unwrap();
        a.register_domain(d2).unwrap();
        let mut stripes: Vec<(u32, DomainId)> = Vec::new();
        for i in 0..20 {
            let d = if i % 2 == 0 { d1 } else { d2 };
            let f = a.alloc(d).unwrap();
            let s = a.map().row_stripe_of_frame(f).unwrap();
            stripes.push((s, d));
        }
        for &(s1, o1) in &stripes {
            for &(s2, o2) in &stripes {
                if o1 != o2 {
                    let dist = s1.abs_diff(s2);
                    assert!(
                        dist > radius,
                        "domains {o1}/{o2} within blast radius: stripes {s1},{s2}"
                    );
                }
            }
        }
        assert!(a.guard_frames > 0, "guards must cost capacity");
    }

    #[test]
    fn zebram_reuses_own_stripe_before_claiming_new() {
        let m = map(MappingScheme::CacheLineInterleave);
        let mut a = FrameAllocator::new(PlacementPolicy::ZebramGuard { radius: 1 }, m).unwrap();
        let d = DomainId(1);
        a.register_domain(d).unwrap();
        let f1 = a.alloc(d).unwrap();
        let f2 = a.alloc(d).unwrap();
        let s1 = a.map().row_stripe_of_frame(f1).unwrap();
        let s2 = a.map().row_stripe_of_frame(f2).unwrap();
        // Medium geometry: a stripe holds multiple frames, so the
        // second allocation stays in the first stripe.
        assert_eq!(s1, s2);
    }

    #[test]
    fn alloc_isolated_avoids_foreign_neighborhoods() {
        let m = map(MappingScheme::CacheLineInterleave);
        let mut a = FrameAllocator::new(PlacementPolicy::Default, m).unwrap();
        let (d1, d2) = (DomainId(1), DomainId(2));
        a.register_domain(d1).unwrap();
        a.register_domain(d2).unwrap();
        // d1 takes the first two stripes via plain first-fit.
        for _ in 0..4 {
            a.alloc(d1).unwrap();
        }
        // An isolated allocation for d2 must skip the guard band.
        let f = a.alloc_isolated(d2, 2).unwrap();
        let s2 = a.map().row_stripe_of_frame(f).unwrap();
        for frame in a.frames_of(d1) {
            let s1 = a.map().row_stripe_of_frame(frame).unwrap();
            assert!(
                s2.abs_diff(s1) > 2,
                "isolated alloc landed at stripe {s2} near {s1}"
            );
        }
        // Plain alloc for comparison lands adjacent (the hazard).
        let f_naive = a.alloc(d2).unwrap();
        let s_naive = a.map().row_stripe_of_frame(f_naive).unwrap();
        assert!(s_naive < s2, "first-fit fills the hole next to d1");
    }

    #[test]
    fn alloc_isolated_falls_back_when_no_isolated_frame() {
        let m = map(MappingScheme::CacheLineInterleave);
        let total = m.geometry().total_frames();
        let mut a = FrameAllocator::new(PlacementPolicy::Default, m).unwrap();
        let (d1, d2) = (DomainId(1), DomainId(2));
        a.register_domain(d1).unwrap();
        a.register_domain(d2).unwrap();
        // d1 owns every other stripe region: leave no isolated hole.
        for _ in 0..total - 1 {
            a.alloc(d1).unwrap();
        }
        // One frame left, adjacent to d1 everywhere: fallback still
        // allocates rather than failing.
        let f = a.alloc_isolated(d2, 1).unwrap();
        assert_eq!(a.owner_of(f), Some(d2));
        assert!(a.alloc_isolated(d2, 1).is_err(), "now truly exhausted");
    }

    #[test]
    fn edge_of_region_claim_records_no_phantom_guard_stripes() {
        // Regression: the guard window `stripe + radius` was never
        // clamped to the last real stripe, so claiming near the top of
        // the bank recorded guard stripes that don't exist.
        let m = map(MappingScheme::CacheLineInterleave);
        let max_stripe = m.geometry().rows_per_bank() - 1;
        let radius = 3;
        let mut a = FrameAllocator::new(PlacementPolicy::ZebramGuard { radius }, m).unwrap();
        let d = DomainId(1);
        a.register_domain(d).unwrap();
        // Claim a frame in the very top stripe (first-fit never gets
        // there on its own — guards quantize the walk — so drive the
        // claim directly, as a migration landing at the edge would).
        let f = *a
            .map()
            .frames_of_row_stripe(max_stripe)
            .first()
            .expect("top stripe has frames");
        a.claim_stripe_with_guards(f, d, radius).unwrap();
        assert!(
            a.stripe_ownership().iter().any(|&(s, _)| s == max_stripe),
            "top stripe must be claimed"
        );
        let guards = a.guard_stripe_set();
        assert!(
            guards.iter().all(|&s| s <= max_stripe),
            "phantom guard stripes beyond last stripe {max_stripe}: {guards:?}"
        );
        // Exactly the radius stripes below the edge are guards.
        assert_eq!(guards.len() as u32, radius);
    }

    proptest::proptest! {
        #[test]
        fn zebram_guard_accounting_and_isolation_hold(
            radius in 1u32..5,
            allocs in 1usize..24,
            seed in 0u64..64,
        ) {
            let m = map(MappingScheme::CacheLineInterleave);
            let max_stripe = m.geometry().rows_per_bank() - 1;
            let mut a =
                FrameAllocator::new(PlacementPolicy::ZebramGuard { radius }, m).unwrap();
            let (d1, d2) = (DomainId(1), DomainId(2));
            a.register_domain(d1).unwrap();
            a.register_domain(d2).unwrap();
            let mut guard_frames_recount = 0u64;
            for i in 0..allocs {
                // Deterministic interleaving of the two domains.
                let d = if (seed >> (i % 64)) & 1 == 0 { d1 } else { d2 };
                if a.alloc(d).is_err() {
                    break; // guard cost can exhaust small geometries
                }
            }
            // Every recorded guard stripe is real and every one of its
            // frames left the free pool exactly once.
            for s in a.guard_stripe_set() {
                proptest::prop_assert!(s <= max_stripe);
                guard_frames_recount += a.map().frames_of_row_stripe(s).len() as u64;
            }
            proptest::prop_assert_eq!(guard_frames_recount, a.guard_frames);
            // The allocator's output satisfies the isolation-domain
            // invariant the checker enforces.
            let violations =
                hammertime_check::lint_domain_stripes(&a.stripe_ownership(), radius);
            proptest::prop_assert!(
                violations.is_empty(),
                "domain-guard violations: {:?}",
                violations
            );
        }
    }

    #[test]
    fn catt_partition_separates_kernel_from_users() {
        let radius = 2;
        let m = map(MappingScheme::CacheLineInterleave);
        let mut a = FrameAllocator::new(PlacementPolicy::CattPartition { radius }, m).unwrap();
        assert!(a.guard_frames > 0, "the guard band must cost capacity");
        let (kernel, first_user) = a.catt_regions().unwrap();
        assert_eq!(first_user - kernel, radius);
        let (host, user) = (DomainId::HOST, DomainId(1));
        a.register_domain(host).unwrap();
        a.register_domain(user).unwrap();
        for _ in 0..4 {
            let fk = a.alloc(host).unwrap();
            let fu = a.alloc(user).unwrap();
            assert!(a.map().row_stripe_of_frame(fk).unwrap() < kernel);
            assert!(a.map().row_stripe_of_frame(fu).unwrap() >= first_user);
        }
        // The boundary view satisfies the checker's guard invariant.
        let violations = hammertime_check::lint_domain_stripes(&a.partition_view(), radius);
        assert!(
            violations.is_empty(),
            "partition violations: {violations:?}"
        );
    }

    #[test]
    fn catt_kernel_region_exhausts_without_crossing() {
        let m = map(MappingScheme::CacheLineInterleave);
        let mut a = FrameAllocator::new(PlacementPolicy::CattPartition { radius: 1 }, m).unwrap();
        let host = DomainId::HOST;
        a.register_domain(host).unwrap();
        let (kernel, _) = a.catt_regions().unwrap();
        let mut kernel_frames = 0u64;
        while let Ok(f) = a.alloc(host) {
            assert!(
                a.map().row_stripe_of_frame(f).unwrap() < kernel,
                "kernel allocation crossed into the user region"
            );
            kernel_frames += 1;
        }
        // Exactly the kernel stripes' frames were allocatable.
        let expected: u64 = (0..kernel)
            .map(|s| a.map().frames_of_row_stripe(s).len() as u64)
            .sum();
        assert_eq!(kernel_frames, expected);
    }

    #[test]
    fn catt_quarantined_host_frame_does_not_fake_a_violation() {
        let radius = 2;
        let m = map(MappingScheme::CacheLineInterleave);
        let mut a = FrameAllocator::new(PlacementPolicy::CattPartition { radius }, m).unwrap();
        let (host, user) = (DomainId::HOST, DomainId(1));
        a.register_domain(host).unwrap();
        a.register_domain(user).unwrap();
        a.alloc(host).unwrap();
        let fu = a.alloc(user).unwrap();
        // Quarantine the user frame to the host pool (remap retire).
        a.reassign(fu, host).unwrap();
        // The partition view keys off the boundary, so the retired
        // frame stays on the user side and the lint still passes.
        let violations = hammertime_check::lint_domain_stripes(&a.partition_view(), radius);
        assert!(violations.is_empty(), "quarantine faked: {violations:?}");
    }

    #[test]
    fn catt_rejects_degenerate_geometries() {
        // 8 rows/bank → kernel 1 stripe; a radius that swallows the
        // rest of the bank must be refused at construction.
        let g = Geometry::medium();
        let m = AddressMap::new(MappingScheme::CacheLineInterleave, g).unwrap();
        let rows = g.rows_per_bank();
        assert!(
            FrameAllocator::new(PlacementPolicy::CattPartition { radius: rows }, m).is_err(),
            "guard band covering the whole bank must be rejected"
        );
    }

    #[test]
    fn owner_of_row_resolves_interleaved_frames() {
        let m = map(MappingScheme::CacheLineInterleave);
        let mut a = FrameAllocator::new(PlacementPolicy::Default, m).unwrap();
        let d = DomainId(3);
        a.register_domain(d).unwrap();
        let f = a.alloc(d).unwrap();
        let stripe = a.map().row_stripe_of_frame(f).unwrap();
        // The frame's lines live in row `stripe` of several banks; the
        // owner lookup must find the domain from (bank, row).
        let line = hammertime_common::CacheLineAddr(f * 64);
        let coord = a.map().to_coord(line).unwrap();
        let bank = BankId::of(&coord);
        assert_eq!(coord.row, stripe);
        assert_eq!(a.owner_of_row(&bank, coord.row), Some(d));
    }
}
