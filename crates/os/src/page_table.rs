//! Per-domain page tables.
//!
//! A deliberately small model: one flat virtual-page → physical-frame
//! map per trust domain, enough to express the paper's software
//! defenses — allocation placement, and *remapping* a page to a new
//! frame as the ACT wear-leveling response to a precise ACT interrupt
//! (§4.2).

use hammertime_common::{DomainId, Error, PhysAddr, Result, VirtAddr};
use std::collections::{BTreeMap, HashMap};

/// One domain's address space.
#[derive(Debug, Default, Clone)]
pub struct PageTable {
    // BTreeMap, deliberately: `iter()` feeds attack targeting and
    // defense bookkeeping, and hash-order iteration would leak the
    // process-random hasher seed into simulation results, breaking
    // cross-process reproducibility.
    mappings: BTreeMap<u64, u64>,
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Maps virtual page `vpage` to physical `frame`.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if the page is already mapped.
    pub fn map(&mut self, vpage: u64, frame: u64) -> Result<()> {
        if self.mappings.contains_key(&vpage) {
            return Err(Error::Config(format!("vpage {vpage} already mapped")));
        }
        self.mappings.insert(vpage, frame);
        Ok(())
    }

    /// Unmaps `vpage`, returning the frame it pointed to.
    ///
    /// # Errors
    ///
    /// [`Error::Translation`] if not mapped.
    pub fn unmap(&mut self, vpage: u64) -> Result<u64> {
        self.mappings
            .remove(&vpage)
            .ok_or_else(|| Error::Translation(format!("vpage {vpage} not mapped")))
    }

    /// Points `vpage` at a new frame (the remap defense primitive),
    /// returning the old frame.
    ///
    /// # Errors
    ///
    /// [`Error::Translation`] if not mapped.
    pub fn remap(&mut self, vpage: u64, new_frame: u64) -> Result<u64> {
        let slot = self
            .mappings
            .get_mut(&vpage)
            .ok_or_else(|| Error::Translation(format!("vpage {vpage} not mapped")))?;
        Ok(std::mem::replace(slot, new_frame))
    }

    /// Translates a virtual address to a physical address.
    ///
    /// # Errors
    ///
    /// [`Error::Translation`] for unmapped pages.
    pub fn translate(&self, va: VirtAddr) -> Result<PhysAddr> {
        let frame = self
            .mappings
            .get(&va.page_number())
            .ok_or_else(|| Error::Translation(format!("{va} not mapped")))?;
        Ok(PhysAddr::from_frame(*frame).offset(va.page_offset()))
    }

    /// The physical frame backing `vpage`, if mapped — the per-page
    /// primitive behind the [`AddressSpaces::pfn_map`] leak surface.
    pub fn pfn_of(&self, vpage: u64) -> Option<u64> {
        self.mappings.get(&vpage).copied()
    }

    /// Reverse lookup: the virtual page mapped to `frame`, if any.
    pub fn vpage_of_frame(&self, frame: u64) -> Option<u64> {
        self.mappings
            .iter()
            .find(|(_, &f)| f == frame)
            .map(|(&v, _)| v)
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// Iterates over `(vpage, frame)` pairs in ascending vpage order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.mappings.iter().map(|(&v, &f)| (v, f))
    }
}

/// Page tables for every domain in the system.
#[derive(Debug, Default, Clone)]
pub struct AddressSpaces {
    tables: HashMap<DomainId, PageTable>,
}

impl AddressSpaces {
    /// Creates an empty registry.
    pub fn new() -> AddressSpaces {
        AddressSpaces::default()
    }

    /// The table for `domain`, created on first use.
    pub fn table_mut(&mut self, domain: DomainId) -> &mut PageTable {
        self.tables.entry(domain).or_default()
    }

    /// The table for `domain`, if it exists.
    pub fn table(&self, domain: DomainId) -> Option<&PageTable> {
        self.tables.get(&domain)
    }

    /// Tears down `domain`'s address space (ASID destroy), returning
    /// the dropped table so the caller can walk its mappings — e.g. to
    /// return the backing frames. `None` if the domain never mapped
    /// anything.
    pub fn remove_table(&mut self, domain: DomainId) -> Option<PageTable> {
        self.tables.remove(&domain)
    }

    /// Translates within a domain.
    ///
    /// # Errors
    ///
    /// [`Error::Translation`] for unknown domains or unmapped pages.
    pub fn translate(&self, domain: DomainId, va: VirtAddr) -> Result<PhysAddr> {
        self.table(domain)
            .ok_or_else(|| Error::Translation(format!("{domain} has no address space")))?
            .translate(va)
    }

    /// The pfn-leak surface: `domain`'s full `(vpage, frame)` map in
    /// ascending vpage order — what `/proc/self/pagemap` hands an
    /// unprivileged attacker on a pre-hardening kernel, and what the
    /// pfn-oracle allocation strategy in `crates/attack` consumes. The
    /// order is deterministic (BTreeMap-backed), so attack pipelines
    /// built on the leak reproduce byte-identically. Empty when the
    /// domain has no address space.
    pub fn pfn_map(&self, domain: DomainId) -> Vec<(u64, u64)> {
        self.table(domain)
            .map(|t| t.iter().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_round_trip() {
        let mut pt = PageTable::new();
        pt.map(5, 42).unwrap();
        let pa = pt.translate(VirtAddr::from_page(5).offset(100)).unwrap();
        assert_eq!(pa, PhysAddr::from_frame(42).offset(100));
        assert_eq!(pt.vpage_of_frame(42), Some(5));
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = PageTable::new();
        pt.map(1, 10).unwrap();
        assert!(pt.map(1, 11).is_err());
    }

    #[test]
    fn unmap_then_translate_fails() {
        let mut pt = PageTable::new();
        pt.map(1, 10).unwrap();
        assert_eq!(pt.unmap(1).unwrap(), 10);
        assert!(pt.translate(VirtAddr::from_page(1)).is_err());
        assert!(pt.unmap(1).is_err());
        assert!(pt.is_empty());
    }

    #[test]
    fn remap_returns_old_frame() {
        let mut pt = PageTable::new();
        pt.map(7, 100).unwrap();
        assert_eq!(pt.remap(7, 200).unwrap(), 100);
        assert_eq!(
            pt.translate(VirtAddr::from_page(7)).unwrap(),
            PhysAddr::from_frame(200)
        );
        assert!(pt.remap(8, 300).is_err());
    }

    #[test]
    fn pfn_leak_surface_reports_mappings_in_vpage_order() {
        let mut spaces = AddressSpaces::new();
        spaces.table_mut(DomainId(1)).map(2, 30).unwrap();
        spaces.table_mut(DomainId(1)).map(0, 10).unwrap();
        spaces.table_mut(DomainId(1)).map(1, 20).unwrap();
        assert_eq!(spaces.pfn_map(DomainId(1)), vec![(0, 10), (1, 20), (2, 30)]);
        assert_eq!(spaces.pfn_map(DomainId(9)), vec![]);
        assert_eq!(spaces.table(DomainId(1)).unwrap().pfn_of(1), Some(20));
        assert_eq!(spaces.table(DomainId(1)).unwrap().pfn_of(7), None);
    }

    #[test]
    fn address_spaces_isolate_domains() {
        let mut spaces = AddressSpaces::new();
        spaces.table_mut(DomainId(1)).map(0, 10).unwrap();
        spaces.table_mut(DomainId(2)).map(0, 20).unwrap();
        assert_eq!(
            spaces.translate(DomainId(1), VirtAddr(0)).unwrap(),
            PhysAddr::from_frame(10)
        );
        assert_eq!(
            spaces.translate(DomainId(2), VirtAddr(0)).unwrap(),
            PhysAddr::from_frame(20)
        );
        assert!(spaces.translate(DomainId(3), VirtAddr(0)).is_err());
    }
}
