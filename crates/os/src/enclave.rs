//! Enclave memory under Rowhammer (paper §4.4).
//!
//! In enclave execution contexts (SGX/TDX/SEV) the host OS is
//! *untrusted*, so the host-run defenses elsewhere in this crate do
//! not apply. The paper's analysis:
//!
//! - If enclave memory is **integrity-checked on access**, a flip can
//!   only cause a system-wide denial of service: the integrity check
//!   fails and the machine locks up until reset. Since the host could
//!   already tamper with enclave pages, DoS is outside the enclave
//!   threat model — "safe" in the confidentiality/integrity sense.
//! - If memory is **not** integrity-checked, flips silently corrupt
//!   enclave state — the dangerous case needing the CPU to deliver
//!   ACT interrupts *to the enclave* so it can react (exit peacefully
//!   or request a remap).

use hammertime_common::{Cycle, DomainId, Error, Result};
use serde::{Deserialize, Serialize};

/// How an enclave responds to learning it is under hammer attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackResponse {
    /// Exit gracefully before corruption can matter.
    Exit,
    /// Ask the (untrusted but functionally cooperative) host to remap
    /// its pages elsewhere.
    RequestRemap,
    /// Ignore the signal (the vulnerable configuration).
    Ignore,
}

/// What the enclave decided after an interrupt; the machine layer
/// carries it out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnclaveReaction {
    /// Nothing to do.
    None,
    /// Tear the enclave down cleanly.
    Exit,
    /// Migrate the enclave's frames.
    Remap,
}

/// Enclave lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnclaveStatus {
    /// Executing normally.
    Running,
    /// Exited cleanly (possibly in response to an attack signal).
    Exited,
    /// State was silently corrupted (unchecked memory + flip) — the
    /// security failure the paper's mechanisms exist to prevent.
    Corrupted,
}

/// One enclave instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Enclave {
    /// The trust domain the enclave runs in.
    pub domain: DomainId,
    /// Whether loads verify integrity (SGX-style MACs).
    pub integrity_checked: bool,
    /// Response policy for delivered ACT interrupts.
    pub response: AttackResponse,
    /// Current status.
    pub status: EnclaveStatus,
    /// ACT interrupts delivered to this enclave.
    pub interrupts_seen: u64,
    /// Reads that touched poisoned lines.
    pub poisoned_reads: u64,
}

impl Enclave {
    /// Creates a running enclave.
    pub fn new(domain: DomainId, integrity_checked: bool, response: AttackResponse) -> Enclave {
        Enclave {
            domain,
            integrity_checked,
            response,
            status: EnclaveStatus::Running,
            interrupts_seen: 0,
            poisoned_reads: 0,
        }
    }

    /// Models one enclave load. `poisoned` reports whether the line
    /// carries disturbance flips.
    ///
    /// # Errors
    ///
    /// [`Error::MachineLockup`] when an integrity check fails: the
    /// whole platform halts and needs a reset (system-wide DoS,
    /// paper §4.4 citing SGX-Bomb).
    pub fn on_read(&mut self, poisoned: bool, now: Cycle) -> Result<()> {
        if self.status != EnclaveStatus::Running {
            return Err(Error::Privilege(format!(
                "read from non-running enclave ({:?})",
                self.status
            )));
        }
        if !poisoned {
            return Ok(());
        }
        self.poisoned_reads += 1;
        if self.integrity_checked {
            return Err(Error::MachineLockup(format!(
                "enclave {} integrity check failed at {now}; platform reset required",
                self.domain
            )));
        }
        // Unchecked memory: the flip silently corrupts enclave state.
        self.status = EnclaveStatus::Corrupted;
        Ok(())
    }

    /// Delivers an ACT interrupt to the enclave (the paper's proposal:
    /// the CPU reports attack telemetry directly to the enclave so it
    /// can protect itself without trusting the host, §4.4).
    pub fn on_act_interrupt(&mut self) -> EnclaveReaction {
        if self.status != EnclaveStatus::Running {
            return EnclaveReaction::None;
        }
        self.interrupts_seen += 1;
        match self.response {
            AttackResponse::Ignore => EnclaveReaction::None,
            AttackResponse::Exit => {
                self.status = EnclaveStatus::Exited;
                EnclaveReaction::Exit
            }
            AttackResponse::RequestRemap => EnclaveReaction::Remap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_reads_pass() {
        let mut e = Enclave::new(DomainId(5), true, AttackResponse::Ignore);
        for _ in 0..10 {
            e.on_read(false, Cycle(1)).unwrap();
        }
        assert_eq!(e.status, EnclaveStatus::Running);
        assert_eq!(e.poisoned_reads, 0);
    }

    #[test]
    fn integrity_checked_flip_is_dos_not_corruption() {
        let mut e = Enclave::new(DomainId(5), true, AttackResponse::Ignore);
        let err = e.on_read(true, Cycle(7)).unwrap_err();
        assert!(matches!(err, Error::MachineLockup(_)));
        // Status is NOT Corrupted: integrity held; availability didn't.
        assert_eq!(e.status, EnclaveStatus::Running);
        assert_eq!(e.poisoned_reads, 1);
    }

    #[test]
    fn unchecked_flip_silently_corrupts() {
        let mut e = Enclave::new(DomainId(5), false, AttackResponse::Ignore);
        e.on_read(true, Cycle(7)).unwrap();
        assert_eq!(e.status, EnclaveStatus::Corrupted);
    }

    #[test]
    fn exit_policy_reacts_to_interrupt() {
        let mut e = Enclave::new(DomainId(5), false, AttackResponse::Exit);
        assert_eq!(e.on_act_interrupt(), EnclaveReaction::Exit);
        assert_eq!(e.status, EnclaveStatus::Exited);
        // Further interrupts are moot.
        assert_eq!(e.on_act_interrupt(), EnclaveReaction::None);
        assert_eq!(e.interrupts_seen, 1);
    }

    #[test]
    fn remap_policy_requests_migration_and_keeps_running() {
        let mut e = Enclave::new(DomainId(5), false, AttackResponse::RequestRemap);
        assert_eq!(e.on_act_interrupt(), EnclaveReaction::Remap);
        assert_eq!(e.status, EnclaveStatus::Running);
        assert_eq!(e.on_act_interrupt(), EnclaveReaction::Remap);
        assert_eq!(e.interrupts_seen, 2);
    }

    #[test]
    fn reads_from_dead_enclaves_error() {
        let mut e = Enclave::new(DomainId(5), false, AttackResponse::Exit);
        e.on_act_interrupt();
        assert!(e.on_read(false, Cycle(1)).is_err());
    }
}
