//! Frequency-centric software defenses (paper §4.2).
//!
//! Both daemons consume the paper's *precise* ACT interrupts — the
//! reported cache-line address is what makes any of this possible.
//! Handed a legacy (address-free) interrupt they can do nothing,
//! which experiment E4 demonstrates.
//!
//! - [`AggressorRemap`]: ACT wear-leveling. The page containing a hot
//!   line is migrated to a fresh frame, severing the attacker's
//!   carefully-derived physical adjacency.
//! - [`LineLocking`]: pin hot lines in the LLC for the rest of the
//!   refresh interval; a locked line generates no further ACTs. When
//!   the lockable ways fill, fall back to remapping — exactly the
//!   fallback order the paper prescribes.

use super::{DefenseAction, SoftwareDefense};
use hammertime_common::{CacheLineAddr, Cycle};
use hammertime_memctrl::ActInterrupt;
use std::collections::HashSet;

/// Remap-on-interrupt (ACT wear-leveling).
#[derive(Debug, Clone)]
pub struct AggressorRemap {
    /// Frames already migrated this window (rate limit: one migration
    /// per frame per refresh window).
    remapped_this_window: HashSet<u64>,
    /// Total remaps requested (stats).
    pub remaps_requested: u64,
    /// Interrupts that carried no address (legacy counters) and were
    /// therefore unactionable.
    pub blind_interrupts: u64,
}

impl AggressorRemap {
    /// Creates the daemon.
    pub fn new() -> AggressorRemap {
        AggressorRemap {
            remapped_this_window: HashSet::new(),
            remaps_requested: 0,
            blind_interrupts: 0,
        }
    }
}

impl Default for AggressorRemap {
    fn default() -> Self {
        AggressorRemap::new()
    }
}

impl SoftwareDefense for AggressorRemap {
    fn box_clone(&self) -> Option<Box<dyn SoftwareDefense>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "aggressor-remap"
    }

    fn on_act_interrupts(&mut self, ints: &[ActInterrupt]) -> Vec<DefenseAction> {
        let mut actions = Vec::new();
        for int in ints {
            let Some(line) = int.addr else {
                self.blind_interrupts += 1;
                continue;
            };
            let frame = line.page_frame();
            if self.remapped_this_window.insert(frame) {
                self.remaps_requested += 1;
                actions.push(DefenseAction::RemapFrame { frame });
            }
        }
        actions
    }

    fn on_window_rollover(&mut self, _now: Cycle) -> Vec<DefenseAction> {
        self.remapped_this_window.clear();
        Vec::new()
    }
}

/// Lock-then-remap (cache line locking with remap fallback).
#[derive(Debug, Clone)]
pub struct LineLocking {
    locked: HashSet<CacheLineAddr>,
    /// Locks requested (stats).
    pub locks_requested: u64,
    /// Fallback remaps after lock exhaustion (stats).
    pub fallback_remaps: u64,
    /// Address-free interrupts that could not be acted on.
    pub blind_interrupts: u64,
}

impl LineLocking {
    /// Creates the daemon.
    pub fn new() -> LineLocking {
        LineLocking {
            locked: HashSet::new(),
            locks_requested: 0,
            fallback_remaps: 0,
            blind_interrupts: 0,
        }
    }
}

impl Default for LineLocking {
    fn default() -> Self {
        LineLocking::new()
    }
}

impl SoftwareDefense for LineLocking {
    fn box_clone(&self) -> Option<Box<dyn SoftwareDefense>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "line-locking"
    }

    fn on_act_interrupts(&mut self, ints: &[ActInterrupt]) -> Vec<DefenseAction> {
        let mut actions = Vec::new();
        let mut just_locked = std::collections::HashSet::new();
        let mut just_remapped = std::collections::HashSet::new();
        for int in ints {
            let Some(line) = int.addr else {
                self.blind_interrupts += 1;
                continue;
            };
            if self.locked.insert(line) {
                self.locks_requested += 1;
                just_locked.insert(line);
                actions.push(DefenseAction::LockLine { line });
            } else if !just_locked.contains(&line) && just_remapped.insert(line.page_frame()) {
                // The line was pinned in an earlier batch yet still
                // generates ACTs — a cache-bypassing access path (DMA,
                // §1). The lock cannot help; escalate to migration.
                self.fallback_remaps += 1;
                actions.push(DefenseAction::RemapFrame {
                    frame: line.page_frame(),
                });
            }
        }
        actions
    }

    fn on_lock_failed(&mut self, line: CacheLineAddr) -> Vec<DefenseAction> {
        // The way(s) reserved for locked lines are full: migrate the
        // page instead (paper §4.2's fallback).
        self.locked.remove(&line);
        self.fallback_remaps += 1;
        vec![DefenseAction::RemapFrame {
            frame: line.page_frame(),
        }]
    }

    fn on_window_rollover(&mut self, _now: Cycle) -> Vec<DefenseAction> {
        // Locks only need to survive one refresh interval: afterwards
        // the victims have been refreshed and the budget restarts.
        self.locked.clear();
        vec![DefenseAction::UnlockAll]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime_common::DomainId;

    fn precise(line: u64) -> ActInterrupt {
        ActInterrupt {
            channel: 0,
            time: Cycle(10),
            addr: Some(CacheLineAddr(line)),
            domain: Some(DomainId(1)),
        }
    }

    fn legacy() -> ActInterrupt {
        ActInterrupt {
            channel: 0,
            time: Cycle(10),
            addr: None,
            domain: None,
        }
    }

    #[test]
    fn remap_defense_migrates_hot_frame_once_per_window() {
        let mut d = AggressorRemap::new();
        // Two hot lines in the same frame: one remap.
        let a = d.on_act_interrupts(&[precise(0), precise(1)]);
        assert_eq!(a, vec![DefenseAction::RemapFrame { frame: 0 }]);
        // Same frame again: rate-limited.
        assert!(d.on_act_interrupts(&[precise(2)]).is_empty());
        // New window: actionable again.
        d.on_window_rollover(Cycle(100));
        assert_eq!(d.on_act_interrupts(&[precise(0)]).len(), 1);
        assert_eq!(d.remaps_requested, 2);
    }

    #[test]
    fn remap_defense_is_blind_without_addresses() {
        let mut d = AggressorRemap::new();
        assert!(d.on_act_interrupts(&[legacy(), legacy()]).is_empty());
        assert_eq!(d.blind_interrupts, 2, "legacy interrupts are unactionable");
    }

    #[test]
    fn locking_defense_locks_each_line_once() {
        let mut d = LineLocking::new();
        // A repeat within the same batch is not escalated: the lock
        // hasn't had a chance to take effect yet.
        let a = d.on_act_interrupts(&[precise(5), precise(5), precise(6)]);
        assert_eq!(
            a,
            vec![
                DefenseAction::LockLine {
                    line: CacheLineAddr(5)
                },
                DefenseAction::LockLine {
                    line: CacheLineAddr(6)
                },
            ]
        );
        assert_eq!(d.locks_requested, 2);
    }

    #[test]
    fn repeat_interrupt_on_locked_line_escalates_to_remap() {
        let mut d = LineLocking::new();
        d.on_act_interrupts(&[precise(64)]);
        // A later batch still reporting the pinned line means the
        // accesses bypass the cache (DMA): escalate.
        let a = d.on_act_interrupts(&[precise(64), precise(64)]);
        assert_eq!(a, vec![DefenseAction::RemapFrame { frame: 1 }]);
        assert_eq!(d.fallback_remaps, 1);
    }

    #[test]
    fn lock_failure_falls_back_to_remap() {
        let mut d = LineLocking::new();
        d.on_act_interrupts(&[precise(64)]);
        let fallback = d.on_lock_failed(CacheLineAddr(64));
        assert_eq!(fallback, vec![DefenseAction::RemapFrame { frame: 1 }]);
        assert_eq!(d.fallback_remaps, 1);
        // The line can be re-locked later (it was dropped from the set).
        assert_eq!(d.on_act_interrupts(&[precise(64)]).len(), 1);
    }

    #[test]
    fn window_rollover_unlocks_everything() {
        let mut d = LineLocking::new();
        d.on_act_interrupts(&[precise(1)]);
        let a = d.on_window_rollover(Cycle(999));
        assert_eq!(a, vec![DefenseAction::UnlockAll]);
        // Fresh window: same line locks again.
        assert_eq!(d.on_act_interrupts(&[precise(1)]).len(), 1);
    }

    #[test]
    fn locking_defense_blind_without_addresses() {
        let mut d = LineLocking::new();
        assert!(d.on_act_interrupts(&[legacy()]).is_empty());
        assert_eq!(d.blind_interrupts, 1);
    }
}
