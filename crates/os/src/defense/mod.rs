//! Software Rowhammer defenses (the host-OS side of the co-design).
//!
//! Each defense is a policy daemon: the machine feeds it the inputs it
//! is entitled to — precise ACT interrupts for the paper's defenses
//! (§4.2–4.3), PMU miss samples for the ANVIL baseline — and executes
//! the [`DefenseAction`]s it returns, charging their true timing cost
//! through the memory controller.
//!
//! Isolation-centric defenses have no runtime daemon: they are
//! allocator placement policies ([`crate::frame_alloc`]) plus the
//! matching mapping scheme, configured at machine build time.
//!
//! Submodules:
//!
//! - [`frequency`]: aggressor remapping and cache-line locking (§4.2);
//! - [`refresh`]: victim refresh via the refresh instruction or
//!   REF_NEIGHBORS (§4.3);
//! - [`anvil`]: the PMU-sampling baseline with the convoluted
//!   flush+load refresh path and the DMA blind spot (§1).

pub mod anvil;
pub mod frequency;
pub mod refresh;

use hammertime_cache::MissSample;
use hammertime_common::geometry::BankId;
use hammertime_common::{CacheLineAddr, Cycle, DramCoord, Result};
use hammertime_memctrl::addrmap::AddressMap;
use hammertime_memctrl::ActInterrupt;
use serde::{Deserialize, Serialize};

/// A host-OS view of the memory topology: how lines relate to rows and
/// which lines refresh which potential victims. Built from the MC's
/// known physical→DDR mapping (paper §4.1 notes this knowledge is
/// already available to software).
#[derive(Debug, Clone)]
pub struct Topology {
    map: AddressMap,
    /// The blast radius the OS assumes (its belief about the module).
    pub assumed_radius: u32,
}

impl Topology {
    /// Creates a topology view over the controller's address map.
    pub fn new(map: AddressMap, assumed_radius: u32) -> Topology {
        Topology {
            map,
            assumed_radius,
        }
    }

    /// The underlying address map.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// Bank and in-bank row of a line.
    ///
    /// # Errors
    ///
    /// [`hammertime_common::Error::Translation`] for unmapped lines.
    pub fn locate(&self, line: CacheLineAddr) -> Result<(BankId, u32)> {
        let c = self.map.to_coord(line)?;
        Ok((BankId::of(&c), c.row))
    }

    /// A canonical line (column 0) within `(bank, row)`.
    ///
    /// # Errors
    ///
    /// Propagates coordinate validation failures.
    pub fn line_of_row(&self, bank: &BankId, row: u32) -> Result<CacheLineAddr> {
        self.map.to_line(&DramCoord {
            channel: bank.channel,
            rank: bank.rank,
            bank_group: bank.bank_group,
            bank: bank.bank,
            row,
            col: 0,
        })
    }

    /// Canonical lines of every row within `radius` of the row holding
    /// `line` (the potential victims of that aggressor).
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn neighbor_row_lines(
        &self,
        line: CacheLineAddr,
        radius: u32,
    ) -> Result<Vec<CacheLineAddr>> {
        let (bank, row) = self.locate(line)?;
        let rows_per_bank = self.map.geometry().rows_per_bank();
        let mut out = Vec::new();
        for d in 1..=radius {
            if let Some(r) = row.checked_sub(d) {
                out.push(self.line_of_row(&bank, r)?);
            }
            let r = row + d;
            if r < rows_per_bank {
                out.push(self.line_of_row(&bank, r)?);
            }
        }
        Ok(out)
    }
}

/// An action a software defense asks the machine to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefenseAction {
    /// Issue the refresh instruction on the row containing `line`.
    RefreshRow {
        /// Any line in the target row.
        line: CacheLineAddr,
        /// Auto-precharge after the activation.
        auto_pre: bool,
    },
    /// Issue REF_NEIGHBORS around the row containing `line`.
    RefNeighbors {
        /// Any line in the aggressor row.
        line: CacheLineAddr,
        /// Blast radius to cover.
        radius: u32,
    },
    /// Refresh via the convoluted software path: clflush then load
    /// with fences (the only mechanism available without the paper's
    /// primitive, §4.3). Unreliable when the row buffer already holds
    /// the row.
    ConvolutedRefresh {
        /// Any line in the target row.
        line: CacheLineAddr,
    },
    /// Pin `line` into the LLC so it stops generating ACTs (§4.2).
    LockLine {
        /// The hot line to pin.
        line: CacheLineAddr,
    },
    /// Release all cache locks (refresh-interval boundary).
    UnlockAll,
    /// Move the page at `frame` to a fresh frame and update the owning
    /// page table (ACT wear-leveling, §4.2).
    RemapFrame {
        /// The frame to migrate away from.
        frame: u64,
    },
}

/// The interface every software defense daemon implements.
pub trait SoftwareDefense: std::fmt::Debug {
    /// Short display name for reports.
    fn name(&self) -> &'static str;

    /// Handles a batch of precise (or legacy) ACT interrupts.
    fn on_act_interrupts(&mut self, ints: &[ActInterrupt]) -> Vec<DefenseAction> {
        let _ = ints;
        Vec::new()
    }

    /// Handles a batch of PMU miss samples.
    fn on_pmu_samples(&mut self, samples: &[MissSample]) -> Vec<DefenseAction> {
        let _ = samples;
        Vec::new()
    }

    /// Called when a refresh window rolls over: per-window state (lock
    /// budgets, counters) resets here.
    fn on_window_rollover(&mut self, now: Cycle) -> Vec<DefenseAction> {
        let _ = now;
        Vec::new()
    }

    /// Feedback: a requested [`DefenseAction::LockLine`] failed for
    /// lack of lockable ways; the defense may fall back (e.g. remap).
    fn on_lock_failed(&mut self, line: CacheLineAddr) -> Vec<DefenseAction> {
        let _ = line;
        Vec::new()
    }

    /// A boxed deep copy of this defense mid-run, for machine
    /// checkpointing. `None` (the default) marks the defense as
    /// non-checkpointable and makes `Machine::checkpoint` fail rather
    /// than silently fork shared state.
    fn box_clone(&self) -> Option<Box<dyn SoftwareDefense>> {
        None
    }
}

/// The do-nothing defense (vulnerable baseline).
#[derive(Debug, Default, Clone)]
pub struct NoDefense;

impl SoftwareDefense for NoDefense {
    fn name(&self) -> &'static str {
        "none"
    }

    fn box_clone(&self) -> Option<Box<dyn SoftwareDefense>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime_common::Geometry;
    use hammertime_memctrl::MappingScheme;

    fn topo() -> Topology {
        let map = AddressMap::new(MappingScheme::CacheLineInterleave, Geometry::medium()).unwrap();
        Topology::new(map, 2)
    }

    #[test]
    fn locate_and_line_of_row_round_trip() {
        let t = topo();
        let line = CacheLineAddr(1234);
        let (bank, row) = t.locate(line).unwrap();
        let canonical = t.line_of_row(&bank, row).unwrap();
        let (bank2, row2) = t.locate(canonical).unwrap();
        assert_eq!(bank, bank2);
        assert_eq!(row, row2);
    }

    #[test]
    fn neighbor_lines_map_to_neighbor_rows() {
        let t = topo();
        let line = CacheLineAddr(5000);
        let (bank, row) = t.locate(line).unwrap();
        let neighbors = t.neighbor_row_lines(line, 2).unwrap();
        assert!(!neighbors.is_empty());
        for n in neighbors {
            let (nb, nr) = t.locate(n).unwrap();
            assert_eq!(nb, bank, "victims live in the same bank");
            let d = nr.abs_diff(row);
            assert!((1..=2).contains(&d));
        }
    }

    #[test]
    fn neighbor_lines_clamp_at_bank_edges() {
        let t = topo();
        let (bank, _) = t.locate(CacheLineAddr(0)).unwrap();
        let first_row_line = t.line_of_row(&bank, 0).unwrap();
        let neighbors = t.neighbor_row_lines(first_row_line, 3).unwrap();
        for n in neighbors {
            let (_, r) = t.locate(n).unwrap();
            assert!((1..=3).contains(&r), "row 0 has only upward neighbors");
        }
    }

    #[test]
    fn no_defense_is_inert() {
        let mut d = NoDefense;
        assert_eq!(d.name(), "none");
        assert!(d.on_act_interrupts(&[]).is_empty());
        assert!(d.on_pmu_samples(&[]).is_empty());
        assert!(d.on_window_rollover(Cycle::ZERO).is_empty());
        assert!(d.on_lock_failed(CacheLineAddr(0)).is_empty());
    }
}
