//! Refresh-centric software defense (paper §4.3).
//!
//! [`VictimRefresh`] identifies suspected aggressors from precise ACT
//! interrupts (§4.2 supplies the identification mechanism) and
//! proactively refreshes their potential victims before the aggressor
//! reaches the module's MAC. Three refresh mechanisms are supported,
//! matching the paper's design space:
//!
//! - [`RefreshMechanism::Instruction`] — the proposed host-privileged
//!   `refresh` instruction: precise, one PRE+ACT+PRE per victim row.
//! - [`RefreshMechanism::RefNeighbors`] — the optional DRAM-assisted
//!   command: one submission covers the whole blast radius.
//! - [`RefreshMechanism::Convoluted`] — the status-quo fallback:
//!   clflush + load and hope the access actually ACTs the row
//!   (it silently fails to refresh when the row buffer already holds
//!   the row — the imprecision the paper calls out).

use super::{DefenseAction, SoftwareDefense, Topology};
use hammertime_common::Cycle;
use hammertime_memctrl::ActInterrupt;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How victims get refreshed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefreshMechanism {
    /// The proposed `refresh` instruction (§4.3).
    Instruction,
    /// The proposed REF_NEIGHBORS DRAM command (§4.3).
    RefNeighbors,
    /// clflush + load: the only path on today's hardware.
    Convoluted,
}

/// Victim-refresh daemon configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VictimRefreshConfig {
    /// Interrupts on the same row before acting (1 = act immediately;
    /// higher values trade latency for fewer false positives).
    pub interrupts_before_action: u32,
    /// Refresh mechanism.
    pub mechanism: RefreshMechanism,
}

impl Default for VictimRefreshConfig {
    fn default() -> Self {
        VictimRefreshConfig {
            interrupts_before_action: 1,
            mechanism: RefreshMechanism::Instruction,
        }
    }
}

/// The refresh-centric daemon.
#[derive(Debug, Clone)]
pub struct VictimRefresh {
    config: VictimRefreshConfig,
    topology: Topology,
    /// Interrupt counts per (flat-ish bank key, row) this window.
    counts: HashMap<(u64, u32), u32>,
    /// Victim-refresh operations requested (stats).
    pub refreshes_requested: u64,
    /// Address-free interrupts that could not be acted on.
    pub blind_interrupts: u64,
}

impl VictimRefresh {
    /// Creates the daemon over the host's topology knowledge.
    pub fn new(config: VictimRefreshConfig, topology: Topology) -> VictimRefresh {
        VictimRefresh {
            config,
            topology,
            counts: HashMap::new(),
            refreshes_requested: 0,
            blind_interrupts: 0,
        }
    }

    fn bank_key(bank: &hammertime_common::geometry::BankId) -> u64 {
        ((bank.channel as u64) << 24)
            | ((bank.rank as u64) << 16)
            | ((bank.bank_group as u64) << 8)
            | bank.bank as u64
    }
}

impl SoftwareDefense for VictimRefresh {
    fn box_clone(&self) -> Option<Box<dyn SoftwareDefense>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        match self.config.mechanism {
            RefreshMechanism::Instruction => "victim-refresh/instr",
            RefreshMechanism::RefNeighbors => "victim-refresh/refn",
            RefreshMechanism::Convoluted => "victim-refresh/convoluted",
        }
    }

    fn on_act_interrupts(&mut self, ints: &[ActInterrupt]) -> Vec<DefenseAction> {
        let mut actions = Vec::new();
        for int in ints {
            let Some(line) = int.addr else {
                self.blind_interrupts += 1;
                continue;
            };
            let Ok((bank, row)) = self.topology.locate(line) else {
                continue;
            };
            let key = (Self::bank_key(&bank), row);
            let count = self.counts.entry(key).or_insert(0);
            *count += 1;
            if *count < self.config.interrupts_before_action {
                continue;
            }
            *count = 0;
            self.refreshes_requested += 1;
            let radius = self.topology.assumed_radius;
            match self.config.mechanism {
                RefreshMechanism::Instruction => {
                    if let Ok(victims) = self.topology.neighbor_row_lines(line, radius) {
                        for v in victims {
                            actions.push(DefenseAction::RefreshRow {
                                line: v,
                                auto_pre: true,
                            });
                        }
                    }
                }
                RefreshMechanism::RefNeighbors => {
                    actions.push(DefenseAction::RefNeighbors { line, radius });
                }
                RefreshMechanism::Convoluted => {
                    if let Ok(victims) = self.topology.neighbor_row_lines(line, radius) {
                        for v in victims {
                            actions.push(DefenseAction::ConvolutedRefresh { line: v });
                        }
                    }
                }
            }
        }
        actions
    }

    fn on_window_rollover(&mut self, _now: Cycle) -> Vec<DefenseAction> {
        self.counts.clear();
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime_common::{CacheLineAddr, DomainId, Geometry};
    use hammertime_memctrl::addrmap::AddressMap;
    use hammertime_memctrl::MappingScheme;

    fn topo() -> Topology {
        let map = AddressMap::new(MappingScheme::CacheLineInterleave, Geometry::medium()).unwrap();
        Topology::new(map, 2)
    }

    fn daemon(mechanism: RefreshMechanism, threshold: u32) -> VictimRefresh {
        VictimRefresh::new(
            VictimRefreshConfig {
                interrupts_before_action: threshold,
                mechanism,
            },
            topo(),
        )
    }

    fn precise(line: u64) -> ActInterrupt {
        ActInterrupt {
            channel: 0,
            time: Cycle(5),
            addr: Some(CacheLineAddr(line)),
            domain: Some(DomainId(1)),
        }
    }

    #[test]
    fn instruction_mechanism_refreshes_every_neighbor() {
        let mut d = daemon(RefreshMechanism::Instruction, 1);
        let line = CacheLineAddr(4096);
        let actions = d.on_act_interrupts(&[ActInterrupt {
            channel: 0,
            time: Cycle(0),
            addr: Some(line),
            domain: Some(DomainId(1)),
        }]);
        let expected = d.topology.neighbor_row_lines(line, 2).unwrap().len();
        assert_eq!(actions.len(), expected);
        assert!(actions
            .iter()
            .all(|a| matches!(a, DefenseAction::RefreshRow { auto_pre: true, .. })));
        assert_eq!(d.refreshes_requested, 1);
    }

    #[test]
    fn ref_neighbors_mechanism_emits_single_command() {
        let mut d = daemon(RefreshMechanism::RefNeighbors, 1);
        let actions = d.on_act_interrupts(&[precise(0)]);
        assert_eq!(
            actions,
            vec![DefenseAction::RefNeighbors {
                line: CacheLineAddr(0),
                radius: 2
            }]
        );
    }

    #[test]
    fn convoluted_mechanism_uses_flush_load_path() {
        let mut d = daemon(RefreshMechanism::Convoluted, 1);
        let actions = d.on_act_interrupts(&[precise(0)]);
        assert!(!actions.is_empty());
        assert!(actions
            .iter()
            .all(|a| matches!(a, DefenseAction::ConvolutedRefresh { .. })));
    }

    #[test]
    fn threshold_defers_action_until_enough_interrupts() {
        let mut d = daemon(RefreshMechanism::RefNeighbors, 3);
        assert!(d.on_act_interrupts(&[precise(0)]).is_empty());
        assert!(d.on_act_interrupts(&[precise(0)]).is_empty());
        assert_eq!(d.on_act_interrupts(&[precise(0)]).len(), 1);
        // Counter reset after firing.
        assert!(d.on_act_interrupts(&[precise(0)]).is_empty());
    }

    #[test]
    fn window_rollover_clears_counts() {
        let mut d = daemon(RefreshMechanism::RefNeighbors, 2);
        d.on_act_interrupts(&[precise(0)]);
        d.on_window_rollover(Cycle(100));
        assert!(
            d.on_act_interrupts(&[precise(0)]).is_empty(),
            "count restarted"
        );
    }

    #[test]
    fn blind_without_addresses() {
        let mut d = daemon(RefreshMechanism::Instruction, 1);
        let legacy = ActInterrupt {
            channel: 0,
            time: Cycle(0),
            addr: None,
            domain: None,
        };
        assert!(d.on_act_interrupts(&[legacy]).is_empty());
        assert_eq!(d.blind_interrupts, 1);
    }

    #[test]
    fn names_reflect_mechanism() {
        assert_eq!(
            daemon(RefreshMechanism::Instruction, 1).name(),
            "victim-refresh/instr"
        );
        assert_eq!(
            daemon(RefreshMechanism::RefNeighbors, 1).name(),
            "victim-refresh/refn"
        );
        assert_eq!(
            daemon(RefreshMechanism::Convoluted, 1).name(),
            "victim-refresh/convoluted"
        );
    }
}
