//! ANVIL-style baseline defense (Aweke et al., ASPLOS'16).
//!
//! ANVIL samples LLC-miss addresses through core performance counters,
//! builds per-row access estimates, and selectively "refreshes"
//! suspected victims by reading them through the convoluted
//! flush+load path. Two structural weaknesses — both called out by the
//! paper — are faithfully reproduced:
//!
//! 1. **DMA blindness** (§1): core PMUs never see DMA traffic, so a
//!    DMA-based hammer (`hammertime-workloads`' `DmaHammer`) sails
//!    straight past the sampler.
//! 2. **Imprecise refresh** (§4.3): the flush+load path only refreshes
//!    a row if the load actually causes an ACT, which depends on row
//!    buffer state ANVIL cannot observe.

use super::{DefenseAction, SoftwareDefense, Topology};
use hammertime_cache::MissSample;
use hammertime_common::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// ANVIL configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnvilConfig {
    /// Sampled misses attributed to one row before it is treated as an
    /// aggressor. Because the PMU samples every Nth miss, the implied
    /// ACT threshold is `sample_period x miss_threshold`.
    pub miss_threshold: u32,
}

impl Default for AnvilConfig {
    fn default() -> Self {
        AnvilConfig { miss_threshold: 8 }
    }
}

/// The ANVIL daemon.
#[derive(Debug, Clone)]
pub struct Anvil {
    config: AnvilConfig,
    topology: Topology,
    counts: HashMap<(u64, u32), u32>,
    /// Victim-refresh campaigns launched (stats).
    pub refreshes_requested: u64,
}

impl Anvil {
    /// Creates the daemon.
    pub fn new(config: AnvilConfig, topology: Topology) -> Anvil {
        Anvil {
            config,
            topology,
            counts: HashMap::new(),
            refreshes_requested: 0,
        }
    }

    fn bank_key(bank: &hammertime_common::geometry::BankId) -> u64 {
        ((bank.channel as u64) << 24)
            | ((bank.rank as u64) << 16)
            | ((bank.bank_group as u64) << 8)
            | bank.bank as u64
    }
}

impl SoftwareDefense for Anvil {
    fn box_clone(&self) -> Option<Box<dyn SoftwareDefense>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "anvil"
    }

    fn on_pmu_samples(&mut self, samples: &[MissSample]) -> Vec<DefenseAction> {
        let mut actions = Vec::new();
        for s in samples {
            let Ok((bank, row)) = self.topology.locate(s.line) else {
                continue;
            };
            let key = (Self::bank_key(&bank), row);
            let count = self.counts.entry(key).or_insert(0);
            *count += 1;
            if *count < self.config.miss_threshold {
                continue;
            }
            *count = 0;
            self.refreshes_requested += 1;
            // ANVIL has no refresh instruction: it walks the neighbors
            // with flush+load and hopes each load ACTs the row.
            if let Ok(victims) = self
                .topology
                .neighbor_row_lines(s.line, self.topology.assumed_radius)
            {
                for v in victims {
                    actions.push(DefenseAction::ConvolutedRefresh { line: v });
                }
            }
        }
        actions
    }

    fn on_window_rollover(&mut self, _now: Cycle) -> Vec<DefenseAction> {
        self.counts.clear();
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime_common::{CacheLineAddr, Geometry};
    use hammertime_memctrl::addrmap::AddressMap;
    use hammertime_memctrl::MappingScheme;

    fn daemon(threshold: u32) -> Anvil {
        let map = AddressMap::new(MappingScheme::CacheLineInterleave, Geometry::medium()).unwrap();
        Anvil::new(
            AnvilConfig {
                miss_threshold: threshold,
            },
            Topology::new(map, 2),
        )
    }

    fn sample(line: u64) -> MissSample {
        MissSample {
            line: CacheLineAddr(line),
            is_write: false,
        }
    }

    #[test]
    fn fires_after_threshold_samples_on_one_row() {
        let mut d = daemon(3);
        assert!(d.on_pmu_samples(&[sample(0), sample(0)]).is_empty());
        let actions = d.on_pmu_samples(&[sample(0)]);
        assert!(!actions.is_empty());
        assert!(actions
            .iter()
            .all(|a| matches!(a, DefenseAction::ConvolutedRefresh { .. })));
        assert_eq!(d.refreshes_requested, 1);
    }

    #[test]
    fn distinct_rows_count_separately() {
        let mut d = daemon(2);
        // Lines 0 and 4096 land on different rows of medium geometry.
        assert!(d.on_pmu_samples(&[sample(0), sample(4096)]).is_empty());
        assert!(!d.on_pmu_samples(&[sample(0)]).is_empty());
    }

    #[test]
    fn no_samples_no_actions() {
        // The DMA blind spot in miniature: if the sampler never sees
        // the traffic (because it bypassed the cache), ANVIL does
        // nothing no matter how hard the DMA engine hammers.
        let mut d = daemon(1);
        assert!(d.on_pmu_samples(&[]).is_empty());
        assert_eq!(d.refreshes_requested, 0);
    }

    #[test]
    fn window_rollover_resets_counts() {
        let mut d = daemon(2);
        d.on_pmu_samples(&[sample(0)]);
        d.on_window_rollover(Cycle(1));
        assert!(d.on_pmu_samples(&[sample(0)]).is_empty());
    }
}
