//! Property tests for the host-OS layer.

use hammertime_common::{DomainId, Geometry, VirtAddr};
use hammertime_memctrl::addrmap::{AddressMap, MappingScheme};
use hammertime_os::frame_alloc::{FrameAllocator, PlacementPolicy};
use hammertime_os::page_table::PageTable;
use proptest::prelude::*;

proptest! {
    /// The allocator never double-allocates, never loses frames, and
    /// free/alloc counts always balance — under arbitrary interleaved
    /// alloc/release sequences from multiple domains.
    #[test]
    fn allocator_conservation(ops in prop::collection::vec((0u8..4, any::<u64>()), 1..200)) {
        let map = AddressMap::new(MappingScheme::CacheLineInterleave, Geometry::medium()).unwrap();
        let total = map.geometry().total_frames();
        let mut a = FrameAllocator::new(PlacementPolicy::Default, map).unwrap();
        for d in 1..=3 {
            a.register_domain(DomainId(d)).unwrap();
        }
        let mut live: Vec<u64> = Vec::new();
        for (op, arg) in ops {
            match op {
                0..=2 => {
                    let d = DomainId(op as u32 + 1);
                    if let Ok(f) = a.alloc(d) {
                        prop_assert!(!live.contains(&f), "double allocation");
                        prop_assert_eq!(a.owner_of(f), Some(d));
                        live.push(f);
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let f = live.swap_remove((arg % live.len() as u64) as usize);
                        a.release(f).unwrap();
                        prop_assert_eq!(a.owner_of(f), None);
                    }
                }
            }
            prop_assert_eq!(a.free_frames(), total - live.len() as u64);
        }
    }

    /// SubarrayGroup placement: every allocation lands in its domain's
    /// group, for arbitrary allocation interleavings.
    #[test]
    fn subarray_placement_invariant(ops in prop::collection::vec(0u8..4, 1..120)) {
        let map = AddressMap::new(MappingScheme::SubarrayIsolated, Geometry::medium()).unwrap();
        let mut a = FrameAllocator::new(PlacementPolicy::SubarrayGroup, map).unwrap();
        for d in 1..=4 {
            a.register_domain(DomainId(d)).unwrap();
        }
        for op in ops {
            let d = DomainId(op as u32 + 1);
            if let Ok(f) = a.alloc(d) {
                prop_assert_eq!(a.map().group_of_frame(f), a.region_of(d).unwrap());
            }
        }
    }

    /// ZebRAM guard invariant: after any allocation interleaving, no
    /// two frames of different domains are within the guard radius in
    /// row-stripe space.
    #[test]
    fn zebram_guard_invariant(ops in prop::collection::vec(0u8..2, 1..60), radius in 1u32..3) {
        let map = AddressMap::new(MappingScheme::CacheLineInterleave, Geometry::medium()).unwrap();
        let mut a = FrameAllocator::new(PlacementPolicy::ZebramGuard { radius }, map).unwrap();
        let d1 = DomainId(1);
        let d2 = DomainId(2);
        a.register_domain(d1).unwrap();
        a.register_domain(d2).unwrap();
        let mut placed: Vec<(u32, DomainId)> = Vec::new();
        for op in ops {
            let d = if op == 0 { d1 } else { d2 };
            if let Ok(f) = a.alloc(d) {
                let stripe = a.map().row_stripe_of_frame(f).unwrap();
                placed.push((stripe, d));
            }
        }
        for &(s1, o1) in &placed {
            for &(s2, o2) in &placed {
                if o1 != o2 {
                    prop_assert!(
                        s1.abs_diff(s2) > radius,
                        "domains {o1}/{o2} within radius: stripes {s1},{s2}"
                    );
                }
            }
        }
    }

    /// Page tables: map/remap/unmap maintain a consistent bijection
    /// between mapped vpages and frames.
    #[test]
    fn page_table_consistency(ops in prop::collection::vec((0u8..3, 0u64..32, any::<u64>()), 1..150)) {
        let mut pt = PageTable::new();
        let mut model = std::collections::HashMap::<u64, u64>::new();
        let mut next_frame = 1_000u64;
        for (op, vpage, arg) in ops {
            match op {
                0 => {
                    let frame = next_frame;
                    next_frame += 1;
                    let r = pt.map(vpage, frame);
                    match model.entry(vpage) {
                        std::collections::hash_map::Entry::Occupied(_) => {
                            prop_assert!(r.is_err());
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            prop_assert!(r.is_ok());
                            e.insert(frame);
                        }
                    }
                }
                1 => {
                    let r = pt.unmap(vpage);
                    match model.remove(&vpage) {
                        Some(f) => prop_assert_eq!(r.unwrap(), f),
                        None => prop_assert!(r.is_err()),
                    }
                }
                _ => {
                    let new_frame = 100_000 + arg % 1_000;
                    let r = pt.remap(vpage, new_frame);
                    match model.get_mut(&vpage) {
                        Some(f) => {
                            prop_assert_eq!(r.unwrap(), *f);
                            *f = new_frame;
                        }
                        None => prop_assert!(r.is_err()),
                    }
                }
            }
            // Translation agrees with the model everywhere.
            for (&v, &f) in &model {
                let pa = pt.translate(VirtAddr::from_page(v)).unwrap();
                prop_assert_eq!(pa.page_frame(), f);
            }
            prop_assert_eq!(pt.len(), model.len());
        }
    }

    /// Adjacency inference never invents boundaries inside a
    /// continuously-probed subarray: for synthetic flip data with full
    /// coverage, boundaries appear exactly at subarray seams.
    #[test]
    fn inference_exact_on_full_coverage(sa_bits in 2u32..5, n_sa in 1u32..4) {
        use hammertime_os::AdjacencyMap;
        let rps = 1u32 << sa_bits;
        let rows = rps * n_sa;
        let mut probe = |r: u32| -> Vec<u32> {
            let mut v = Vec::new();
            for d in [-1i64, 1] {
                let x = r as i64 + d;
                if x >= 0 && (x as u32) < rows && (x as u32) / rps == r / rps {
                    v.push(x as u32);
                }
            }
            v
        };
        let map = AdjacencyMap::build(rows, &mut probe);
        let expected: Vec<u32> = (1..n_sa).map(|i| i * rps).collect();
        prop_assert_eq!(map.infer_boundaries(rows), expected);
        prop_assert!(map.infer_remap_suspects(1).is_empty());
    }
}
