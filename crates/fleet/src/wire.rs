//! The wire form of a cross-machine tenant migration.
//!
//! In-process fleet runs migrate tenants by *moving* the boxed
//! workload between worker threads. A multi-process fleet (and the
//! epoch journal) cannot move a trait object, so postings cross
//! process and disk boundaries as [`WirePosting`]s: the tenant's
//! metadata plus a serializable [`WorkloadSnapshot`] of its stream.
//! Snapshots restore bit-exactly (`workloads::benign` tests hold the
//! fidelity contract), which is what lets a supervised run's output
//! stay byte-identical to the in-process runner's.

use hammertime::machine::TenantExport;
use hammertime_common::{DomainId, Error, Result, TriggerCounts};
use hammertime_workloads::WorkloadSnapshot;
use serde::{Deserialize, Serialize};

/// One tenant migration posting in serializable form: machine `src`
/// detached the tenant during some epoch and machine `dest` admits it
/// at the start of the next.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirePosting {
    /// Destination machine id.
    pub dest: u32,
    /// Source machine id.
    pub src: u32,
    /// The tenant's fleet-unique domain id.
    pub domain: u32,
    /// Pages the tenant had mapped on the source machine.
    pub pages: u64,
    /// Operations the tenant completed before detaching.
    pub ops_done: u64,
    /// The workload mid-stream (`None` if the tenant had none).
    pub workload: Option<WorkloadSnapshot>,
    /// Mitigation triggers the source controller charged to the
    /// tenant; the destination merges them so attribution follows the
    /// tenant across process and journal boundaries.
    pub triggers: TriggerCounts,
}

impl WirePosting {
    /// Captures an in-memory posting without consuming it.
    ///
    /// # Errors
    ///
    /// `Err` if the tenant carries a workload that cannot snapshot
    /// (wire-opaque generators) — the caller must fail the migration
    /// rather than silently drop the stream.
    pub fn capture(dest: u32, src: u32, export: &TenantExport) -> Result<WirePosting> {
        let workload = match &export.workload {
            None => None,
            Some(w) => Some(w.snapshot().ok_or_else(|| {
                Error::Config(format!(
                    "tenant {} carries a wire-opaque workload ({}); it cannot \
                     cross a process or journal boundary",
                    export.domain,
                    w.name()
                ))
            })?),
        };
        Ok(WirePosting {
            dest,
            src,
            domain: export.domain.0,
            pages: export.pages,
            ops_done: export.ops_done,
            workload,
            triggers: export.triggers,
        })
    }

    /// Rebuilds the in-memory export a destination machine admits.
    pub fn restore(&self) -> Result<TenantExport> {
        let workload = match &self.workload {
            None => None,
            Some(s) => Some(s.restore()?),
        };
        Ok(TenantExport {
            domain: DomainId(self.domain),
            pages: self.pages,
            workload,
            ops_done: self.ops_done,
            triggers: self.triggers,
        })
    }
}

/// Sorts postings into the canonical journal/wire order: destination,
/// then source, then domain. The in-process mailbox produces exactly
/// this order (a `BTreeMap` over destinations whose values are sorted
/// by `(src, domain)`), so journals written by either runner compare
/// equal.
pub fn sort_canonical(postings: &mut [WirePosting]) {
    postings.sort_by_key(|p| (p.dest, p.src, p.domain));
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime_common::CacheLineAddr;
    use hammertime_workloads::{StreamWorkload, Workload};

    fn export(domain: u32) -> TenantExport {
        let arena: Vec<CacheLineAddr> = (0..8).map(CacheLineAddr).collect();
        let mut w = StreamWorkload::new(arena, 40, 4);
        for _ in 0..7 {
            w.next_op();
        }
        TenantExport {
            domain: DomainId(domain),
            pages: 2,
            workload: Some(Box::new(w)),
            ops_done: 7,
            triggers: TriggerCounts {
                trr_samples: 3,
                act_interrupts: 2,
                ..TriggerCounts::default()
            },
        }
    }

    #[test]
    fn capture_restore_round_trips_the_stream() {
        let original = export(99);
        let wire = WirePosting::capture(3, 1, &original).unwrap();
        let json = serde_json::to_string(&wire).unwrap();
        let back: WirePosting = serde_json::from_str(&json).unwrap();
        assert_eq!(wire, back);
        let restored = back.restore().unwrap();
        assert_eq!(restored.domain, original.domain);
        assert_eq!(restored.pages, original.pages);
        assert_eq!(restored.ops_done, original.ops_done);
        assert_eq!(restored.triggers, original.triggers);
        let mut a = original.workload.unwrap();
        let mut b = restored.workload.unwrap();
        loop {
            let (x, y) = (a.next_op(), b.next_op());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn workload_less_tenant_crosses_the_wire() {
        let e = TenantExport {
            domain: DomainId(5),
            pages: 1,
            workload: None,
            ops_done: 0,
            triggers: TriggerCounts::default(),
        };
        let wire = WirePosting::capture(2, 0, &e).unwrap();
        assert!(wire.workload.is_none());
        assert!(wire.restore().unwrap().workload.is_none());
    }

    #[test]
    fn canonical_sort_orders_by_dest_src_domain() {
        let p = |dest, src, domain| WirePosting {
            dest,
            src,
            domain,
            pages: 0,
            ops_done: 0,
            workload: None,
            triggers: TriggerCounts::default(),
        };
        let mut v = vec![p(2, 1, 9), p(1, 3, 1), p(1, 2, 5), p(1, 2, 4)];
        sort_canonical(&mut v);
        let order: Vec<_> = v.iter().map(|p| (p.dest, p.src, p.domain)).collect();
        assert_eq!(order, vec![(1, 2, 4), (1, 2, 5), (1, 3, 1), (2, 1, 9)]);
    }
}
