//! Durable fleet runs: the on-disk epoch journal and its manifest.
//!
//! # What is journaled (and why not machine state)
//!
//! A fleet machine's live state is a web of trait objects (defenses,
//! workloads, fault clocks) that cannot round-trip through a codec
//! without forking every one of them. The journal instead exploits the
//! fleet's determinism contract: **everything a machine does is a pure
//! function of the fleet seed and the postings it admits**. So the
//! journal records, per committed epoch, only the canonical
//! cross-machine postings ([`WirePosting`]s) plus a commit marker —
//! and resume *re-simulates* from epoch 0, validating that each
//! regenerated epoch's postings equal the journaled ones. Byte-identity
//! of a resumed run is then true by construction, and a torn or lost
//! record can only ever cost recomputation, never wrong output.
//!
//! # Commit protocol
//!
//! At each epoch barrier the leader appends a [`K_POSTINGS`] record
//! (the epoch's canonical postings) followed by a [`K_COMMIT`] marker,
//! then syncs. A postings record without its commit marker — the
//! window a SIGKILL can tear — is discarded on recovery, falling back
//! to the previous committed epoch. Graceful stops append
//! [`K_CLEAN_STOP`]; supervisor quarantine decisions append
//! [`K_QUARANTINE`] so a resumed run reproduces them.
//!
//! # Manifest
//!
//! `manifest.json` (written once, via tmp+rename) pins the run's
//! identity: fleet seed, the config in canonical form (worker count
//! zeroed — `--jobs` may legally differ across resume), and an FNV-1a
//! hash of the synthesized population. `--resume` with a different
//! population is a structured error, not a silently diverging run.

use std::path::{Path, PathBuf};

use hammertime_common::journal::{self, JournalWriter};
use hammertime_common::{Error, Result};
use serde::{Deserialize, Serialize};

use crate::population::synthesize;
use crate::shard::FleetConfig;
use crate::wire::WirePosting;

/// Journal record: the canonical postings emitted during one epoch.
pub const K_POSTINGS: u16 = 1;
/// Journal record: epoch commit marker (payload = epoch, u32 LE).
pub const K_COMMIT: u16 = 2;
/// Journal record: the run stopped gracefully at an epoch boundary.
pub const K_CLEAN_STOP: u16 = 3;
/// Journal record: the supervisor quarantined a machine.
pub const K_QUARANTINE: u16 = 4;

/// Journal file name inside the durable directory.
pub const JOURNAL_FILE: &str = "epochs.htjl";
/// Manifest file name inside the durable directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// The postings emitted during one epoch, in canonical order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochPostings {
    /// The epoch these postings were emitted in (delivered at the
    /// start of `epoch + 1`).
    pub epoch: u32,
    /// Canonically ordered postings ([`crate::wire::sort_canonical`]).
    pub postings: Vec<WirePosting>,
}

/// A supervisor decision to isolate a machine that repeatedly crashed
/// its worker, starting at `stage` (0 = build, `e + 1` = epoch `e`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEvent {
    /// The isolated machine's fleet-wide id.
    pub machine: u32,
    /// First stage the machine no longer executes.
    pub stage: u32,
}

/// The run-identity manifest pinned next to the journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Journal format version ([`journal::JOURNAL_VERSION`]).
    pub version: u32,
    /// Fleet seed.
    pub seed: u64,
    /// Canonical config encoding with the worker count zeroed.
    pub identity: String,
    /// FNV-1a hash of the synthesized population.
    pub spec_hash: u64,
}

/// FNV-1a, the standard 64-bit offset/prime pair.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The config's canonical identity string: every field that shapes the
/// simulation, with `jobs` zeroed because worker count is the one knob
/// the determinism contract lets a resume change.
fn identity(cfg: &FleetConfig) -> String {
    let mut canonical = cfg.clone();
    canonical.jobs = 0;
    serde_json::to_string(&canonical).expect("config serializes")
}

fn spec_hash(cfg: &FleetConfig) -> u64 {
    fnv1a(format!("{:?}", synthesize(cfg)).as_bytes())
}

impl Manifest {
    fn for_config(cfg: &FleetConfig) -> Manifest {
        Manifest {
            version: journal::JOURNAL_VERSION,
            seed: cfg.seed,
            identity: identity(cfg),
            spec_hash: spec_hash(cfg),
        }
    }

    /// Checks this manifest describes the same run `cfg` requests.
    pub fn validate(&self, cfg: &FleetConfig) -> Result<()> {
        let want = Manifest::for_config(cfg);
        if self.version != want.version {
            return Err(Error::Config(format!(
                "journal manifest version {} unsupported (this build reads {})",
                self.version, want.version
            )));
        }
        if self.seed != want.seed {
            return Err(Error::Config(format!(
                "journal was written for seed {:#x}, requested {:#x}",
                self.seed, want.seed
            )));
        }
        if self.identity != want.identity || self.spec_hash != want.spec_hash {
            return Err(Error::Config(
                "journal manifest does not match the requested population \
                 (config or spec hash differs); resume with the original \
                 parameters or start a fresh durable run"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// An open durable run: the journal writer plus everything recovered
/// from it.
#[derive(Debug)]
pub struct DurableRun {
    writer: JournalWriter,
    /// Committed postings, indexed by epoch.
    committed: Vec<Vec<WirePosting>>,
    /// Quarantine decisions recovered from (or appended to) the
    /// journal.
    quarantined: Vec<QuarantineEvent>,
    /// Whether the recovered journal ended in a clean-stop marker.
    had_clean_stop: bool,
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

impl DurableRun {
    /// Starts a fresh durable run in `dir`: writes the manifest
    /// (tmp+rename, so a crash never leaves a half manifest) and an
    /// empty journal. Any prior journal in `dir` is truncated.
    pub fn create(dir: &Path, cfg: &FleetConfig) -> Result<DurableRun> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Config(format!("create durable dir {}: {e}", dir.display())))?;
        let manifest = Manifest::for_config(cfg);
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        let body = serde_json::to_string(&manifest).expect("manifest serializes");
        std::fs::write(&tmp, body)
            .and_then(|()| std::fs::rename(&tmp, manifest_path(dir)))
            .map_err(|e| Error::Config(format!("write manifest in {}: {e}", dir.display())))?;
        let writer = JournalWriter::create(&journal_path(dir), cfg.seed)?;
        Ok(DurableRun {
            writer,
            committed: Vec::new(),
            quarantined: Vec::new(),
            had_clean_stop: false,
        })
    }

    /// Reopens the durable run in `dir` for resumption: validates the
    /// manifest against `cfg`, recovers the journal (dropping a torn
    /// tail), and replays its records into committed epochs and
    /// quarantine decisions.
    pub fn resume(dir: &Path, cfg: &FleetConfig) -> Result<DurableRun> {
        let body = std::fs::read_to_string(manifest_path(dir)).map_err(|e| {
            Error::Config(format!(
                "no durable run in {} (manifest unreadable: {e})",
                dir.display()
            ))
        })?;
        let manifest: Manifest = serde_json::from_str(&body)
            .map_err(|e| Error::Config(format!("corrupt manifest in {}: {e}", dir.display())))?;
        manifest.validate(cfg)?;
        let (writer, records, _torn) = JournalWriter::recover(&journal_path(dir), cfg.seed)?;
        let mut run = DurableRun {
            writer,
            committed: Vec::new(),
            quarantined: Vec::new(),
            had_clean_stop: false,
        };
        // Replay the frame stream. A postings record is *pending*
        // until its commit marker arrives; an orphaned pending record
        // (the commit was torn away, or the writer died between the
        // two appends) is simply superseded or dropped.
        let mut pending: Option<EpochPostings> = None;
        for rec in records {
            match rec.kind {
                K_POSTINGS => {
                    let ep: EpochPostings = serde_json::from_str(&string_payload(&rec.payload)?)
                        .map_err(|e| Error::Config(format!("corrupt postings record: {e}")))?;
                    pending = Some(ep);
                }
                K_COMMIT => {
                    let epoch = commit_epoch(&rec.payload)?;
                    let ep = pending.take().ok_or_else(|| {
                        Error::Config(format!("commit marker for epoch {epoch} has no postings"))
                    })?;
                    if ep.epoch != epoch || epoch as usize != run.committed.len() {
                        return Err(Error::Config(format!(
                            "journal commits out of order: marker {epoch}, postings {}, \
                             expected epoch {}",
                            ep.epoch,
                            run.committed.len()
                        )));
                    }
                    run.committed.push(ep.postings);
                }
                K_CLEAN_STOP => run.had_clean_stop = true,
                K_QUARANTINE => {
                    let ev: QuarantineEvent = serde_json::from_str(&string_payload(&rec.payload)?)
                        .map_err(|e| Error::Config(format!("corrupt quarantine record: {e}")))?;
                    run.quarantined.push(ev);
                }
                other => {
                    return Err(Error::Config(format!(
                        "unknown journal record kind {other}"
                    )))
                }
            }
        }
        Ok(run)
    }

    /// Epochs whose postings are committed (resume replays exactly
    /// these before live simulation continues).
    pub fn committed_epochs(&self) -> u32 {
        self.committed.len() as u32
    }

    /// The committed postings of `epoch`, if journaled.
    pub fn postings(&self, epoch: u32) -> Option<&[WirePosting]> {
        self.committed.get(epoch as usize).map(|v| v.as_slice())
    }

    /// Quarantine decisions in force for this run.
    pub fn quarantined(&self) -> &[QuarantineEvent] {
        &self.quarantined
    }

    /// Whether the recovered journal ended with a graceful-stop
    /// marker (informational; resuming past it is the normal path).
    pub fn had_clean_stop(&self) -> bool {
        self.had_clean_stop
    }

    /// Commits `epoch`'s canonical postings — or, if the epoch is
    /// already committed (a resumed run re-simulating its prefix),
    /// validates that the regenerated postings are identical. A
    /// mismatch means the journal and the requested run disagree and
    /// resuming would silently diverge.
    pub fn record_or_validate(&mut self, epoch: u32, postings: &[WirePosting]) -> Result<()> {
        if let Some(committed) = self.committed.get(epoch as usize) {
            if committed != postings {
                return Err(Error::Config(format!(
                    "re-simulated epoch {epoch} diverges from the journal \
                     ({} postings regenerated, {} committed); the journal \
                     belongs to a different run",
                    postings.len(),
                    committed.len()
                )));
            }
            return Ok(());
        }
        if epoch as usize != self.committed.len() {
            return Err(Error::Config(format!(
                "cannot commit epoch {epoch}: next uncommitted epoch is {}",
                self.committed.len()
            )));
        }
        let ep = EpochPostings {
            epoch,
            postings: postings.to_vec(),
        };
        let body = serde_json::to_string(&ep).expect("postings serialize");
        self.writer.append(K_POSTINGS, body.as_bytes())?;
        self.writer.append(K_COMMIT, &epoch.to_le_bytes())?;
        self.writer.sync()?;
        self.committed.push(ep.postings);
        Ok(())
    }

    /// Appends a quarantine decision.
    pub fn record_quarantine(&mut self, ev: QuarantineEvent) -> Result<()> {
        let body = serde_json::to_string(&ev).expect("event serializes");
        self.writer.append(K_QUARANTINE, body.as_bytes())?;
        self.writer.sync()?;
        self.quarantined.push(ev);
        Ok(())
    }

    /// Marks a graceful stop at the current epoch boundary.
    pub fn mark_clean_stop(&mut self) -> Result<()> {
        self.writer.append(K_CLEAN_STOP, &[])?;
        self.writer.sync()
    }
}

/// Starts (or restarts from scratch) a durable fleet run journaling
/// into `dir`. Returns the report plus whether all epochs completed.
pub fn run_fleet_durable(
    cfg: &FleetConfig,
    dir: &Path,
    control: &crate::shard::RunControl,
) -> Result<(crate::shard::FleetReport, bool)> {
    let mut durable = DurableRun::create(dir, cfg)?;
    crate::shard::run_fleet_controlled(cfg, control, Some(&mut durable))
}

/// Resumes the durable fleet run in `dir`: validates the manifest
/// against `cfg`, recovers the journal (torn tail falls back to the
/// last committed epoch), re-simulates the committed prefix under
/// validation, and continues live from the first uncommitted epoch.
/// The final report is byte-identical to an uninterrupted run.
pub fn resume_fleet(
    cfg: &FleetConfig,
    dir: &Path,
    control: &crate::shard::RunControl,
) -> Result<(crate::shard::FleetReport, bool)> {
    let mut durable = DurableRun::resume(dir, cfg)?;
    crate::shard::run_fleet_controlled(cfg, control, Some(&mut durable))
}

fn string_payload(payload: &[u8]) -> Result<String> {
    String::from_utf8(payload.to_vec())
        .map_err(|_| Error::Config("journal payload is not UTF-8".into()))
}

fn commit_epoch(payload: &[u8]) -> Result<u32> {
    let bytes: [u8; 4] = payload
        .try_into()
        .map_err(|_| Error::Config("commit marker payload is not 4 bytes".into()))?;
    Ok(u32::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("htfleet-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn posting(dest: u32, src: u32, domain: u32) -> WirePosting {
        WirePosting {
            dest,
            src,
            domain,
            pages: 1,
            ops_done: 5,
            workload: None,
            triggers: hammertime_common::TriggerCounts::default(),
        }
    }

    #[test]
    fn create_commit_resume_round_trips() {
        let dir = tmpdir("roundtrip");
        let cfg = FleetConfig::new(4);
        let mut run = DurableRun::create(&dir, &cfg).unwrap();
        run.record_or_validate(0, &[posting(1, 0, 20)]).unwrap();
        run.record_or_validate(1, &[]).unwrap();
        run.record_quarantine(QuarantineEvent {
            machine: 2,
            stage: 1,
        })
        .unwrap();
        drop(run);

        let resumed = DurableRun::resume(&dir, &cfg).unwrap();
        assert_eq!(resumed.committed_epochs(), 2);
        assert_eq!(resumed.postings(0).unwrap(), &[posting(1, 0, 20)]);
        assert!(resumed.postings(1).unwrap().is_empty());
        assert_eq!(
            resumed.quarantined(),
            &[QuarantineEvent {
                machine: 2,
                stage: 1
            }]
        );
        assert!(!resumed.had_clean_stop());
    }

    #[test]
    fn validate_accepts_identical_and_rejects_divergent_prefix() {
        let dir = tmpdir("validate");
        let cfg = FleetConfig::new(4);
        let mut run = DurableRun::create(&dir, &cfg).unwrap();
        run.record_or_validate(0, &[posting(1, 0, 20)]).unwrap();
        drop(run);

        let mut run = DurableRun::resume(&dir, &cfg).unwrap();
        run.record_or_validate(0, &[posting(1, 0, 20)]).unwrap();
        assert!(run.record_or_validate(0, &[posting(3, 0, 20)]).is_err());
        assert!(run.record_or_validate(5, &[]).is_err(), "gap refused");
    }

    #[test]
    fn torn_tail_falls_back_to_previous_commit() {
        let dir = tmpdir("torn");
        let cfg = FleetConfig::new(4);
        let mut run = DurableRun::create(&dir, &cfg).unwrap();
        run.record_or_validate(0, &[posting(1, 0, 20)]).unwrap();
        run.record_or_validate(1, &[posting(2, 1, 21)]).unwrap();
        drop(run);

        // Tear bytes off the tail: epoch 1's commit (and possibly its
        // postings) is damaged, epoch 0 must survive.
        let jp = journal_path(&dir);
        let bytes = std::fs::read(&jp).unwrap();
        std::fs::write(&jp, &bytes[..bytes.len() - 7]).unwrap();
        let resumed = DurableRun::resume(&dir, &cfg).unwrap();
        assert_eq!(resumed.committed_epochs(), 1);
        assert_eq!(resumed.postings(0).unwrap(), &[posting(1, 0, 20)]);
    }

    #[test]
    fn orphaned_postings_without_commit_are_dropped() {
        let dir = tmpdir("orphan");
        let cfg = FleetConfig::new(4);
        let mut run = DurableRun::create(&dir, &cfg).unwrap();
        run.record_or_validate(0, &[]).unwrap();
        // Simulate dying between the postings append and the commit
        // append: write a postings frame by hand with no marker.
        let ep = EpochPostings {
            epoch: 1,
            postings: vec![posting(0, 3, 9)],
        };
        run.writer
            .append(K_POSTINGS, serde_json::to_string(&ep).unwrap().as_bytes())
            .unwrap();
        run.writer.sync().unwrap();
        drop(run);

        let resumed = DurableRun::resume(&dir, &cfg).unwrap();
        assert_eq!(resumed.committed_epochs(), 1);
    }

    #[test]
    fn manifest_mismatch_is_a_structured_error() {
        let dir = tmpdir("mismatch");
        let cfg = FleetConfig::new(4);
        DurableRun::create(&dir, &cfg).unwrap();

        // Different population size.
        let bigger = FleetConfig::new(8);
        assert!(DurableRun::resume(&dir, &bigger).is_err());
        // Different seed.
        let reseeded = FleetConfig::new(4).seed(99);
        assert!(DurableRun::resume(&dir, &reseeded).is_err());
        // Different jobs is explicitly fine.
        let rejobbed = FleetConfig::new(4).jobs(7);
        assert!(DurableRun::resume(&dir, &rejobbed).is_ok());
        // Missing manifest entirely.
        std::fs::remove_file(manifest_path(&dir)).unwrap();
        assert!(DurableRun::resume(&dir, &cfg).is_err());
    }

    #[test]
    fn bit_flipped_record_is_a_structured_error() {
        let dir = tmpdir("bitflip");
        let cfg = FleetConfig::new(4);
        let mut run = DurableRun::create(&dir, &cfg).unwrap();
        run.record_or_validate(0, &[posting(1, 0, 20)]).unwrap();
        run.record_or_validate(1, &[posting(2, 1, 21)]).unwrap();
        drop(run);

        let jp = journal_path(&dir);
        let mut bytes = std::fs::read(&jp).unwrap();
        // Flip a bit inside epoch 0's postings payload: the strict
        // reader must error, and recovery must stop *before* epoch 0.
        let mid = 40;
        bytes[mid] ^= 0x08;
        std::fs::write(&jp, &bytes).unwrap();
        assert!(journal::read_all(&jp).is_err());
        let resumed = DurableRun::resume(&dir, &cfg).unwrap();
        assert_eq!(resumed.committed_epochs(), 0, "corruption drops the tail");
    }

    #[test]
    fn clean_stop_marker_survives_resume() {
        let dir = tmpdir("cleanstop");
        let cfg = FleetConfig::new(4);
        let mut run = DurableRun::create(&dir, &cfg).unwrap();
        run.record_or_validate(0, &[]).unwrap();
        run.mark_clean_stop().unwrap();
        drop(run);
        let resumed = DurableRun::resume(&dir, &cfg).unwrap();
        assert!(resumed.had_clean_stop());
        assert_eq!(resumed.committed_epochs(), 1);
    }
}
