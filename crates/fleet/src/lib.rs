//! Fleet mode: sharded multi-machine, multi-tenant simulation.
//!
//! One machine tells you whether a defense works; a *fleet* tells you
//! what deploying it costs. This crate shards thousands of simulated
//! machines — heterogeneous geometries, DRAM generations, fault
//! plans, defense slates — across worker threads under the engine's
//! determinism contract (`--jobs N` is byte-identical to the serial
//! loop), runs a tenant/workload scheduler over them (ASID churn,
//! cross-machine migration via the checkpoint machinery), and reduces
//! the per-machine reports to population-level *distributions*:
//! flip-rate and defense-overhead percentiles per slate, the numbers
//! a deployment decision actually turns on.
//!
//! Layers:
//!
//! - [`population`]: one fleet seed → a deterministic population of
//!   [`population::MachineSpec`]s (the seed-forking tree).
//! - [`shard`]: the sharded runner — epochs, the migration mailbox,
//!   per-machine step-budget scopes, [`shard::FleetReport`].
//! - [`stats`]: per-slate percentile/histogram aggregation
//!   ([`stats::PopulationStats`]) with a mergeable fold.
//! - [`experiment`]: the FL experiment family and the combined
//!   (core + FL) registry the CLI and golden suite run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod population;
pub mod shard;
pub mod stats;

pub use experiment::{full_registry, run_all_traced, run_all_with};
pub use population::{DramGen, MachineClass, MachineSpec};
pub use shard::{run_fleet, FleetConfig, FleetReport, MachineOutcome};
pub use stats::{fold, percentile, MachineSample, PopulationStats, SlateStats};
