//! Fleet mode: sharded multi-machine, multi-tenant simulation.
//!
//! One machine tells you whether a defense works; a *fleet* tells you
//! what deploying it costs. This crate shards thousands of simulated
//! machines — heterogeneous geometries, DRAM generations, fault
//! plans, defense slates — across worker threads under the engine's
//! determinism contract (`--jobs N` is byte-identical to the serial
//! loop), runs a tenant/workload scheduler over them (ASID churn,
//! cross-machine migration via the checkpoint machinery), and reduces
//! the per-machine reports to population-level *distributions*:
//! flip-rate and defense-overhead percentiles per slate, the numbers
//! a deployment decision actually turns on.
//!
//! Layers:
//!
//! - [`population`]: one fleet seed → a deterministic population of
//!   [`population::MachineSpec`]s (the seed-forking tree).
//! - [`shard`]: the sharded runner — epochs, the migration mailbox,
//!   per-machine step-budget scopes, [`shard::FleetReport`].
//! - [`wire`]: the serializable form of a tenant migration, for
//!   journal and process boundaries.
//! - [`durable`]: the on-disk epoch journal, manifest, and
//!   run/resume entry points (`--durable` / `--resume`).
//! - [`worker`] / [`supervisor`]: the shard-per-process runner — a
//!   supervisor drives `fleet worker` children over a pipe protocol,
//!   restarts crashes with capped backoff, and quarantines machines
//!   that repeatedly kill their worker.
//! - [`stats`]: per-slate percentile/histogram aggregation
//!   ([`stats::PopulationStats`]) with a mergeable fold.
//! - [`experiment`]: the FL experiment family and the combined
//!   (core + FL) registry the CLI and golden suite run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod experiment;
pub mod population;
pub mod shard;
pub mod stats;
pub mod supervisor;
pub mod wire;
pub mod worker;

pub use durable::{resume_fleet, run_fleet_durable, DurableRun, Manifest, QuarantineEvent};
pub use experiment::{full_registry, run_all_traced, run_all_with};
pub use population::{DramGen, MachineClass, MachineSpec};
pub use shard::{
    run_fleet, run_fleet_controlled, FleetConfig, FleetReport, MachineOutcome, RunControl,
};
pub use stats::{fold, percentile, MachineSample, PopulationStats, SlateStats};
pub use supervisor::{run_supervised, SuperviseOpts};
pub use wire::WirePosting;
pub use worker::run_worker;
