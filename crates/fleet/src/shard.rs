//! The sharded fleet runner: thousands of machines on a worker pool,
//! byte-identical output for any `--jobs`.
//!
//! # Sharding model
//!
//! Machine ids are split into contiguous chunks, one per worker; each
//! worker *owns* its machines for the whole run (no work stealing —
//! ownership is what lets a machine keep unboxed mutable state).
//! Time advances in **epochs** of `windows_per_epoch` refresh windows.
//! Within an epoch every machine is independent, so workers never
//! synchronize mid-epoch; a [`std::sync::Barrier`] separates epochs.
//!
//! # Migration protocol
//!
//! A tenant migrating from machine A to machine B is detached during
//! A's epoch `e` (`Machine::detach_tenant` — the same deep workload
//! snapshot the checkpoint machinery takes, moved rather than cloned)
//! and posted to a double-buffered mailbox keyed by destination id.
//! B admits it at the start of epoch `e + 1`, **sorted by source
//! machine id**: arrival order in the mailbox depends on worker
//! scheduling, the sort erases that. Since every routing decision is
//! drawn from per-machine RNG streams and admission order is
//! canonical, the mailbox contents — and therefore every machine's
//! timeline — are identical for any worker count.
//!
//! # Budget scope
//!
//! Each machine runs under its own step-budget scope
//! ([`hammertime::experiments::StepBudgetScope`] via `run_budgeted`):
//! a machine that exhausts `step_budget` simulated cycles becomes a
//! structured `Timeout` outcome, its siblings on the same worker keep
//! their full budgets, and any *enclosing* suite-cell budget (FL1
//! runs inside the experiment engine) is restored untouched.
//!
//! # Epoch barrier protocol (durability hooks)
//!
//! Each epoch ends in **two** barrier waits. Between them, exactly one
//! worker (the barrier leader) serializes the epoch's postings in
//! canonical order and commits them to the journal of a `--durable`
//! run, checks the graceful-stop flag, and honours the test-only
//! `halt_after` kill hook. Every worker then re-checks the shared halt
//! flag after the second wait, so a stop lands on all shards at the
//! same epoch boundary. Non-durable runs skip the serialization
//! entirely — the leader's extra work is two atomic loads.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use hammertime::experiments::{run_budgeted, CellFailure, FailureKind, FailureProgress};
use hammertime::machine::TenantExport;
use hammertime::metrics::SimReport;
use hammertime::scenario::CloudScenario;
use hammertime::taxonomy::DefenseKind;
use hammertime_common::{DetRng, DomainId, Error, FaultPlan, Result};
use hammertime_telemetry::{TraceRecord, Tracer};
use hammertime_workloads::{RandomWorkload, StreamWorkload, Workload, ZipfianWorkload};
use serde::{Deserialize, Serialize};

use crate::durable::DurableRun;
use crate::population::{synthesize, MachineSpec};
use crate::stats::{fold, PopulationStats};
use crate::wire::WirePosting;

/// First benign domain id; ids below it are reserved (host 0,
/// attacker 1, victim 2).
const TENANT_BASE: u32 = 16;

/// Per-machine stride of the fleet-unique tenant id space: benign
/// tenant `k` born on machine `m` is `TENANT_BASE + m * STRIDE + k`.
/// Uniqueness matters because migrated tenants keep their id on the
/// destination machine; 2048 births per machine is far above any
/// realistic churn in a run.
const TENANT_STRIDE: u32 = 2048;

/// How a fleet run is sized, scaled, parallelized, and guarded.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Machines in the fleet.
    pub machines: u32,
    /// Mean benign tenants seeded per machine (each machine adds
    /// 0 or 1 more from its spec stream).
    pub tenants: u32,
    /// Epochs to run; migrations land at epoch boundaries.
    pub epochs: u32,
    /// Refresh windows per epoch (each machine's own tREFW).
    pub windows_per_epoch: u64,
    /// Worker threads owning contiguous machine shards (1 = the
    /// serial loop; output is byte-identical either way).
    pub jobs: usize,
    /// The fleet seed at the root of the forking tree.
    pub seed: u64,
    /// Quick scale: shrinks per-tenant access counts (for tests/CI).
    pub quick: bool,
    /// Fraction of machines carrying an attacker tenant.
    pub attack_fraction: f64,
    /// Per-machine, per-epoch chance of emigrating one benign tenant.
    pub migration_chance: f64,
    /// Per-machine, per-epoch chance of an ASID destroy and of an
    /// ASID create (drawn independently).
    pub churn_chance: f64,
    /// Defense slates, assigned round-robin across machine ids.
    pub slates: Vec<DefenseKind>,
    /// Fault plan for the canonical degraded subset
    /// ([`crate::population::is_faulty_machine`]); `None` = healthy
    /// fleet.
    pub faults: Option<FaultPlan>,
    /// Attack-pipeline triples (`allocator/hammerer/victim`, see
    /// `hammertime-attack`) for attacked machines to draw from. Empty
    /// (the default) keeps the legacy double/many/DMA mix — and the
    /// legacy workload-stream draws — byte-identical.
    pub attack_triples: Vec<String>,
    /// Per-machine budget of simulated cycles for the *whole* run
    /// (build + all epochs); exhaustion makes that machine a
    /// `Timeout` outcome. `None` inherits whatever budget the calling
    /// thread runs under (an enclosing suite cell's, or nothing).
    pub step_budget: Option<u64>,
    /// Record a cycle-stamped event trace of this machine id.
    pub trace_machine: Option<u32>,
}

impl FleetConfig {
    /// Quick-scale defaults for a fleet of `machines` machines.
    pub fn new(machines: u32) -> FleetConfig {
        FleetConfig {
            machines,
            tenants: 2,
            epochs: 2,
            windows_per_epoch: 6,
            jobs: 1,
            seed: 0xF1EE7,
            quick: true,
            attack_fraction: 0.25,
            migration_chance: 0.35,
            churn_chance: 0.5,
            slates: FleetConfig::default_slates(),
            faults: None,
            attack_triples: Vec::new(),
            step_budget: None,
            trace_machine: None,
        }
    }

    /// The default slate set: one representative per taxonomy class
    /// plus the undefended baseline (4 slates, satisfying the ≥3 the
    /// population table promises).
    pub fn default_slates() -> Vec<DefenseKind> {
        vec![
            DefenseKind::None,
            DefenseKind::Para { prob: 8.0 / 24.0 },
            DefenseKind::Graphene { table_size: 16 },
            DefenseKind::VictimRefreshInstr,
        ]
    }

    /// Sets the worker count.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> FleetConfig {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the fleet seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> FleetConfig {
        self.seed = seed;
        self
    }

    /// Per-tenant access count at the configured scale.
    fn accesses(&self) -> u64 {
        if self.quick {
            300
        } else {
            1_500
        }
    }
}

/// Out-of-band control of a running fleet: the graceful-stop flag a
/// SIGINT handler raises, and the test-only simulated-kill hook.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// When raised, the run finishes the current epoch barrier,
    /// commits it (durable runs append a clean-stop marker), and
    /// returns partial output instead of dropping everything.
    pub stop: Arc<AtomicBool>,
    /// Test hook simulating a SIGKILL: halt — *without* a clean-stop
    /// marker — immediately after committing this epoch. Callers
    /// discard the report, exactly as a killed process would.
    pub halt_after: Option<u32>,
}

/// What one machine contributed to the population: its spec summary,
/// churn counters, and either a final report or a structured failure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineOutcome {
    /// Fleet-wide machine id.
    pub id: u32,
    /// Defense slate name.
    pub defense: String,
    /// Hardware class name.
    pub class: &'static str,
    /// DRAM generation name.
    pub gen: &'static str,
    /// Whether an attacker tenant was seeded.
    pub attacked: bool,
    /// Whether the machine ran the degraded-subset fault plan.
    pub faulty: bool,
    /// Tenants admitted from other machines.
    pub migrations_in: u32,
    /// Tenants emigrated to other machines.
    pub migrations_out: u32,
    /// Benign tenants created after build (ASID creates).
    pub tenants_created: u32,
    /// Benign tenants destroyed (ASID destroys).
    pub tenants_destroyed: u32,
    /// Final report (`None` when the machine failed).
    pub report: Option<SimReport>,
    /// The failure, if the machine errored, panicked, timed out, or
    /// was quarantined by a supervisor.
    pub failure: Option<CellFailure>,
}

/// Everything a fleet run produced, in machine-id order throughout —
/// the serialized form is byte-identical for any worker count.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// One outcome per machine, in id order.
    pub outcomes: Vec<MachineOutcome>,
    /// Population-level distributions per slate.
    pub stats: PopulationStats,
    /// Event trace of [`FleetConfig::trace_machine`] (empty
    /// otherwise).
    pub trace: Vec<TraceRecord>,
}

impl FleetReport {
    /// Machines that did not complete, in id order.
    pub fn failures(&self) -> impl Iterator<Item = (u32, &CellFailure)> {
        self.outcomes
            .iter()
            .filter_map(|o| o.failure.as_ref().map(|f| (o.id, f)))
    }

    /// `true` when at least one machine failed.
    pub fn has_failures(&self) -> bool {
        self.outcomes.iter().any(|o| o.failure.is_some())
    }
}

/// One live machine owned by a worker.
struct FleetMachine {
    spec: MachineSpec,
    scenario: CloudScenario,
    /// Churn/routing stream (forked from the spec stream, so shard-
    /// independent).
    rng: DetRng,
    /// Workload-shape stream, separate from routing so adding a churn
    /// decision never perturbs workload contents.
    wl_rng: DetRng,
    tracer: Option<Tracer>,
    /// Live benign tenants in admission order.
    benign: Vec<DomainId>,
    next_seq: u32,
    migrations_in: u32,
    migrations_out: u32,
    tenants_created: u32,
    tenants_destroyed: u32,
}

impl FleetMachine {
    fn build(spec: &MachineSpec, cfg: &FleetConfig) -> Result<FleetMachine> {
        let mut mc = spec.machine_config();
        let tracer = if cfg.trace_machine == Some(spec.id) {
            let t = Tracer::buffer();
            mc.tracer = Some(t.clone());
            Some(t)
        } else {
            None
        };
        let mut scenario = CloudScenario::build(mc)?;
        let rng = MachineSpec::stream(cfg.seed, spec.id, 0xc404);
        let mut wl_rng = MachineSpec::stream(cfg.seed, spec.id, 0x301d);
        let accesses = cfg.accesses();
        if spec.attacked {
            if cfg.attack_triples.is_empty() {
                // Attack mix mirrors the paper's methodologies: CPU
                // double-sided, many-sided (TRRespass-style), DMA.
                match wl_rng.below(3) {
                    0 => scenario.arm_double_sided(accesses)?,
                    1 => scenario.arm_many_sided(4, accesses)?,
                    _ => scenario.arm_dma(accesses)?,
                };
            } else {
                // Opt-in: attack-pipeline triples as tenant workloads.
                // The draw replaces the legacy mix draw on the same
                // stream, so machine populations stay deterministic.
                let pick = wl_rng.below(cfg.attack_triples.len() as u64) as usize;
                let spec_str = &cfg.attack_triples[pick];
                let triple = hammertime_attack::AttackSpec::parse(spec_str)?;
                hammertime_attack::arm_on_scenario(&triple, &mut scenario, accesses)?;
            }
        } else {
            // Unattacked machine: the "attacker" allocation is just
            // another benign tenant streaming over its own arena.
            let rows = scenario.machine.rows_of_domain(scenario.attacker);
            let arena: Vec<_> = rows.iter().flat_map(|(_, _, l)| l.clone()).collect();
            scenario.machine.set_workload(
                scenario.attacker,
                Box::new(StreamWorkload::new(arena, accesses / 2, 16)),
            )?;
        }
        scenario.victim_reads(accesses / 4)?;
        let mut fm = FleetMachine {
            spec: spec.clone(),
            scenario,
            rng,
            wl_rng,
            tracer,
            benign: Vec::new(),
            next_seq: 0,
            migrations_in: 0,
            migrations_out: 0,
            tenants_created: 0,
            tenants_destroyed: 0,
        };
        for _ in 0..spec.benign_tenants {
            fm.create_benign(cfg)?;
        }
        Ok(fm)
    }

    /// ASID create: a fresh fleet-unique domain with a benign workload
    /// drawn from the machine's workload stream.
    fn create_benign(&mut self, cfg: &FleetConfig) -> Result<()> {
        if self.next_seq >= TENANT_STRIDE {
            return Err(Error::Exhausted("tenant id space for machine".into()));
        }
        let domain = DomainId(TENANT_BASE + self.spec.id * TENANT_STRIDE + self.next_seq);
        self.next_seq += 1;
        let pages = 1 + self.wl_rng.below(2);
        let arena = self.scenario.machine.add_tenant(domain, pages)?;
        let accesses = cfg.accesses();
        let rng = self.wl_rng.fork(domain.0 as u64);
        let workload: Box<dyn Workload> = match self.wl_rng.below(3) {
            0 => Box::new(StreamWorkload::new(arena, accesses, 8)),
            1 => Box::new(RandomWorkload::new(arena, accesses, 0.2, rng)),
            _ => Box::new(ZipfianWorkload::new(arena, accesses, 0.99, rng)),
        };
        self.scenario.machine.set_workload(domain, workload)?;
        self.benign.push(domain);
        self.tenants_created += 1;
        Ok(())
    }

    /// One epoch: admit, churn, emigrate, run. Returns `(dest, src,
    /// export)` postings for the next epoch's mailbox.
    fn run_epoch(
        &mut self,
        cfg: &FleetConfig,
        inbox: Vec<(u32, TenantExport)>,
        total: u32,
    ) -> Result<Vec<(u32, u32, TenantExport)>> {
        // Admission in canonical (source id, domain) order — the
        // mailbox's arrival order is scheduling noise.
        for (_src, export) in inbox {
            let domain = export.domain;
            self.scenario.machine.admit_tenant(export)?;
            self.benign.push(domain);
            self.migrations_in += 1;
        }
        // ASID destroy: retire one benign tenant outright.
        if self.rng.chance(cfg.churn_chance) && self.benign.len() > 1 {
            let idx = self.rng.below(self.benign.len() as u64) as usize;
            let domain = self.benign.remove(idx);
            drop(self.scenario.machine.detach_tenant(domain)?);
            self.tenants_destroyed += 1;
        }
        // ASID create.
        if self.rng.chance(cfg.churn_chance) {
            self.create_benign(cfg)?;
        }
        // Emigration: detach one benign tenant and route it to a
        // deterministic destination.
        let mut out = Vec::new();
        if total > 1 && !self.benign.is_empty() && self.rng.chance(cfg.migration_chance) {
            let idx = self.rng.below(self.benign.len() as u64) as usize;
            let domain = self.benign.remove(idx);
            let export = self.scenario.machine.detach_tenant(domain)?;
            let dest = (self.spec.id + 1 + self.rng.below(total as u64 - 1) as u32) % total;
            out.push((dest, self.spec.id, export));
            self.migrations_out += 1;
        }
        self.scenario.run_windows(cfg.windows_per_epoch);
        Ok(out)
    }

    fn counters(&self) -> (u32, u32, u32, u32) {
        (
            self.migrations_in,
            self.migrations_out,
            self.tenants_created,
            self.tenants_destroyed,
        )
    }

    fn outcome(mut self) -> MachineOutcome {
        let report = self.scenario.report();
        MachineOutcome {
            id: self.spec.id,
            defense: self.spec.defense.name().to_string(),
            class: self.spec.class.name(),
            gen: self.spec.gen.name(),
            attacked: self.spec.attacked,
            faulty: self.spec.faults.is_some(),
            migrations_in: self.migrations_in,
            migrations_out: self.migrations_out,
            tenants_created: self.tenants_created,
            tenants_destroyed: self.tenants_destroyed,
            report: Some(report),
            failure: None,
        }
    }

    fn failed_outcome(
        spec: &MachineSpec,
        counters: (u32, u32, u32, u32),
        f: CellFailure,
    ) -> MachineOutcome {
        MachineOutcome {
            id: spec.id,
            defense: spec.defense.name().to_string(),
            class: spec.class.name(),
            gen: spec.gen.name(),
            attacked: spec.attacked,
            faulty: spec.faults.is_some(),
            migrations_in: counters.0,
            migrations_out: counters.1,
            tenants_created: counters.2,
            tenants_destroyed: counters.3,
            report: None,
            failure: Some(f),
        }
    }

    fn quarantined_outcome(
        spec: &MachineSpec,
        counters: (u32, u32, u32, u32),
        stage: u32,
        epochs_done: u32,
        cycle: u64,
    ) -> MachineOutcome {
        FleetMachine::failed_outcome(
            spec,
            counters,
            CellFailure {
                label: machine_label(spec),
                kind: FailureKind::Quarantined,
                message: format!(
                    "isolated by the supervisor after repeated worker crashes at stage {stage}"
                ),
                progress: Some(FailureProgress { epochs_done, cycle }),
            },
        )
    }
}

/// Machines a supervisor has isolated: machine id → first stage it no
/// longer executes (0 = never built, `e + 1` = dead from epoch `e`).
pub type QuarantineMap = BTreeMap<u32, u32>;

/// The per-shard simulation driver, shared by the in-process threaded
/// runner and the `fleet worker` subprocess: builds the shard's
/// machines and advances them stage by stage with explicit
/// inbox/outbox hand-off. The `hb` callback fires with `(machine,
/// stage)` *before* each machine executes a stage — the worker
/// protocol turns these into heartbeats so a supervisor can attribute
/// a crash to the machine that was running.
pub(crate) struct ShardSim<'a> {
    cfg: &'a FleetConfig,
    shard: &'a [MachineSpec],
    total: u32,
    machines: Vec<std::result::Result<FleetMachine, Box<MachineOutcome>>>,
}

impl<'a> ShardSim<'a> {
    /// Stage 0: builds every machine in the shard (quarantined-at-
    /// build machines become structured outcomes without building).
    pub(crate) fn build(
        cfg: &'a FleetConfig,
        shard: &'a [MachineSpec],
        total: u32,
        quarantine: &QuarantineMap,
        hb: &mut dyn FnMut(u32, u32),
    ) -> ShardSim<'a> {
        let machines = shard
            .iter()
            .map(|spec| {
                if quarantine.get(&spec.id) == Some(&0) {
                    return Err(Box::new(FleetMachine::quarantined_outcome(
                        spec,
                        (0, 0, 0, 0),
                        0,
                        0,
                        0,
                    )));
                }
                hb(spec.id, 0);
                let label = machine_label(spec);
                // Boxed Err: a failed machine's outcome record is ~10x
                // the size of the live-machine handle, and it rides
                // through every epoch match.
                run_budgeted(&label, cfg.step_budget, || FleetMachine::build(spec, cfg))
                    .map_err(|f| Box::new(FleetMachine::failed_outcome(spec, (0, 0, 0, 0), f)))
            })
            .collect();
        ShardSim {
            cfg,
            shard,
            total,
            machines,
        }
    }

    /// Stage `epoch + 1`: runs one epoch over the shard. `inbox_for`
    /// yields each machine's admissions in canonical order; the return
    /// value is the shard's postings for the next epoch.
    pub(crate) fn run_epoch(
        &mut self,
        epoch: u32,
        inbox_for: &mut dyn FnMut(u32) -> Vec<(u32, TenantExport)>,
        quarantine: &QuarantineMap,
        hb: &mut dyn FnMut(u32, u32),
    ) -> Vec<(u32, u32, TenantExport)> {
        let (cfg, total) = (self.cfg, self.total);
        let stage = epoch + 1;
        let mut out = Vec::new();
        for (spec, m) in self.shard.iter().zip(self.machines.iter_mut()) {
            // Drain the inbox even for dead machines so stale entries
            // never alias a future epoch's buffer; tenants migrated to
            // a dead machine are lost (counted nowhere — the dead
            // machine's failure record is the signal).
            let inbox = inbox_for(spec.id);
            if let Ok(fm) = m.as_mut() {
                if quarantine.get(&spec.id) == Some(&stage) {
                    let counters = fm.counters();
                    let cycle = fm.scenario.machine.now().raw();
                    *m = Err(Box::new(FleetMachine::quarantined_outcome(
                        spec, counters, stage, epoch, cycle,
                    )));
                    continue;
                }
            }
            let failure = match m {
                Err(_) => None,
                Ok(fm) => {
                    hb(spec.id, stage);
                    // The budget covers the whole machine lifetime:
                    // re-arm with what it has not yet consumed.
                    let remaining = cfg
                        .step_budget
                        .map(|b| b.saturating_sub(fm.scenario.machine.now().raw()));
                    let label = machine_label(spec);
                    match run_budgeted(&label, remaining, || fm.run_epoch(cfg, inbox, total)) {
                        Ok(posts) => {
                            out.extend(posts);
                            None
                        }
                        Err(f) => Some(f),
                    }
                }
            };
            if let Some(mut f) = failure {
                let (counters, cycle) = match m {
                    Ok(fm) => (fm.counters(), fm.scenario.machine.now().raw()),
                    Err(_) => ((0, 0, 0, 0), 0),
                };
                // Outcome attribution: how far the machine got before
                // dying, in epochs and simulated cycles.
                f.progress = Some(FailureProgress {
                    epochs_done: epoch,
                    cycle,
                });
                *m = Err(Box::new(FleetMachine::failed_outcome(spec, counters, f)));
            }
        }
        out
    }

    /// Tears the shard down into final outcomes plus the traced
    /// machine's records (empty unless this shard owns it).
    pub(crate) fn finish(self) -> (Vec<MachineOutcome>, Vec<TraceRecord>) {
        let mut outcomes = Vec::with_capacity(self.machines.len());
        let mut trace = Vec::new();
        for m in self.machines {
            outcomes.push(match m {
                Ok(mut fm) => {
                    let tracer = fm.tracer.take();
                    // Report first, then drain: the report's snapshot
                    // registers final metrics into the tracer, so the
                    // drained record stream is complete.
                    let out = fm.outcome();
                    if let Some(tracer) = tracer {
                        trace = tracer.take_records();
                    }
                    out
                }
                Err(outcome) => *outcome,
            });
        }
        (outcomes, trace)
    }
}

/// The double-buffered migration mailbox: postings made during epoch
/// `e` (into buffer `(e + 1) % 2`) are delivered at the start of epoch
/// `e + 1`. Keyed by destination machine id; values carry the source
/// id so admission can sort canonically.
type Mailbox = Mutex<BTreeMap<u32, Vec<(u32, TenantExport)>>>;

fn post(mailbox: &Mailbox, items: Vec<(u32, u32, TenantExport)>) {
    if items.is_empty() {
        return;
    }
    let mut box_ = mailbox.lock().expect("mailbox poisoned");
    for (dest, src, export) in items {
        box_.entry(dest).or_default().push((src, export));
    }
}

fn take_inbox(mailbox: &Mailbox, id: u32) -> Vec<(u32, TenantExport)> {
    let mut items = mailbox
        .lock()
        .expect("mailbox poisoned")
        .remove(&id)
        .unwrap_or_default();
    // Canonical admission order: source machine id, then domain id
    // (one source can emigrate at most one tenant per epoch today,
    // but the domain tiebreak keeps the contract future-proof).
    items.sort_by_key(|(src, e)| (*src, e.domain.0));
    items
}

/// Serializes the whole mailbox buffer in canonical `(dest, src,
/// domain)` order without consuming it — the journal's view of an
/// epoch. Only called while every worker is parked between the two
/// epoch barriers.
fn snapshot_mailbox(mailbox: &Mailbox) -> Result<Vec<WirePosting>> {
    let map = mailbox.lock().expect("mailbox poisoned");
    let mut postings = Vec::new();
    for (&dest, items) in map.iter() {
        let mut refs: Vec<&(u32, TenantExport)> = items.iter().collect();
        refs.sort_by_key(|(src, e)| (*src, e.domain.0));
        for (src, export) in refs {
            postings.push(WirePosting::capture(dest, *src, export)?);
        }
    }
    Ok(postings)
}

/// Runs the fleet and reduces it to a [`FleetReport`].
///
/// Determinism contract: the returned report — outcomes, population
/// stats, metrics, trace — is **byte-identical for any `jobs`**,
/// because every decision is drawn from id-keyed RNG streams, epochs
/// are barrier-separated, mailbox admission is canonically sorted,
/// and outcomes are collected in machine-id order.
///
/// # Errors
///
/// Construction errors of the run itself (an empty fleet). Per-machine
/// errors, panics, and budget exhaustions never abort the run: they
/// become structured [`MachineOutcome::failure`] records while every
/// sibling machine completes.
pub fn run_fleet(cfg: &FleetConfig) -> Result<FleetReport> {
    run_fleet_controlled(cfg, &RunControl::default(), None).map(|(report, _)| report)
}

/// [`run_fleet`] with out-of-band control and optional durability:
/// `durable` journals each committed epoch (validating against any
/// already-committed prefix, which is how `--resume` re-simulates
/// safely). Returns the report plus whether the run **completed** all
/// epochs (`false` after a graceful stop or a simulated kill — the
/// report then holds partial tables).
pub fn run_fleet_controlled(
    cfg: &FleetConfig,
    control: &RunControl,
    durable: Option<&mut DurableRun>,
) -> Result<(FleetReport, bool)> {
    if cfg.machines == 0 {
        return Err(Error::Config("fleet needs at least one machine".into()));
    }
    let specs = synthesize(cfg);
    let total = specs.len() as u32;
    let jobs = cfg.jobs.clamp(1, specs.len());
    let mailboxes: [Mailbox; 2] = [Mutex::new(BTreeMap::new()), Mutex::new(BTreeMap::new())];
    let slots: Vec<Mutex<Option<MachineOutcome>>> =
        specs.iter().map(|_| Mutex::new(None)).collect();
    let trace_slot: Mutex<Vec<TraceRecord>> = Mutex::new(Vec::new());

    // Quarantine decisions recovered from the journal must keep
    // holding on resume, or a resumed run would diverge from the
    // supervised run that wrote them.
    let quarantine: QuarantineMap = durable
        .as_ref()
        .map(|d| {
            d.quarantined()
                .iter()
                .map(|ev| (ev.machine, ev.stage))
                .collect()
        })
        .unwrap_or_default();

    // Leader-journaling shared state: the leader commits between the
    // two epoch barriers and publishes halt/error to every worker.
    let durable_slot: Mutex<Option<&mut DurableRun>> = Mutex::new(durable);
    let journal_err: Mutex<Option<Error>> = Mutex::new(None);
    let halted = AtomicBool::new(false);

    // Contiguous shards: worker w owns machines [w*chunk ..
    // min((w+1)*chunk, n)). Rounding can leave fewer (non-empty)
    // shards than `jobs`; the barrier must count actual workers.
    let chunk = specs.len().div_ceil(jobs);
    let shards: Vec<&[MachineSpec]> = specs.chunks(chunk).collect();
    let barrier = Barrier::new(shards.len());
    std::thread::scope(|scope| {
        for shard in &shards {
            let (mailboxes, barrier, slots, trace_slot) =
                (&mailboxes, &barrier, &slots, &trace_slot);
            let (quarantine, durable_slot, journal_err, halted) =
                (&quarantine, &durable_slot, &journal_err, &halted);
            scope.spawn(move || {
                let mut sim = ShardSim::build(cfg, shard, total, quarantine, &mut |_, _| {});
                for epoch in 0..cfg.epochs {
                    let inbox_buf = &mailboxes[(epoch % 2) as usize];
                    let outbox_buf = &mailboxes[((epoch + 1) % 2) as usize];
                    let outbox = sim.run_epoch(
                        epoch,
                        &mut |id| take_inbox(inbox_buf, id),
                        quarantine,
                        &mut |_, _| {},
                    );
                    post(outbox_buf, outbox);
                    if barrier.wait().is_leader() {
                        // Epoch-commit critical section: every other
                        // worker is parked in the second wait.
                        let mut durable = durable_slot.lock().expect("durable slot");
                        if let Some(d) = durable.as_mut() {
                            let committed = snapshot_mailbox(outbox_buf)
                                .and_then(|postings| d.record_or_validate(epoch, &postings));
                            if let Err(e) = committed {
                                *journal_err.lock().expect("err slot") = Some(e);
                                halted.store(true, Ordering::SeqCst);
                            }
                        }
                        if control.halt_after == Some(epoch) {
                            halted.store(true, Ordering::SeqCst);
                        } else if control.stop.load(Ordering::SeqCst) {
                            if let Some(d) = durable.as_mut() {
                                if let Err(e) = d.mark_clean_stop() {
                                    *journal_err.lock().expect("err slot") = Some(e);
                                }
                            }
                            halted.store(true, Ordering::SeqCst);
                        }
                    }
                    barrier.wait();
                    if halted.load(Ordering::SeqCst) {
                        break;
                    }
                }
                let (outcomes, trace) = sim.finish();
                if !trace.is_empty() {
                    *trace_slot.lock().expect("trace slot poisoned") = trace;
                }
                for outcome in outcomes {
                    let id = outcome.id as usize;
                    *slots[id].lock().expect("outcome slot poisoned") = Some(outcome);
                }
            });
        }
    });

    if let Some(e) = journal_err.into_inner().expect("err slot poisoned") {
        return Err(e);
    }

    let mut outcomes: Vec<MachineOutcome> = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("outcome slot poisoned")
                .expect("every machine produces an outcome")
        })
        .collect();
    outcomes.sort_by_key(|o| o.id);
    let stats = fold(&outcomes);
    let completed = !halted.load(Ordering::SeqCst);
    Ok((
        FleetReport {
            trace: trace_slot.into_inner().expect("trace slot poisoned"),
            outcomes,
            stats,
        },
        completed,
    ))
}

/// Display label: `machine-0042/<defense>`.
pub(crate) fn machine_label(spec: &MachineSpec) -> String {
    format!("machine-{:04}/{}", spec.id, spec.defense.name())
}
