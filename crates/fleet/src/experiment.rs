//! The FL experiment family: population tables from fleet runs.
//!
//! FL1 runs one mini-fleet per defense slate (same fleet seed, so the
//! machine population — classes, generations, attackers, workloads —
//! is identical across slates and the rows differ only in the
//! defense) and reports each slate's flip-rate and overhead
//! distribution as one row of the population table.

use hammertime::experiments::{
    run_suite, run_suite_traced, silent, Cell, CellCtx, Experiment, RunOptions, SuiteReport,
};
use hammertime_common::Result;
use hammertime_telemetry::TraceRecord;

use crate::shard::{run_fleet, FleetConfig};
use crate::stats::{population_row, POPULATION_COLUMNS};

/// Machines per slate in the FL1 mini-fleets.
fn fleet_size(quick: bool) -> u32 {
    if quick {
        24
    } else {
        96
    }
}

/// **FL1**: per-slate population distributions — flip rate, defense
/// overhead, and tenant throughput percentiles over a heterogeneous
/// machine fleet with tenant churn and migration.
pub struct Fl1;

/// Registry instance.
pub static FL1: Fl1 = Fl1;

impl Experiment for Fl1 {
    fn id(&self) -> &'static str {
        "FL1"
    }

    fn title(&self) -> &'static str {
        "Fleet population: per-slate flip-rate and overhead distributions"
    }

    fn columns(&self) -> &'static [&'static str] {
        POPULATION_COLUMNS
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        FleetConfig::default_slates()
            .into_iter()
            .map(|slate| {
                Cell::new(format!("fleet/{}", slate.name()), move || {
                    let mut cfg = FleetConfig::new(fleet_size(ctx.quick));
                    cfg.quick = ctx.quick;
                    cfg.slates = vec![slate];
                    cfg.faults = ctx.faults;
                    // Cells already run on suite workers; keep each
                    // mini-fleet serial, and let the cell's ambient
                    // step budget (if any) cover the whole fleet.
                    cfg.jobs = 1;
                    cfg.step_budget = None;
                    let report = run_fleet(&cfg)?;
                    let rows = report
                        .stats
                        .slates
                        .iter()
                        .map(|(name, s)| population_row(name, s))
                        .collect();
                    Ok(rows)
                })
            })
            .collect()
    }
}

/// The fleet crate's own experiments, in report order.
pub fn registry() -> Vec<&'static dyn Experiment> {
    vec![&FL1]
}

/// The combined registry: every core experiment, then the attack
/// pipeline's A family, then the FL family. The CLI and the golden
/// suite run this one, so `--filter A1`/`--filter FL1` and
/// `tests/golden/A1.txt`/`FL1.txt` work alongside the core ids.
pub fn full_registry() -> Vec<&'static dyn Experiment> {
    let mut all = hammertime::experiments::registry();
    all.extend(hammertime_attack::experiment::registry());
    all.extend(registry());
    all
}

/// Runs the combined registry under the given options.
pub fn run_all_with(opts: &RunOptions) -> Result<SuiteReport> {
    run_suite(&full_registry(), opts, &silent)
}

/// Runs the combined registry while recording the machine event
/// trace (byte-identical for any worker count, like the tables).
pub fn run_all_traced(opts: &RunOptions) -> Result<(SuiteReport, Vec<TraceRecord>)> {
    run_suite_traced(&full_registry(), opts, &silent)
}
