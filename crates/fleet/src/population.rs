//! Population synthesis: from one fleet seed to thousands of
//! heterogeneous machine specifications.
//!
//! The seed-forking tree keeps specs independent of sharding: machine
//! `i`'s stream is `DetRng::new(fleet_seed).fork(i + 1)` — a *fresh*
//! parent per machine, so the stream depends only on `(fleet_seed, i)`
//! and never on how many workers exist or in what order machines are
//! built. Everything downstream (the machine's own RNG, its churn
//! scheduler, its workload mixes) forks from that per-machine stream.

use hammertime::machine::MachineConfig;
use hammertime::taxonomy::DefenseKind;
use hammertime_cache::CacheConfig;
use hammertime_common::{DetRng, FaultPlan, Geometry};
use hammertime_dram::TimingParams;

use crate::shard::FleetConfig;

/// Hardware class of a machine: DRAM organization and cache shape.
/// The fleet mixes classes so population statistics cover
/// heterogeneous geometries, not one canonical box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineClass {
    /// Small embedded-style part: 2 banks, 64-row subarrays.
    Compact,
    /// The canonical fast-experiment machine (64 MiB medium geometry).
    Standard,
    /// A larger part: 8 deep subarrays per bank, wide rows.
    Dense,
}

impl MachineClass {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MachineClass::Compact => "compact",
            MachineClass::Standard => "standard",
            MachineClass::Dense => "dense",
        }
    }

    /// The class's DRAM geometry (all counts powers of two, as the
    /// bit-sliced address maps require).
    pub fn geometry(&self) -> Geometry {
        match self {
            MachineClass::Compact => Geometry {
                channels: 1,
                ranks: 1,
                bank_groups: 1,
                banks_per_group: 2,
                subarrays_per_bank: 2,
                rows_per_subarray: 64,
                columns: 16,
            },
            MachineClass::Standard => Geometry::medium(),
            MachineClass::Dense => Geometry {
                channels: 1,
                ranks: 1,
                bank_groups: 2,
                banks_per_group: 2,
                subarrays_per_bank: 8,
                rows_per_subarray: 128,
                columns: 64,
            },
        }
    }
}

/// DRAM generation of a machine: the worsening-Rowhammer trend (§3)
/// expressed as a falling MAC on the compressed fast scale, plus the
/// generation's (compressed) refresh cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramGen {
    /// Early DDR3-era part: high MAC.
    Ddr3,
    /// DDR4-era part.
    Ddr4,
    /// LPDDR4-era part (faster refresh cadence in the compressed
    /// model: `tiny_test` windows are 10x shorter than `tiny_wide`).
    Lpddr4,
    /// Projected future node: lowest MAC.
    Future,
}

impl DramGen {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DramGen::Ddr3 => "ddr3",
            DramGen::Ddr4 => "ddr4",
            DramGen::Lpddr4 => "lpddr4",
            DramGen::Future => "future",
        }
    }

    /// Maximum activation count on the compressed fast scale,
    /// mirroring the generational trend E1 sweeps.
    pub fn mac(&self) -> u64 {
        match self {
            DramGen::Ddr3 => 96,
            DramGen::Ddr4 => 48,
            DramGen::Lpddr4 => 24,
            DramGen::Future => 12,
        }
    }

    /// Compressed timing parameters for the generation.
    pub fn timing(&self) -> TimingParams {
        match self {
            DramGen::Lpddr4 => TimingParams::tiny_test(),
            _ => TimingParams::tiny_wide(),
        }
    }
}

/// Everything needed to build one fleet machine deterministically.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Fleet-wide machine id (`0..machines`).
    pub id: u32,
    /// The machine's own seed, drawn from its forked spec stream.
    pub seed: u64,
    /// Hardware class.
    pub class: MachineClass,
    /// DRAM generation.
    pub gen: DramGen,
    /// Defense slate deployed on this machine.
    pub defense: DefenseKind,
    /// Whether an attacker tenant hammers this machine.
    pub attacked: bool,
    /// Fault plan for the canonical degraded subset (`None` =
    /// healthy).
    pub faults: Option<FaultPlan>,
    /// Benign tenants seeded at build time (more churn in and out
    /// later).
    pub benign_tenants: u32,
}

impl MachineSpec {
    /// The machine config this spec describes: the canonical fast
    /// scale specialized by class, generation, slate, and seed.
    pub fn machine_config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::fast(self.defense, self.gen.mac());
        cfg.geometry = self.class.geometry();
        cfg.cache = CacheConfig::small_test();
        cfg.timing = self.gen.timing();
        cfg.seed = self.seed;
        cfg.faults = self.faults;
        cfg
    }

    /// The spec's private RNG stream, forked fresh from the fleet
    /// seed (see the module docs for why this is shard-independent).
    /// `salt` separates consumers: spec synthesis, the churn
    /// scheduler, and workload generation each get their own stream.
    pub fn stream(fleet_seed: u64, id: u32, salt: u64) -> DetRng {
        DetRng::new(fleet_seed).fork(id as u64 + 1).fork(salt)
    }
}

/// Deterministic fault-plan subset: every fourth machine (phase 1) of
/// a degraded fleet runs the plan. Documented here because the
/// differential suite pins it: the subset must be a pure function of
/// the machine id.
pub fn is_faulty_machine(id: u32) -> bool {
    id % 4 == 1
}

/// Synthesizes the whole population from the fleet config. Pure:
/// depends only on `(cfg.seed, cfg.machines, cfg.slates, cfg.faults,
/// cfg.tenants, cfg.attack_fraction)` — never on worker count.
pub fn synthesize(cfg: &FleetConfig) -> Vec<MachineSpec> {
    assert!(!cfg.slates.is_empty(), "fleet needs at least one slate");
    (0..cfg.machines)
        .map(|id| {
            let mut rng = MachineSpec::stream(cfg.seed, id, 0x5bec);
            let seed = rng.next_u64();
            let class = match rng.below(8) {
                0..=2 => MachineClass::Compact,
                3..=6 => MachineClass::Standard,
                _ => MachineClass::Dense,
            };
            let gen = match rng.below(4) {
                0 => DramGen::Ddr3,
                1 => DramGen::Ddr4,
                2 => DramGen::Lpddr4,
                _ => DramGen::Future,
            };
            // Round-robin slates so every slate's percentile pool has
            // a near-equal machine count.
            let defense = cfg.slates[id as usize % cfg.slates.len()];
            let attacked = rng.chance(cfg.attack_fraction);
            let faults = cfg.faults.filter(|_| is_faulty_machine(id));
            let benign_tenants = cfg.tenants.max(1) + rng.below(2) as u32;
            MachineSpec {
                id,
                seed,
                class,
                gen,
                defense,
                attacked,
                faults,
                benign_tenants,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic_and_id_keyed() {
        let cfg = FleetConfig::new(16);
        let a = synthesize(&cfg);
        let b = synthesize(&cfg);
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.class, y.class);
            assert_eq!(x.attacked, y.attacked);
        }
        // Growing the fleet must not disturb existing machines: spec i
        // is a function of (seed, i) alone.
        let mut big = FleetConfig::new(32);
        big.seed = cfg.seed;
        let c = synthesize(&big);
        for (x, y) in a.iter().zip(&c) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.class, y.class);
        }
    }

    #[test]
    fn class_geometries_validate() {
        for class in [
            MachineClass::Compact,
            MachineClass::Standard,
            MachineClass::Dense,
        ] {
            class.geometry().validate().unwrap();
        }
    }

    #[test]
    fn slates_rotate_round_robin() {
        let cfg = FleetConfig::new(8);
        let specs = synthesize(&cfg);
        let n = cfg.slates.len();
        for s in &specs {
            assert_eq!(s.defense, cfg.slates[s.id as usize % n]);
        }
    }
}
