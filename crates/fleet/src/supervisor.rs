//! The shard supervisor: drives `fleet worker` child processes over
//! the [`worker`](crate::worker) pipe protocol and keeps the fleet
//! run alive through worker crashes and hangs.
//!
//! # Supervision model
//!
//! Each worker owns a contiguous machine shard and advances in
//! lockstep stages (build, then one stage per epoch, then finish).
//! The supervisor:
//!
//! - reads every worker's pipe on a dedicated thread that funnels
//!   messages into one event channel;
//! - treats pipe EOF as a **crash** and a missed heartbeat deadline
//!   as a **hang** (the worker is killed), then restarts the worker
//!   with capped exponential backoff and replays the epochs it had
//!   already completed (cheap: epochs are deterministic, and the
//!   replayed outboxes are validated against the merged postings the
//!   supervisor already holds);
//! - attributes each death to the machine named by the worker's last
//!   heartbeat, and after [`SuperviseOpts::quarantine_after`]
//!   consecutive deaths on the *same* suspect isolates that machine:
//!   it becomes a structured `Quarantined` outcome row while every
//!   sibling machine keeps running;
//! - gives up with a structured error once the fleet-wide restart
//!   budget is exhausted (a supervisor that restarts forever is
//!   worse than one that reports).
//!
//! With a [`DurableRun`] attached, each merged epoch is journaled
//! exactly as the in-process runner would have written it — the two
//! runners produce interchangeable journals, and a supervised run can
//! be resumed in-process (or vice versa).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use hammertime_common::{Error, Result};
use hammertime_telemetry::TraceRecord;

use crate::durable::{DurableRun, QuarantineEvent};
use crate::population::synthesize;
use crate::shard::{FleetConfig, FleetReport, MachineOutcome, QuarantineMap, RunControl};
use crate::stats::fold;
use crate::wire::{sort_canonical, WirePosting};
use crate::worker::{FromWorker, ToWorker};

/// Supervision policy knobs.
#[derive(Debug, Clone)]
pub struct SuperviseOpts {
    /// Worker processes (clamped to the machine count).
    pub workers: usize,
    /// Consecutive crashes attributed to the same machine before it
    /// is quarantined.
    pub quarantine_after: u32,
    /// A worker silent for this long is declared hung and killed.
    pub hb_timeout: Duration,
    /// First restart delay; doubles per consecutive restart of the
    /// same worker.
    pub backoff_base: Duration,
    /// Restart delay ceiling.
    pub backoff_cap: Duration,
    /// Fleet-wide restart budget; exceeding it aborts the run with a
    /// structured error.
    pub max_restarts: u32,
    /// Command line that starts one worker speaking the pipe protocol
    /// on stdin/stdout (normally `[current_exe, "fleet", "worker"]`).
    pub worker_cmd: Vec<String>,
}

impl SuperviseOpts {
    /// Defaults tuned for CI-scale fleets: 2 workers, quarantine
    /// after 3 strikes, 10 s heartbeat timeout, 50 ms → 2 s backoff,
    /// 32 restarts fleet-wide.
    pub fn new(worker_cmd: Vec<String>) -> SuperviseOpts {
        SuperviseOpts {
            workers: 2,
            quarantine_after: 3,
            hb_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            max_restarts: 32,
            worker_cmd,
        }
    }
}

enum Event {
    Msg(FromWorker),
    Gone,
}

/// What the current drive loop is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Goal {
    /// Every worker built its shard (`Ready`).
    Build,
    /// Every worker completed this epoch (`EpochDone`).
    Epoch(u32),
    /// Every worker reported outcomes (`Done`).
    Finish,
}

struct Slot {
    shard_start: u32,
    shard_len: u32,
    child: Option<(Child, ChildStdin)>,
    /// Incarnation counter; events from dead incarnations are stale.
    gen: u64,
    /// Next stage this worker must complete: 0 = build, `e + 1` =
    /// epoch `e`, past-the-last-epoch = finish.
    stage: u32,
    /// Whether the message for `stage` has been written.
    sent: bool,
    last_hb: Option<(u32, u32)>,
    last_activity: Instant,
    /// Suspect carried across consecutive crashes of this worker.
    prev_suspect: Option<(u32, u32)>,
    crash_streak: u32,
    /// Consecutive restarts since the last completed goal stage;
    /// drives the exponential backoff.
    backoff_level: u32,
    outbox: Option<Vec<WirePosting>>,
    done: Option<(Vec<MachineOutcome>, Vec<TraceRecord>)>,
}

struct Supervisor<'a> {
    cfg: &'a FleetConfig,
    opts: &'a SuperviseOpts,
    durable: Option<&'a mut DurableRun>,
    quarantine: QuarantineMap,
    /// Merged canonical postings per committed epoch — the replay
    /// source for restarted workers and the journal payload.
    postings_by_epoch: Vec<Vec<WirePosting>>,
    slots: Vec<Slot>,
    tx: mpsc::Sender<(usize, u64, Event)>,
    rx: mpsc::Receiver<(usize, u64, Event)>,
    restarts: u32,
}

impl Drop for Supervisor<'_> {
    fn drop(&mut self) {
        // An early error return must not leak live children.
        for slot in &mut self.slots {
            if let Some((mut child, stdin)) = slot.child.take() {
                drop(stdin);
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

impl<'a> Supervisor<'a> {
    fn spawn(&mut self, widx: usize) -> Result<()> {
        let cmd = &self.opts.worker_cmd;
        if cmd.is_empty() {
            return Err(Error::Config("supervisor worker command is empty".into()));
        }
        let mut child = Command::new(&cmd[0])
            .args(&cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| Error::Config(format!("spawn worker `{}`: {e}", cmd[0])))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let slot = &mut self.slots[widx];
        let (gen, tx) = (slot.gen, self.tx.clone());
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                // Garbage on the pipe means the worker is insane;
                // fall through to Gone and let supervision restart it.
                let Ok(msg) = serde_json::from_str::<FromWorker>(&line) else {
                    break;
                };
                if tx.send((widx, gen, Event::Msg(msg))).is_err() {
                    return;
                }
            }
            let _ = tx.send((widx, gen, Event::Gone));
        });
        slot.child = Some((child, stdin));
        slot.stage = 0;
        slot.sent = false;
        slot.last_hb = None;
        slot.last_activity = Instant::now();
        slot.outbox = None;
        slot.done = None;
        Ok(())
    }

    fn complete(&self, widx: usize, goal: Goal) -> bool {
        let slot = &self.slots[widx];
        match goal {
            Goal::Build => slot.stage >= 1,
            Goal::Epoch(e) => slot.stage >= e + 2,
            Goal::Finish => slot.done.is_some(),
        }
    }

    /// Postings destined for this worker's shard at epoch `epoch`.
    fn inbox_for(&self, widx: usize, epoch: u32) -> Vec<WirePosting> {
        if epoch == 0 {
            return Vec::new();
        }
        let slot = &self.slots[widx];
        let (lo, hi) = (slot.shard_start, slot.shard_start + slot.shard_len);
        self.postings_by_epoch[(epoch - 1) as usize]
            .iter()
            .filter(|p| p.dest >= lo && p.dest < hi)
            .cloned()
            .collect()
    }

    /// Writes the message for the worker's current stage. `Ok(false)`
    /// means the pipe is broken (the worker died under our pen).
    fn send_stage(&mut self, widx: usize, goal: Goal) -> bool {
        let msg = {
            let slot = &self.slots[widx];
            if slot.stage == 0 {
                ToWorker::Hello {
                    cfg: self.cfg.clone(),
                    shard_start: slot.shard_start,
                    shard_len: slot.shard_len,
                    quarantine: self
                        .quarantine
                        .iter()
                        .map(|(&machine, &stage)| QuarantineEvent { machine, stage })
                        .collect(),
                }
            } else {
                let epoch = slot.stage - 1;
                let replayable = self.postings_by_epoch.len() as u32;
                let current = matches!(goal, Goal::Epoch(e) if e == epoch);
                if epoch < replayable || current {
                    ToWorker::Epoch {
                        epoch,
                        inbox: self.inbox_for(widx, epoch),
                    }
                } else {
                    ToWorker::Finish
                }
            }
        };
        let line = serde_json::to_string(&msg).expect("protocol message serializes");
        let slot = &mut self.slots[widx];
        let ok = match slot.child.as_mut() {
            Some((_, stdin)) => stdin
                .write_all(line.as_bytes())
                .and_then(|()| stdin.write_all(b"\n"))
                .and_then(|()| stdin.flush())
                .is_ok(),
            None => false,
        };
        if ok {
            slot.sent = true;
            slot.last_activity = Instant::now();
        }
        ok
    }

    /// Handles a worker death (crash or killed hang): attributes it
    /// to the last-heartbeat suspect, quarantines a serial offender,
    /// sleeps the backoff, and respawns.
    fn handle_death(&mut self, widx: usize) -> Result<()> {
        {
            let slot = &mut self.slots[widx];
            if let Some((mut child, stdin)) = slot.child.take() {
                drop(stdin);
                let _ = child.kill();
                let _ = child.wait();
            }
            slot.gen += 1;
        }
        self.restarts += 1;
        if self.restarts > self.opts.max_restarts {
            return Err(Error::Config(format!(
                "fleet supervisor exhausted its restart budget \
                 ({} restarts); giving up",
                self.opts.max_restarts
            )));
        }
        let suspect = self.slots[widx].last_hb;
        {
            let slot = &mut self.slots[widx];
            if suspect.is_some() && suspect == slot.prev_suspect {
                slot.crash_streak += 1;
            } else {
                slot.prev_suspect = suspect;
                slot.crash_streak = u32::from(suspect.is_some());
            }
        }
        if let Some((machine, stage)) = suspect {
            if self.slots[widx].crash_streak >= self.opts.quarantine_after {
                self.quarantine.insert(machine, stage);
                if let Some(d) = self.durable.as_deref_mut() {
                    d.record_quarantine(QuarantineEvent { machine, stage })?;
                }
                let slot = &mut self.slots[widx];
                slot.prev_suspect = None;
                slot.crash_streak = 0;
            }
        }
        let level = self.slots[widx].backoff_level.min(10);
        self.slots[widx].backoff_level += 1;
        let backoff = self
            .opts
            .backoff_base
            .saturating_mul(1 << level)
            .min(self.opts.backoff_cap);
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        self.spawn(widx)
    }

    /// Processes one worker message. `Ok(false)` flags a protocol
    /// violation — the caller treats the worker as crashed.
    fn handle_msg(&mut self, widx: usize, msg: FromWorker, goal: Goal) -> Result<bool> {
        self.slots[widx].last_activity = Instant::now();
        match msg {
            FromWorker::Hb { machine, stage } => {
                self.slots[widx].last_hb = Some((machine, stage));
            }
            FromWorker::Ready => {
                let slot = &mut self.slots[widx];
                if slot.stage != 0 {
                    return Ok(false);
                }
                slot.stage = 1;
                slot.sent = false;
                if goal == Goal::Build {
                    slot.backoff_level = 0;
                }
            }
            FromWorker::EpochDone { epoch, outbox } => {
                if self.slots[widx].stage != epoch + 1 {
                    return Ok(false);
                }
                if (epoch as usize) < self.postings_by_epoch.len() {
                    // Replay after a restart: the shard must re-derive
                    // exactly what the fleet already committed. A
                    // mismatch is a determinism violation — restarting
                    // would re-derive the same wrong answer.
                    let slot = &self.slots[widx];
                    let (lo, hi) = (slot.shard_start, slot.shard_start + slot.shard_len);
                    let expect: Vec<&WirePosting> = self.postings_by_epoch[epoch as usize]
                        .iter()
                        .filter(|p| p.src >= lo && p.src < hi)
                        .collect();
                    if expect.len() != outbox.len()
                        || expect.iter().zip(outbox.iter()).any(|(a, b)| **a != *b)
                    {
                        return Err(Error::Config(format!(
                            "worker {widx} replayed epoch {epoch} but produced \
                             postings that diverge from the committed fleet \
                             history — determinism violation"
                        )));
                    }
                } else {
                    self.slots[widx].outbox = Some(outbox);
                    self.slots[widx].backoff_level = 0;
                }
                let slot = &mut self.slots[widx];
                slot.stage = epoch + 2;
                slot.sent = false;
            }
            FromWorker::Done { outcomes, trace } => {
                if goal != Goal::Finish {
                    return Ok(false);
                }
                let slot = &mut self.slots[widx];
                slot.done = Some((outcomes, trace));
                slot.backoff_level = 0;
                // Retire this incarnation: the worker exits by itself
                // now, and its EOF must not read as a crash.
                slot.gen += 1;
                if let Some((mut child, stdin)) = slot.child.take() {
                    drop(stdin);
                    let _ = child.wait();
                }
            }
        }
        Ok(true)
    }

    /// Drives every worker to `goal`, supervising the whole way.
    fn drive(&mut self, goal: Goal) -> Result<()> {
        loop {
            for widx in 0..self.slots.len() {
                if self.complete(widx, goal) || self.slots[widx].sent {
                    continue;
                }
                if !self.send_stage(widx, goal) {
                    self.handle_death(widx)?;
                }
            }
            if (0..self.slots.len()).all(|w| self.complete(w, goal)) {
                return Ok(());
            }
            let now = Instant::now();
            let deadline = self
                .slots
                .iter()
                .enumerate()
                .filter(|(w, _)| !self.complete(*w, goal))
                .map(|(_, s)| s.last_activity + self.opts.hb_timeout)
                .min()
                .expect("at least one pending worker");
            match self
                .rx
                .recv_timeout(deadline.saturating_duration_since(now))
            {
                Ok((widx, gen, _)) if gen != self.slots[widx].gen => {} // stale
                Ok((widx, _, Event::Gone)) => self.handle_death(widx)?,
                Ok((widx, _, Event::Msg(msg))) => {
                    if !self.handle_msg(widx, msg, goal)? {
                        self.handle_death(widx)?;
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    let now = Instant::now();
                    for widx in 0..self.slots.len() {
                        if !self.complete(widx, goal)
                            && self.slots[widx].last_activity + self.opts.hb_timeout <= now
                        {
                            // Hung: no message and no heartbeat inside
                            // the window. Kill and restart.
                            self.handle_death(widx)?;
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(Error::Config(
                        "supervisor event channel closed unexpectedly".into(),
                    ));
                }
            }
        }
    }
}

/// Runs the fleet under a multi-process supervisor and reduces it to
/// the same [`FleetReport`] the in-process runner produces — for a
/// healthy fleet the two are byte-identical.
///
/// `durable` journals each merged epoch (and quarantine decisions);
/// on resume the already-committed prefix is validated, not trusted.
/// `control` carries the graceful-stop flag: after the epoch in
/// flight commits, workers are told to finish early and the report
/// holds partial tables (`Ok((report, false))`).
///
/// # Errors
///
/// Spawn failures, an exhausted restart budget, journal validation
/// failures, and replay determinism violations. Per-machine failures
/// and quarantines never abort the run: they become structured
/// outcome rows while sibling machines complete.
pub fn run_supervised(
    cfg: &FleetConfig,
    opts: &SuperviseOpts,
    durable: Option<&mut DurableRun>,
    control: &RunControl,
) -> Result<(FleetReport, bool)> {
    if cfg.machines == 0 {
        return Err(Error::Config("fleet needs at least one machine".into()));
    }
    let specs = synthesize(cfg);
    let total = specs.len() as u32;
    let workers = opts.workers.clamp(1, specs.len());
    let chunk = specs.len().div_ceil(workers) as u32;

    let quarantine: QuarantineMap = durable
        .as_ref()
        .map(|d| {
            d.quarantined()
                .iter()
                .map(|ev| (ev.machine, ev.stage))
                .collect()
        })
        .unwrap_or_default();

    let (tx, rx) = mpsc::channel();
    let mut slots = Vec::new();
    let mut start = 0u32;
    while start < total {
        let len = chunk.min(total - start);
        slots.push(Slot {
            shard_start: start,
            shard_len: len,
            child: None,
            gen: 0,
            stage: 0,
            sent: false,
            last_hb: None,
            last_activity: Instant::now(),
            prev_suspect: None,
            crash_streak: 0,
            backoff_level: 0,
            outbox: None,
            done: None,
        });
        start += len;
    }

    let mut sup = Supervisor {
        cfg,
        opts,
        durable,
        quarantine,
        postings_by_epoch: Vec::new(),
        slots,
        tx,
        rx,
        restarts: 0,
    };
    for widx in 0..sup.slots.len() {
        sup.spawn(widx)?;
    }

    sup.drive(Goal::Build)?;
    let mut halted = false;
    for epoch in 0..cfg.epochs {
        sup.drive(Goal::Epoch(epoch))?;
        let mut merged = Vec::new();
        for slot in &mut sup.slots {
            merged.extend(slot.outbox.take().expect("epoch outbox present"));
        }
        sort_canonical(&mut merged);
        if let Some(d) = sup.durable.as_deref_mut() {
            d.record_or_validate(epoch, &merged)?;
        }
        sup.postings_by_epoch.push(merged);
        if control.halt_after == Some(epoch) {
            halted = true;
            break;
        }
        if control.stop.load(Ordering::SeqCst) {
            if let Some(d) = sup.durable.as_deref_mut() {
                d.mark_clean_stop()?;
            }
            halted = true;
            break;
        }
    }
    sup.drive(Goal::Finish)?;

    let mut outcomes: Vec<MachineOutcome> = Vec::with_capacity(specs.len());
    let mut trace = Vec::new();
    let mut by_machine: BTreeMap<u32, MachineOutcome> = BTreeMap::new();
    for slot in &mut sup.slots {
        let (shard_outcomes, shard_trace) = slot.done.take().expect("worker reported Done");
        if !shard_trace.is_empty() {
            trace = shard_trace;
        }
        for o in shard_outcomes {
            by_machine.insert(o.id, o);
        }
    }
    outcomes.extend(by_machine.into_values());
    if outcomes.len() != specs.len() {
        return Err(Error::Config(format!(
            "supervised run reported {} outcomes for {} machines",
            outcomes.len(),
            specs.len()
        )));
    }
    let stats = fold(&outcomes);
    Ok((
        FleetReport {
            outcomes,
            stats,
            trace,
        },
        !halted,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_are_sane() {
        let opts = SuperviseOpts::new(vec!["worker".into()]);
        assert!(opts.workers >= 1);
        assert!(opts.quarantine_after >= 1);
        assert!(opts.backoff_base <= opts.backoff_cap);
    }

    #[test]
    fn shard_chunking_matches_the_in_process_runner() {
        // 7 machines over 3 workers: ceil(7/3) = 3 → shards 3/3/1,
        // exactly what `specs.chunks(div_ceil)` produces in-process.
        let total = 7u32;
        let chunk = (total as usize).div_ceil(3) as u32;
        let mut bounds = Vec::new();
        let mut start = 0;
        while start < total {
            let len = chunk.min(total - start);
            bounds.push((start, len));
            start += len;
        }
        assert_eq!(bounds, vec![(0, 3), (3, 3), (6, 1)]);
    }

    #[test]
    fn missing_worker_binary_is_a_structured_error() {
        let cfg = FleetConfig::new(2);
        let mut opts = SuperviseOpts::new(vec!["/nonexistent/hammertime-worker".into()]);
        opts.workers = 1;
        let err = run_supervised(&cfg, &opts, None, &RunControl::default());
        assert!(matches!(err, Err(Error::Config(_))), "got {err:?}");
    }
}
