//! The shard worker: one process owning a contiguous machine range,
//! driven over a pipe by the [`supervisor`](crate::supervisor).
//!
//! # Protocol
//!
//! JSON lines, one message per line. The supervisor speaks
//! [`ToWorker`], the worker answers [`FromWorker`]:
//!
//! ```text
//! supervisor                      worker
//! Hello{cfg, shard, quarantine} →
//!                               ← Hb{machine, stage 0} ... (per build)
//!                               ← Ready
//! Epoch{e, inbox}               →
//!                               ← Hb{machine, stage e+1} ... (per run)
//!                               ← EpochDone{e, outbox}
//! Finish                        →
//!                               ← Done{outcomes, trace}
//! ```
//!
//! Every `Hb` is flushed *before* the named machine executes its
//! stage, so when the process dies the supervisor's last-seen
//! heartbeat names the machine that was running — the basis for
//! BreakHammer-style suspect quarantine.
//!
//! # Deterministic fault hooks
//!
//! Three environment variables let tests inject crashes and hangs at
//! exact points without patching the binary (inert when unset):
//!
//! - `HAMMERTIME_FLEET_CRASH=M:S` — exit hard whenever machine `M` is
//!   about to run stage `S` (an always-crashing machine).
//! - `HAMMERTIME_FLEET_CRASH_ONCE=M:S:PATH` — create `PATH` and exit
//!   hard the first time; subsequent runs see the marker and proceed.
//! - `HAMMERTIME_FLEET_HANG_ONCE=M:S:PATH` — same, but sleep forever
//!   instead of exiting (a hung worker for the heartbeat watchdog).

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

use hammertime::machine::TenantExport;
use hammertime_common::{Error, Result};
use hammertime_telemetry::TraceRecord;
use serde::{Deserialize, Serialize};

use crate::durable::QuarantineEvent;
use crate::population::synthesize;
use crate::shard::{FleetConfig, MachineOutcome, QuarantineMap, ShardSim};
use crate::wire::{sort_canonical, WirePosting};

/// Messages the supervisor sends a worker.
// Hello dwarfs the other variants, but it is sent exactly once per
// worker lifetime and the vendored serde has no Box<T> impls.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ToWorker {
    /// Adopt a shard: build machines `[shard_start, shard_start +
    /// shard_len)` of the population `cfg` synthesizes, honouring
    /// standing quarantine decisions.
    Hello {
        /// The full fleet configuration (population is re-synthesized
        /// worker-side from the seed — cheap and canonical).
        cfg: FleetConfig,
        /// First machine id this worker owns.
        shard_start: u32,
        /// Number of machines this worker owns.
        shard_len: u32,
        /// Machines the supervisor has isolated.
        quarantine: Vec<QuarantineEvent>,
    },
    /// Run one epoch; `inbox` holds the postings destined for this
    /// shard, canonical order.
    Epoch {
        /// Epoch number.
        epoch: u32,
        /// Admissions for this shard.
        inbox: Vec<WirePosting>,
    },
    /// Tear down and report outcomes.
    Finish,
}

/// Messages a worker sends the supervisor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FromWorker {
    /// Shard built; ready for epoch 0.
    Ready,
    /// About to execute `stage` (0 = build, `e + 1` = epoch `e`) on
    /// `machine` — the supervisor's crash-attribution breadcrumb.
    Hb {
        /// Machine about to run.
        machine: u32,
        /// Stage about to run.
        stage: u32,
    },
    /// Epoch complete; `outbox` holds this shard's emitted postings in
    /// canonical order.
    EpochDone {
        /// Epoch number (echoed).
        epoch: u32,
        /// Postings emitted by this shard.
        outbox: Vec<WirePosting>,
    },
    /// Final per-machine outcomes (and the traced machine's records,
    /// when this shard owns it).
    Done {
        /// Outcomes in shard order.
        outcomes: Vec<MachineOutcome>,
        /// Trace records (empty unless this shard owns the traced
        /// machine).
        trace: Vec<TraceRecord>,
    },
}

/// A test-only fault injection point parsed from the environment.
struct FaultHook {
    machine: u32,
    stage: u32,
    /// Once-marker: when present on disk the hook is spent.
    marker: Option<std::path::PathBuf>,
    hang: bool,
}

impl FaultHook {
    fn parse(spec: &str, marker_required: bool, hang: bool) -> Option<FaultHook> {
        let mut parts = spec.splitn(3, ':');
        let machine = parts.next()?.parse().ok()?;
        let stage = parts.next()?.parse().ok()?;
        let marker = parts.next().map(std::path::PathBuf::from);
        if marker_required && marker.is_none() {
            return None;
        }
        Some(FaultHook {
            machine,
            stage,
            marker,
            hang,
        })
    }

    fn from_env() -> Vec<FaultHook> {
        let mut hooks = Vec::new();
        if let Ok(spec) = std::env::var("HAMMERTIME_FLEET_CRASH") {
            hooks.extend(FaultHook::parse(&spec, false, false));
        }
        if let Ok(spec) = std::env::var("HAMMERTIME_FLEET_CRASH_ONCE") {
            hooks.extend(FaultHook::parse(&spec, true, false));
        }
        if let Ok(spec) = std::env::var("HAMMERTIME_FLEET_HANG_ONCE") {
            hooks.extend(FaultHook::parse(&spec, true, true));
        }
        hooks
    }

    /// Fires the hook if it matches `(machine, stage)` and is unspent.
    /// Never returns when it fires.
    fn maybe_fire(&self, machine: u32, stage: u32) {
        if self.machine != machine || self.stage != stage {
            return;
        }
        if let Some(marker) = &self.marker {
            if marker.exists() {
                return;
            }
            let _ = std::fs::write(marker, b"spent");
        }
        if self.hang {
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        // A hard, un-unwound death — what an OOM-kill or segfault
        // looks like from the supervisor's side of the pipe.
        std::process::exit(101);
    }
}

fn send(output: &mut dyn Write, msg: &FromWorker) -> Result<()> {
    let line = serde_json::to_string(msg).expect("protocol message serializes");
    output
        .write_all(line.as_bytes())
        .and_then(|()| output.write_all(b"\n"))
        .and_then(|()| output.flush())
        .map_err(|e| Error::Config(format!("worker write failed: {e}")))
}

fn read_msg(input: &mut dyn BufRead) -> Result<ToWorker> {
    let mut line = String::new();
    let n = input
        .read_line(&mut line)
        .map_err(|e| Error::Config(format!("worker read failed: {e}")))?;
    if n == 0 {
        return Err(Error::Config(
            "supervisor closed the pipe mid-protocol".into(),
        ));
    }
    serde_json::from_str(line.trim_end())
        .map_err(|e| Error::Config(format!("malformed supervisor message: {e}")))
}

/// Runs the worker side of the shard protocol to completion: reads
/// [`ToWorker`] lines from `input`, writes [`FromWorker`] lines to
/// `output`, returns after answering `Finish`.
///
/// # Errors
///
/// Protocol violations (pipe closed mid-run, malformed messages,
/// wire postings that fail to restore) — the supervisor sees the
/// process exit and treats it as a crash.
pub fn run_worker(input: &mut dyn BufRead, output: &mut dyn Write) -> Result<()> {
    let (cfg, shard_start, shard_len, quarantine) = match read_msg(input)? {
        ToWorker::Hello {
            cfg,
            shard_start,
            shard_len,
            quarantine,
        } => (cfg, shard_start, shard_len, quarantine),
        other => {
            return Err(Error::Config(format!(
                "worker expected Hello, got {other:?}"
            )))
        }
    };
    let quarantine: QuarantineMap = quarantine.iter().map(|ev| (ev.machine, ev.stage)).collect();
    let hooks = FaultHook::from_env();
    let specs = synthesize(&cfg);
    let total = specs.len() as u32;
    let end = (shard_start + shard_len) as usize;
    if shard_start as usize >= specs.len() || end > specs.len() || shard_len == 0 {
        return Err(Error::Config(format!(
            "shard [{shard_start}, {end}) out of range for {} machines",
            specs.len()
        )));
    }
    let shard = &specs[shard_start as usize..end];

    // The heartbeat callback doubles as the fault-hook firing point:
    // the Hb line is flushed first so the supervisor's last-seen
    // heartbeat names the machine that was running when we die.
    let out = std::cell::RefCell::new(output);
    let mut hb = |machine: u32, stage: u32| {
        send(&mut **out.borrow_mut(), &FromWorker::Hb { machine, stage }).expect("heartbeat write");
        for hook in &hooks {
            hook.maybe_fire(machine, stage);
        }
    };

    let mut sim = ShardSim::build(&cfg, shard, total, &quarantine, &mut hb);
    send(&mut **out.borrow_mut(), &FromWorker::Ready)?;

    loop {
        match read_msg(input)? {
            ToWorker::Hello { .. } => {
                return Err(Error::Config("worker already adopted a shard".into()))
            }
            ToWorker::Epoch { epoch, inbox } => {
                // Route wire postings to their destination machines;
                // restore rebuilds each migrated workload bit-exactly.
                let mut by_dest: BTreeMap<u32, Vec<(u32, TenantExport)>> = BTreeMap::new();
                for posting in &inbox {
                    let export = posting.restore()?;
                    by_dest
                        .entry(posting.dest)
                        .or_default()
                        .push((posting.src, export));
                }
                let posts = sim.run_epoch(
                    epoch,
                    &mut |id| {
                        let mut items = by_dest.remove(&id).unwrap_or_default();
                        items.sort_by_key(|(src, e)| (*src, e.domain.0));
                        items
                    },
                    &quarantine,
                    &mut hb,
                );
                let mut outbox = Vec::with_capacity(posts.len());
                for (dest, src, export) in &posts {
                    outbox.push(WirePosting::capture(*dest, *src, export)?);
                }
                sort_canonical(&mut outbox);
                send(
                    &mut **out.borrow_mut(),
                    &FromWorker::EpochDone { epoch, outbox },
                )?;
            }
            ToWorker::Finish => {
                let (outcomes, trace) = sim.finish();
                send(
                    &mut **out.borrow_mut(),
                    &FromWorker::Done { outcomes, trace },
                )?;
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a worker end-to-end over in-memory pipes and checks its
    /// outcomes equal the in-process runner's for the same shard.
    #[test]
    fn worker_protocol_round_trips_a_whole_fleet() {
        let cfg = FleetConfig::new(6);
        let reference = crate::shard::run_fleet(&cfg).unwrap();

        // One worker owning the whole fleet: no cross-process inbox
        // routing needed, every epoch's inbox is its own outbox.
        let mut lines = vec![serde_json::to_string(&ToWorker::Hello {
            cfg: cfg.clone(),
            shard_start: 0,
            shard_len: 6,
            quarantine: vec![],
        })
        .unwrap()];

        // Play the protocol one message at a time: feed what we have,
        // read responses, build the next epoch's inbox from the
        // previous EpochDone.
        let mut outcomes = None;
        let mut inbox: Vec<WirePosting> = Vec::new();
        for epoch in 0..=cfg.epochs {
            if epoch < cfg.epochs {
                lines.push(
                    serde_json::to_string(&ToWorker::Epoch {
                        epoch,
                        inbox: inbox.clone(),
                    })
                    .unwrap(),
                );
            } else {
                lines.push(serde_json::to_string(&ToWorker::Finish).unwrap());
            }
            let script = lines.join("\n") + "\n";
            let mut input = std::io::BufReader::new(script.as_bytes());
            let mut output = Vec::new();
            let _ = run_worker(&mut input, &mut output);
            let text = String::from_utf8(output).unwrap();
            for line in text.lines() {
                match serde_json::from_str::<FromWorker>(line).unwrap() {
                    FromWorker::EpochDone { epoch: e, outbox } if e + 1 == epoch + 1 => {
                        inbox = outbox;
                    }
                    FromWorker::Done {
                        outcomes: o,
                        trace: _,
                    } => outcomes = Some(o),
                    _ => {}
                }
            }
        }
        let outcomes = outcomes.expect("worker reported Done");
        let a = serde_json::to_string(&outcomes).unwrap();
        let b = serde_json::to_string(&reference.outcomes).unwrap();
        assert_eq!(a, b, "worker outcomes diverge from in-process runner");
    }

    #[test]
    fn fault_hook_parses_and_ignores_garbage() {
        assert!(FaultHook::parse("3:1", false, false).is_some());
        assert!(FaultHook::parse("3:1:/tmp/m", true, false).is_some());
        assert!(
            FaultHook::parse("3:1", true, false).is_none(),
            "marker required"
        );
        assert!(FaultHook::parse("nope", false, false).is_none());
        assert!(FaultHook::parse("", false, false).is_none());
    }
}
