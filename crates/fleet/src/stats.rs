//! Population statistics: per-slate flip-rate and defense-overhead
//! distributions over per-machine reports.
//!
//! Two representations, deliberately redundant:
//!
//! - **Exact distributions** ([`SlateStats`]): every machine's derived
//!   rates, kept sorted; percentiles are nearest-rank over the sorted
//!   values, so the table is exact and byte-stable. Aggregation is a
//!   *fold* that is permutation-invariant and mergeable (shards can
//!   fold locally and merge) — the property suite pins both laws
//!   against a naive reference.
//! - **Telemetry histograms** ([`registry`]): the same samples pushed
//!   into the `MetricsRegistry`'s log2 histograms, for dashboards and
//!   the metrics snapshot; `HistogramSnapshot::approx_quantile` gives
//!   power-of-two-resolution quantiles without keeping the samples.

use hammertime::experiments::ExpTable;
use hammertime_telemetry::{MetricsRegistry, MetricsSnapshot};
use serde::Serialize;
use std::collections::BTreeMap;

use crate::shard::MachineOutcome;

/// Derived per-machine rates — the three population distributions.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MachineSample {
    /// Cross-domain flips per million cycles.
    pub flip_rate: f64,
    /// Defense actions (mitigation ops, victim refreshes, remaps,
    /// interrupts) per thousand cycles.
    pub overhead: f64,
    /// Tenant operations completed per thousand cycles.
    pub throughput: f64,
}

impl MachineSample {
    /// Derives the sample from a completed machine's report; `None`
    /// for failed machines (they contribute to the failure count, not
    /// the distributions).
    pub fn from_outcome(o: &MachineOutcome) -> Option<MachineSample> {
        let r = o.report.as_ref()?;
        let cycles = r.cycles.max(1) as f64;
        let ovh = r.overhead.actions
            + r.overhead.refresh_ops
            + r.overhead.convoluted_refreshes
            + r.overhead.pages_remapped
            + r.overhead.interrupts;
        Some(MachineSample {
            flip_rate: r.flips_cross_domain as f64 * 1e6 / cycles,
            overhead: ovh as f64 * 1e3 / cycles,
            throughput: r.throughput(),
        })
    }
}

/// One slate's population: counts plus the three sorted sample
/// vectors percentiles are read from.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SlateStats {
    /// Machines assigned the slate.
    pub machines: u64,
    /// Of those, machines with an attacker tenant.
    pub attacked: u64,
    /// Machines that failed (error/panic/timeout/quarantined).
    pub failed: u64,
    /// Of the failed machines, those a supervisor quarantined after
    /// repeated worker crashes (a subset of `failed`).
    pub quarantined: u64,
    /// Tenant migrations into machines of this slate.
    pub migrations_in: u64,
    /// Sorted cross-domain flip rates (flips per Mcycle).
    pub flip_rate: Vec<f64>,
    /// Sorted defense-overhead rates (defense ops per kcycle).
    pub overhead: Vec<f64>,
    /// Sorted tenant throughputs (ops per kcycle).
    pub throughput: Vec<f64>,
}

impl SlateStats {
    fn push(&mut self, o: &MachineOutcome) {
        self.machines += 1;
        self.attacked += u64::from(o.attacked);
        self.migrations_in += u64::from(o.migrations_in);
        match MachineSample::from_outcome(o) {
            Some(s) => {
                insert_sorted(&mut self.flip_rate, s.flip_rate);
                insert_sorted(&mut self.overhead, s.overhead);
                insert_sorted(&mut self.throughput, s.throughput);
            }
            None => {
                self.failed += 1;
                let quarantined = o
                    .failure
                    .as_ref()
                    .is_some_and(|f| f.kind == hammertime::experiments::FailureKind::Quarantined);
                self.quarantined += u64::from(quarantined);
            }
        }
    }

    /// Merges another slate's population into this one (shard-local
    /// folds merge to the global fold; the property suite pins it).
    pub fn merge(&mut self, other: &SlateStats) {
        self.machines += other.machines;
        self.attacked += other.attacked;
        self.failed += other.failed;
        self.quarantined += other.quarantined;
        self.migrations_in += other.migrations_in;
        for (mine, theirs) in [
            (&mut self.flip_rate, &other.flip_rate),
            (&mut self.overhead, &other.overhead),
            (&mut self.throughput, &other.throughput),
        ] {
            for &v in theirs {
                insert_sorted(mine, v);
            }
        }
    }
}

fn insert_sorted(v: &mut Vec<f64>, x: f64) {
    let pos = v.partition_point(|&y| y < x);
    v.insert(pos, x);
}

/// Nearest-rank percentile over an ascending-sorted slice: the
/// smallest element with rank `>= q * len` (at least rank 1). `None`
/// for an empty slice — an all-failed slate has *no* distribution, and
/// rendering it as `0.0` would read as "measured and perfectly clean".
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Renders a percentile cell: the value at `precision` decimals, or
/// `-` when the distribution is empty.
fn percentile_cell(sorted: &[f64], q: f64, precision: usize) -> String {
    match percentile(sorted, q) {
        Some(v) => format!("{v:.precision$}"),
        None => "-".to_string(),
    }
}

/// The fleet's population statistics, per slate (sorted by slate
/// name, so rendering order is canonical).
#[derive(Debug, Clone, Default, Serialize)]
pub struct PopulationStats {
    /// Per-slate populations.
    pub slates: BTreeMap<String, SlateStats>,
}

impl PopulationStats {
    /// Folds one more machine in (order-independent).
    pub fn push(&mut self, o: &MachineOutcome) {
        self.slates.entry(o.defense.clone()).or_default().push(o);
    }

    /// Merges another fold into this one.
    pub fn merge(&mut self, other: &PopulationStats) {
        for (slate, stats) in &other.slates {
            self.slates.entry(slate.clone()).or_default().merge(stats);
        }
    }

    /// The rendered population table: one row per slate, percentile
    /// columns for the flip-rate and defense-overhead distributions.
    pub fn table(&self, id: &str, title: &str) -> ExpTable {
        let mut t = ExpTable::new(id, title, POPULATION_COLUMNS);
        for (slate, s) in &self.slates {
            t.push(population_row(slate, s));
        }
        t
    }

    /// The same distributions as telemetry histograms plus fleet
    /// counters, snapshotted for dashboards/JSON output. Samples are
    /// scaled to integer milli-units (the registry stores `u64`).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::default();
        for (slate, s) in &self.slates {
            reg.counter_add(&format!("fleet.{slate}.machines"), s.machines);
            reg.counter_add(&format!("fleet.{slate}.attacked"), s.attacked);
            reg.counter_add(&format!("fleet.{slate}.failed"), s.failed);
            if s.quarantined > 0 {
                // Guarded: healthy fleets keep their metrics snapshot
                // (and every golden pinned to it) unchanged.
                reg.counter_add(&format!("fleet.{slate}.quarantined"), s.quarantined);
            }
            reg.counter_add(&format!("fleet.{slate}.migrations_in"), s.migrations_in);
            for &v in &s.flip_rate {
                reg.observe(&format!("fleet.{slate}.flip_rate_milli"), milli(v));
            }
            for &v in &s.overhead {
                reg.observe(&format!("fleet.{slate}.overhead_milli"), milli(v));
            }
            for &v in &s.throughput {
                reg.observe(&format!("fleet.{slate}.throughput_milli"), milli(v));
            }
        }
        reg.snapshot()
    }
}

fn milli(v: f64) -> u64 {
    (v * 1000.0).round().max(0.0) as u64
}

/// Column headers of the population table.
pub const POPULATION_COLUMNS: &[&str] = &[
    "slate",
    "machines",
    "attacked",
    "failed",
    "migr",
    "xflip/Mc p50",
    "p90",
    "p99",
    "max",
    "ovh/kc p50",
    "p99",
    "tput/kc p50",
];

/// One slate's table row.
pub fn population_row(slate: &str, s: &SlateStats) -> Vec<String> {
    let f = &s.flip_rate;
    let o = &s.overhead;
    let max = match f.last() {
        Some(v) => format!("{v:.3}"),
        None => "-".to_string(),
    };
    vec![
        slate.to_string(),
        s.machines.to_string(),
        s.attacked.to_string(),
        s.failed.to_string(),
        s.migrations_in.to_string(),
        percentile_cell(f, 0.50, 3),
        percentile_cell(f, 0.90, 3),
        percentile_cell(f, 0.99, 3),
        max,
        percentile_cell(o, 0.50, 3),
        percentile_cell(o, 0.99, 3),
        percentile_cell(&s.throughput, 0.50, 2),
    ]
}

/// Naive reference fold over outcomes in the given order. The runner
/// and the property suite both use this; the suite additionally
/// checks chunked fold + merge equals it for every permutation.
pub fn fold(outcomes: &[MachineOutcome]) -> PopulationStats {
    let mut stats = PopulationStats::default();
    for o in outcomes {
        stats.push(o);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 0.25), Some(1.0));
        assert_eq!(percentile(&v, 0.5), Some(2.0));
        assert_eq!(percentile(&v, 0.51), Some(3.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn empty_distributions_render_as_dashes_not_zeros() {
        // A slate whose every machine failed has counts but no
        // samples; its row must say "no data", not "0.000 flips".
        let s = SlateStats {
            machines: 3,
            failed: 3,
            ..SlateStats::default()
        };
        let row = population_row("breakhammer", &s);
        assert_eq!(row[0], "breakhammer");
        assert_eq!(row[1], "3");
        assert_eq!(row[3], "3");
        for cell in &row[5..] {
            assert_eq!(cell, "-", "empty distribution must render as -");
        }
    }

    #[test]
    fn merging_empty_slates_stays_empty() {
        let mut a = SlateStats {
            machines: 1,
            failed: 1,
            ..SlateStats::default()
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.machines, 2);
        assert_eq!(a.failed, 2);
        assert!(a.flip_rate.is_empty());
        assert_eq!(percentile(&a.flip_rate, 0.99), None);
    }

    #[test]
    fn insert_sorted_keeps_order() {
        let mut v = Vec::new();
        for x in [3.0, 1.0, 2.0, 2.0, 0.5] {
            insert_sorted(&mut v, x);
        }
        assert_eq!(v, [0.5, 1.0, 2.0, 2.0, 3.0]);
    }
}
