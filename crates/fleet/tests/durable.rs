//! Durability suite: the resume contract (kill anywhere, resume,
//! get byte-identical output), journal corruption handling through
//! the public entry points, and quarantine reproduction on resume.

use hammertime::experiments::FailureKind;
use hammertime_common::FaultPlan;
use hammertime_fleet::shard::run_fleet_controlled;
use hammertime_fleet::{
    resume_fleet, run_fleet, run_fleet_durable, DurableRun, FleetConfig, FleetReport,
    QuarantineEvent, RunControl,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htdurable-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn report_bytes(r: &FleetReport) -> String {
    serde_json::to_string(r).expect("fleet report serializes")
}

fn chaos_plan() -> FaultPlan {
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/chaos-plan.json"
    ))
    .expect("chaos fixture is readable");
    serde_json::from_str(&json).expect("chaos fixture parses")
}

/// Simulated SIGKILL: run durably but halt (without a clean-stop
/// marker) after committing `kill_after` — the report is discarded,
/// exactly as a dead process would have discarded it.
fn kill_at(cfg: &FleetConfig, dir: &std::path::Path, kill_after: u32) {
    let control = RunControl {
        halt_after: Some(kill_after),
        ..RunControl::default()
    };
    let (_, completed) = run_fleet_durable(cfg, dir, &control).unwrap();
    assert!(!completed, "halt_after must stop the run early");
}

#[test]
fn durable_run_is_byte_identical_to_plain_and_adds_a_journal() {
    let dir = tmpdir("plain-vs-durable");
    let cfg = FleetConfig::new(8);
    let plain = run_fleet(&cfg).unwrap();
    let (durable, completed) = run_fleet_durable(&cfg, &dir, &RunControl::default()).unwrap();
    assert!(completed);
    assert_eq!(report_bytes(&plain), report_bytes(&durable));
    assert!(dir.join("epochs.htjl").is_file());
    assert!(dir.join("manifest.json").is_file());
}

#[test]
fn resume_of_a_completed_run_revalidates_and_matches() {
    let dir = tmpdir("resume-completed");
    let cfg = FleetConfig::new(8);
    let (first, _) = run_fleet_durable(&cfg, &dir, &RunControl::default()).unwrap();
    let (again, completed) = resume_fleet(&cfg, &dir, &RunControl::default()).unwrap();
    assert!(completed);
    assert_eq!(report_bytes(&first), report_bytes(&again));
}

#[test]
fn resume_with_a_torn_journal_tail_falls_back_to_the_last_commit() {
    let dir = tmpdir("torn-tail");
    let mut cfg = FleetConfig::new(8);
    cfg.epochs = 4;
    let reference = run_fleet(&cfg).unwrap();
    kill_at(&cfg, &dir, 1);

    // A torn final record: the process died mid-write. Resume must
    // drop the tail and re-derive the lost epoch, not error.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("epochs.htjl"))
        .unwrap();
    f.write_all(&[0x17, 0x00, 0x00]).unwrap();
    drop(f);

    let (resumed, completed) = resume_fleet(&cfg, &dir, &RunControl::default()).unwrap();
    assert!(completed);
    assert_eq!(report_bytes(&reference), report_bytes(&resumed));
}

#[test]
fn resume_under_a_different_config_is_a_structured_error() {
    let dir = tmpdir("manifest-mismatch");
    let cfg = FleetConfig::new(8);
    run_fleet_durable(&cfg, &dir, &RunControl::default()).unwrap();

    let mut other = cfg.clone();
    other.machines = 9;
    let err = resume_fleet(&other, &dir, &RunControl::default());
    assert!(err.is_err(), "population mismatch must refuse to resume");

    // A different worker count is NOT an identity change: shard
    // layout never leaks into fleet output.
    let rejobbed = cfg.clone().jobs(7);
    assert!(resume_fleet(&rejobbed, &dir, &RunControl::default()).is_ok());
}

#[test]
fn journaled_quarantine_reproduces_the_quarantined_row_on_resume() {
    let dir = tmpdir("quarantine-resume");
    let mut cfg = FleetConfig::new(8);
    cfg.epochs = 3;

    // A supervisor quarantined machine 3 at stage 2 (epoch 1), then
    // its run died. The journal carries the decision.
    {
        let mut durable = DurableRun::create(&dir, &cfg).unwrap();
        durable
            .record_quarantine(QuarantineEvent {
                machine: 3,
                stage: 2,
            })
            .unwrap();
    }
    let mut durable = DurableRun::resume(&dir, &cfg).unwrap();
    let (report, completed) =
        run_fleet_controlled(&cfg, &RunControl::default(), Some(&mut durable)).unwrap();
    assert!(completed);

    let row = &report.outcomes[3];
    let failure = row.failure.as_ref().expect("machine 3 is quarantined");
    assert_eq!(failure.kind, FailureKind::Quarantined);
    let progress = failure.progress.as_ref().expect("progress recorded");
    assert_eq!(
        progress.epochs_done, 1,
        "stage 2 = converted during epoch 1"
    );
    assert!(progress.cycle > 0, "live machine carries simulated time");

    // Siblings are untouched and the stats fold counts the subset.
    assert_eq!(report.failures().count(), 1);
    let slate = &report.stats.slates[&row.defense];
    assert_eq!(slate.quarantined, 1);
    assert!(slate.failed >= 1);

    // And a *second* resume reproduces the same report bytes.
    let (again, _) = resume_fleet(&cfg, &dir, &RunControl::default()).unwrap();
    assert_eq!(report_bytes(&report), report_bytes(&again));
}

proptest! {
    /// Satellite (d), first half: run → kill at a random epoch →
    /// resume (under a different worker count) is byte-identical to
    /// an uninterrupted run.
    #[test]
    fn kill_and_resume_is_byte_identical(
        machines in 4u32..10,
        seed in any::<u64>(),
        kill_after in 0u32..4,
        jobs in 1usize..5,
    ) {
        let dir = tmpdir(&format!("kill-resume-{seed:x}-{kill_after}-{jobs}"));
        let mut cfg = FleetConfig::new(machines).seed(seed);
        cfg.epochs = 4;
        let reference = run_fleet(&cfg).unwrap();

        kill_at(&cfg, &dir, kill_after);
        let rejobbed = cfg.clone().jobs(jobs);
        let (resumed, completed) =
            resume_fleet(&rejobbed, &dir, &RunControl::default()).unwrap();
        prop_assert!(completed);
        prop_assert_eq!(report_bytes(&reference), report_bytes(&resumed));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite (d), second half: two interleaved kills (the second
    /// during the resumed run) still converge to the uninterrupted
    /// bytes — resume is idempotent, not merely restartable.
    #[test]
    fn double_kill_double_resume_is_byte_identical(
        machines in 4u32..10,
        seed in any::<u64>(),
        first_kill in 0u32..3,
        second_kill in 0u32..4,
    ) {
        let dir = tmpdir(&format!("double-kill-{seed:x}-{first_kill}-{second_kill}"));
        let mut cfg = FleetConfig::new(machines).seed(seed);
        cfg.epochs = 4;
        let reference = run_fleet(&cfg).unwrap();

        kill_at(&cfg, &dir, first_kill);
        let control = RunControl {
            halt_after: Some(second_kill),
            ..RunControl::default()
        };
        let (_, completed) = resume_fleet(&cfg, &dir, &control).unwrap();
        prop_assert!(!completed);
        let (resumed, completed) =
            resume_fleet(&cfg, &dir, &RunControl::default()).unwrap();
        prop_assert!(completed);
        prop_assert_eq!(report_bytes(&reference), report_bytes(&resumed));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The same contract under the chaos fault plan: fault-plan
    /// machines re-derive their flaky behaviour deterministically, so
    /// resume stays byte-identical even for a degraded fleet.
    #[test]
    fn kill_and_resume_survives_chaos(
        seed in any::<u64>(),
        kill_after in 0u32..3,
    ) {
        let dir = tmpdir(&format!("chaos-resume-{seed:x}-{kill_after}"));
        let mut cfg = FleetConfig::new(6).seed(seed);
        cfg.epochs = 3;
        cfg.faults = Some(chaos_plan());
        let reference = run_fleet(&cfg).unwrap();

        kill_at(&cfg, &dir, kill_after);
        let (resumed, completed) =
            resume_fleet(&cfg, &dir, &RunControl::default()).unwrap();
        prop_assert!(completed);
        prop_assert_eq!(report_bytes(&reference), report_bytes(&resumed));
        std::fs::remove_dir_all(&dir).ok();
    }
}
