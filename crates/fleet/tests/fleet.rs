//! Fleet-layer integration suite: the determinism contract across
//! worker counts, tenant migration round-trips, population-statistics
//! laws, and step-budget isolation between sibling machines.

use hammertime::experiments::{run_budgeted, FailureKind};
use hammertime::machine::TenantExport;
use hammertime::memctrl::addrmap::MappingScheme;
use hammertime::{DefenseKind, Machine, MachineConfig};
use hammertime_common::{DomainId, FaultPlan};
use hammertime_fleet::population::{is_faulty_machine, synthesize, DramGen, MachineClass};
use hammertime_fleet::shard::{run_fleet, FleetConfig, FleetReport, MachineOutcome};
use hammertime_fleet::stats::{fold, PopulationStats};
use hammertime_workloads::StreamWorkload;
use proptest::prelude::*;
use std::sync::OnceLock;

fn report_bytes(r: &FleetReport) -> String {
    serde_json::to_string(r).expect("fleet report serializes")
}

fn chaos_plan() -> FaultPlan {
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/chaos-plan.json"
    ))
    .expect("chaos fixture is readable");
    serde_json::from_str(&json).expect("chaos fixture parses")
}

proptest! {
    /// The tentpole contract: a fleet run is byte-identical — every
    /// outcome, the population stats, the metrics-bearing reports,
    /// and the recorded trace — for any worker count, including the
    /// serial loop.
    #[test]
    fn fleet_is_byte_identical_across_jobs(
        machines in 4u32..12,
        seed in any::<u64>(),
        jobs in 2usize..9,
    ) {
        let mut base = FleetConfig::new(machines).seed(seed);
        base.trace_machine = Some(machines / 2);
        let serial = run_fleet(&base).unwrap();
        let sharded = run_fleet(&base.clone().jobs(jobs)).unwrap();
        prop_assert_eq!(report_bytes(&serial), report_bytes(&sharded));
    }

    /// Chunking the outcome list anywhere and merging the partial
    /// folds in any order gives exactly the naive fold: population
    /// aggregation is permutation-invariant and mergeable.
    #[test]
    fn population_fold_is_permutation_invariant(
        perm_seed in any::<u64>(),
        cuts in prop::collection::vec(0usize..16, 0..4),
    ) {
        let outcomes = sample_outcomes();
        let reference = serde_json::to_string(&fold(outcomes)).unwrap();

        // Shuffle deterministically from the proptest-drawn seed.
        let mut shuffled: Vec<&MachineOutcome> = outcomes.iter().collect();
        let mut rng = hammertime_common::DetRng::new(perm_seed);
        rng.shuffle(&mut shuffled);

        // Split at the drawn cut points and merge the partial folds.
        let mut bounds: Vec<usize> =
            cuts.iter().map(|c| c % (shuffled.len() + 1)).collect();
        bounds.push(0);
        bounds.push(shuffled.len());
        bounds.sort_unstable();
        let mut merged = PopulationStats::default();
        for w in bounds.windows(2) {
            let mut part = PopulationStats::default();
            for o in &shuffled[w[0]..w[1]] {
                part.push(o);
            }
            merged.merge(&part);
        }
        prop_assert_eq!(serde_json::to_string(&merged).unwrap(), reference);
    }
}

/// Real outcomes to exercise the statistics laws on, computed once.
fn sample_outcomes() -> &'static [MachineOutcome] {
    static OUTCOMES: OnceLock<Vec<MachineOutcome>> = OnceLock::new();
    OUTCOMES.get_or_init(|| {
        let mut cfg = FleetConfig::new(16).jobs(4);
        // A tight budget mixes failed machines into the sample set,
        // so the laws cover the failure-count path too.
        cfg.step_budget = Some(40_000);
        run_fleet(&cfg).unwrap().outcomes
    })
}

/// The canonical chaos plan on the deterministic degraded subset:
/// output stays byte-identical across worker counts, and fault
/// injection lands exactly on the machines `is_faulty_machine` names.
#[test]
fn chaos_fleet_is_deterministic_and_faults_stay_on_subset() {
    let mut cfg = FleetConfig::new(13);
    cfg.faults = Some(chaos_plan());
    let serial = run_fleet(&cfg).unwrap();
    let sharded = run_fleet(&cfg.clone().jobs(8)).unwrap();
    assert_eq!(report_bytes(&serial), report_bytes(&sharded));
    for o in &serial.outcomes {
        assert_eq!(o.faulty, is_faulty_machine(o.id), "machine {}", o.id);
    }
    assert!(serial.outcomes.iter().any(|o| o.faulty));
    assert!(serial.outcomes.iter().any(|o| !o.faulty));
}

fn machine_a() -> Machine {
    let mut cfg = MachineConfig::fast(DefenseKind::None, 48);
    cfg.seed = 7;
    Machine::new(cfg).unwrap()
}

/// Machine B: a *different geometry* than A (the compact class), so
/// the round-trip crosses hardware shapes.
fn machine_b() -> Machine {
    let mut cfg = MachineConfig::fast(DefenseKind::None, 48);
    cfg.geometry = MachineClass::Compact.geometry();
    cfg.seed = 11;
    Machine::new(cfg).unwrap()
}

const MIGRANT: DomainId = DomainId(77);

/// Detaches the tenant mid-hammer on A and returns two identical
/// exports (the second via the workload's checkpoint clone).
fn detach_mid_run() -> (TenantExport, TenantExport) {
    let mut a = machine_a();
    let arena = a.add_tenant(MIGRANT, 2).unwrap();
    a.set_workload(MIGRANT, Box::new(StreamWorkload::new(arena, 600, 4)))
        .unwrap();
    a.run(20_000);
    let export = a.detach_tenant(MIGRANT).unwrap();

    // Detach quarantines: the domain's address space is gone from A
    // and its frames went to the host pool, never back to free lists.
    assert!(a
        .translate(MIGRANT, hammertime_common::CacheLineAddr(0))
        .is_err());
    assert!(export.ops_done > 0, "tenant must be detached mid-run");

    let twin = TenantExport {
        domain: export.domain,
        pages: export.pages,
        workload: export
            .workload
            .as_ref()
            .and_then(|w| w.box_clone())
            .map(Some)
            .expect("stream workloads are checkpointable"),
        ops_done: export.ops_done,
        triggers: export.triggers,
    };
    (export, twin)
}

/// Tenant-migration round trip: a tenant checkpointed mid-hammer on
/// machine A and admitted on machine B (different geometry) behaves
/// exactly like the same snapshot admitted on a from-scratch
/// identically-seeded B.
#[test]
fn migration_round_trip_matches_from_scratch_run() {
    let (export, twin) = detach_mid_run();
    assert_eq!(export.pages, 2);

    let run_b = |export: TenantExport| {
        let mut b = machine_b();
        b.admit_tenant(export).unwrap();
        b.run(30_000);
        serde_json::to_string(&b.report()).unwrap()
    };
    assert_eq!(run_b(export), run_b(twin));
}

/// Trigger attribution follows a migrating tenant. A tenant caught
/// hammering on machine A (BreakHammer charges its ledger and suspect
/// score) is detached — A forgets it entirely, and further running
/// must not re-attribute anything to the departed domain — and
/// admitted on machine B (different geometry), where the ledger entry
/// and the suspicion it implies are restored from the export.
#[test]
fn migrated_tenant_carries_its_trigger_ledger() {
    use hammertime::scenario::CloudScenario;
    let bh = DefenseKind::BreakHammer { score_threshold: 4 };
    let mut cfg = MachineConfig::fast(bh, 24);
    cfg.seed = 7;
    let mut s = CloudScenario::build(cfg).unwrap();
    s.arm_double_sided(3_000).unwrap();
    s.run_windows(20);

    let hammerer = s.attacker;
    let charged = s.machine.mc().trigger_counts(hammerer);
    assert!(charged.total() > 0, "hammering must charge triggers");

    let export = s.machine.detach_tenant(hammerer).unwrap();
    assert_eq!(export.triggers, charged, "export must carry the ledger");
    assert!(
        !s.machine.mc().trigger_ledger().contains_key(&hammerer.0),
        "source must drop the departed tenant's ledger entry"
    );
    assert_eq!(s.machine.mc().mitigation().suspect_score(hammerer), 0);
    s.run_windows(5);
    assert_eq!(
        s.machine.mc().trigger_counts(hammerer).total(),
        0,
        "stale attribution to a departed domain"
    );

    let mut bcfg = MachineConfig::fast(bh, 24);
    bcfg.geometry = MachineClass::Compact.geometry();
    bcfg.seed = 11;
    let mut b = Machine::new(bcfg).unwrap();
    b.admit_tenant(export).unwrap();
    assert_eq!(
        b.mc().trigger_counts(hammerer),
        charged,
        "destination must restore the migrated ledger entry"
    );
    assert_eq!(
        b.mc().mitigation().suspect_score(hammerer),
        charged.total(),
        "suspicion must be sticky across migration"
    );
    assert_eq!(
        b.report().triggers_by_tenant.get(&hammerer.0),
        Some(&charged),
        "the report must surface the restored entry"
    );
}

/// The refuse path at the fleet level: remapping the address map under
/// a live (just-admitted) tenant must be rejected, and admitting the
/// same domain twice must be rejected.
#[test]
fn admitted_tenants_block_remapping_and_double_admission() {
    let (export, twin) = detach_mid_run();
    let mut b = machine_b();
    b.admit_tenant(export).unwrap();
    let err = b.set_mapping(MappingScheme::BankPartition).unwrap_err();
    assert!(err.to_string().contains("tenants attached"), "{err}");
    let err = b.admit_tenant(twin).unwrap_err();
    assert!(err.to_string().contains("already a tenant"), "{err}");
}

/// Satellite 6 regression: one machine exhausting its step budget
/// becomes a structured `Timeout` outcome; sibling machines on the
/// same worker keep their own budgets and complete. The generation
/// mix guarantees both kinds exist: an LPDDR4 machine's whole run
/// (2 epochs x 6 windows x tREFW 800) fits the budget, a tiny_wide
/// machine's does not.
#[test]
fn budget_timeout_does_not_poison_sibling_machines() {
    let mut cfg = FleetConfig::new(12);
    cfg.step_budget = Some(20_000);
    let specs = synthesize(&cfg);
    assert!(specs.iter().any(|s| s.gen == DramGen::Lpddr4));
    assert!(specs.iter().any(|s| s.gen != DramGen::Lpddr4));

    let report = run_fleet(&cfg).unwrap();
    let timeouts: Vec<u32> = report
        .outcomes
        .iter()
        .filter(|o| o.failure.is_some())
        .map(|o| o.id)
        .collect();
    assert!(!timeouts.is_empty(), "some machine must exhaust 20k cycles");
    assert!(
        timeouts.len() < report.outcomes.len(),
        "LPDDR4 machines must survive the budget"
    );
    for (id, f) in report.failures() {
        assert_eq!(f.kind, FailureKind::Timeout, "machine {id}: {f:?}");
    }
    // Survivors are not truncated: each ran its full two epochs.
    for o in report.outcomes.iter().filter(|o| o.failure.is_none()) {
        let r = o.report.as_ref().unwrap();
        assert!(r.cycles >= 2 * 6 * 800, "machine {} stopped early", o.id);
    }
    // The whole degraded run still honours the determinism contract.
    let sharded = run_fleet(&cfg.clone().jobs(5)).unwrap();
    assert_eq!(report_bytes(&report), report_bytes(&sharded));
}

/// A machine timing out inside its own budget scope must not consume
/// or corrupt the *enclosing* scope's budget (FL1 cells run whole
/// fleets under the suite's `--step-budget`).
#[test]
fn nested_budget_scope_restores_the_outer_budget() {
    let outer = run_budgeted("outer", Some(1_000_000), || {
        let inner = run_budgeted("inner", Some(500), || {
            machine_a().run(50_000);
            Ok(())
        });
        let f = inner.expect_err("inner scope must time out");
        assert_eq!(f.kind, FailureKind::Timeout);
        // 50k cycles fit the outer budget with room to spare; if the
        // inner exhaustion leaked into this scope, this panics.
        machine_a().run(50_000);
        Ok(())
    });
    assert!(outer.is_ok(), "outer scope poisoned: {outer:?}");
}

/// Every id documented in EXPERIMENTS.md resolves in the combined
/// core + FL registry and vice versa — this crate sees every
/// experiment, so it owns the bidirectional check.
#[test]
fn full_registry_matches_experiments_md() {
    let md = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md"))
        .expect("EXPERIMENTS.md is readable");
    let documented: Vec<&str> = md
        .lines()
        .filter_map(|l| l.strip_prefix("== ")?.split_whitespace().next())
        .collect();
    assert!(!documented.is_empty(), "no table headers found");
    let registered: Vec<&str> = hammertime_fleet::full_registry()
        .iter()
        .map(|e| e.id())
        .collect();
    for id in &documented {
        assert!(
            registered.contains(id),
            "EXPERIMENTS.md documents {id} but no registry has it"
        );
    }
    for id in &registered {
        assert!(
            documented.contains(id),
            "registry has {id} but EXPERIMENTS.md does not document it"
        );
    }
}

/// The FL1 experiment produces a row per slate with the full column
/// set, and (like every suite experiment) is byte-identical across
/// suite worker counts.
#[test]
fn fl1_produces_population_rows_per_slate() {
    use hammertime::experiments::RunOptions;
    let opts = RunOptions::new(true).filter(["FL1"]);
    let a = hammertime_fleet::run_all_with(&opts).unwrap();
    let b = hammertime_fleet::run_all_with(&opts.clone().jobs(4)).unwrap();
    assert_eq!(
        serde_json::to_string(&a.tables).unwrap(),
        serde_json::to_string(&b.tables).unwrap()
    );
    assert!(!a.has_failures());
    let t = &a.tables[0];
    assert_eq!(t.id, "FL1");
    assert_eq!(t.rows.len(), FleetConfig::default_slates().len());
    for row in &t.rows {
        assert_eq!(row.len(), t.columns.len());
    }
}
