//! Counters and histograms, snapshotted into reports.
//!
//! The registry is a deliberately small, allocation-light store:
//! string-keyed `u64` counters plus log2-bucketed histograms. Keys are
//! dotted paths (`"dram.acts"`, `"mc.refresh_slack"`). Producers only
//! ever touch it through a [`crate::Tracer`], so when tracing is off
//! the registry does not even exist.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Bucket `b` counts samples with `bit_length(value) == b`
    /// (bucket 0 holds the value 0).
    buckets: BTreeMap<u32, u64>,
}

/// Log2 bucket index of a sample: 0 for 0, else `floor(log2(v)) + 1`.
fn bucket_of(value: u64) -> u32 {
    64 - value.leading_zeros()
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        *self.buckets.entry(bucket_of(value)).or_insert(0) += 1;
    }

    /// Immutable snapshot with derived statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
            buckets: self.buckets.clone(),
        }
    }
}

/// Serializable view of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Mean sample (0 when empty).
    pub mean: f64,
    /// Non-empty log2 buckets: bucket `b` counts samples whose bit
    /// length is `b`, i.e. values in `[2^(b-1), 2^b)`; bucket 0 is the
    /// value 0.
    pub buckets: BTreeMap<u32, u64>,
}

impl HistogramSnapshot {
    /// Approximate `q`-quantile (`0.0 ..= 1.0`) from the log2 buckets.
    ///
    /// Walks the buckets to the one containing the nearest-rank sample
    /// and returns that bucket's upper bound clamped to the observed
    /// `max` (so `approx_quantile(1.0) == max` exactly). The answer is
    /// therefore within one power of two of the true quantile — the
    /// resolution the histogram keeps by design. Returns `None` when
    /// the histogram is empty or `q` is out of range.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Nearest rank: the smallest k with k >= q * count, at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&bucket, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // Bucket b holds values in [2^(b-1), 2^b); bucket 0
                // holds only the value 0.
                let upper = if bucket == 0 {
                    0
                } else {
                    (1u64 << (bucket - 1)).saturating_mul(2).saturating_sub(1)
                };
                return Some(upper.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

/// String-keyed counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds `delta` to counter `name` (creating it at 0).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets counter `name` to `value`, overwriting any prior value.
    /// Used to mirror externally-maintained counters (`DramStats`,
    /// `McStats`) into the registry at snapshot time.
    pub fn counter_set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Records `value` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Immutable snapshot of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Serializable snapshot of a [`MetricsRegistry`], embedded in
/// `SimReport` when the run was traced.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by dotted name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by dotted name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_extremes_and_mean() {
        let mut h = Histogram::default();
        for v in [4, 1, 7] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 12);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 7);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.buckets.get(&1), Some(&1)); // value 1
        assert_eq!(s.buckets.get(&3), Some(&2)); // values 4 and 7
    }

    #[test]
    fn approx_quantile_lands_in_the_right_bucket() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.approx_quantile(0.0), Some(0)); // rank clamps to 1
        assert_eq!(s.approx_quantile(1.0), Some(1000)); // clamped to max
                                                        // p50 (rank 3) falls in bucket 2 (values 2..=3): upper bound 3.
        assert_eq!(s.approx_quantile(0.5), Some(3));
        // Out-of-range and empty cases.
        assert_eq!(s.approx_quantile(1.5), None);
        assert_eq!(HistogramSnapshot::default().approx_quantile(0.5), None);
    }

    #[test]
    fn registry_snapshot_round_trips_through_json() {
        let mut reg = MetricsRegistry::default();
        reg.counter_add("a.b", 3);
        reg.counter_add("a.b", 2);
        reg.counter_set("c", 9);
        reg.observe("h", 0);
        reg.observe("h", 1000);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a.b"], 5);
        assert_eq!(snap.counters["c"], 9);
        assert_eq!(snap.histograms["h"].count, 2);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
