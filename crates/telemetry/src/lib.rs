//! Cycle-stamped structured event tracing for the hammertime
//! simulator.
//!
//! The paper's primitives — precise ACT-interrupts, targeted refresh
//! instructions, TRR sampling — are *event streams*, but aggregate
//! stats can only say how often they fired, not in what order or in
//! response to what. This crate records the streams themselves:
//!
//! - [`Event`] / [`TraceRecord`]: the closed event taxonomy, each
//!   record stamped with its simulation cycle.
//! - [`Tracer`]: a cheaply clonable handle threaded through component
//!   configs as `Option<Tracer>`. `None` (the default) costs one
//!   `is_none()` check on the hot path and nothing else.
//! - Sinks: unbounded buffer, bounded ring (keeps the newest records),
//!   streaming JSONL, streaming compact binary.
//! - [`codec`]: the on-disk [`CommandTrace`] formats (binary ↔ JSONL,
//!   lossless both ways) under the workspace-wide versioned
//!   [`hammertime_common::traceformat::TraceHeader`].
//! - [`diff`]: record-exact trace comparison — first divergence plus
//!   per-kind count deltas.
//! - [`metrics`]: a counters/histograms registry snapshotted into run
//!   reports.
//!
//! This crate sits directly above `hammertime-common` in the
//! dependency DAG; the device/controller/machine crates depend on it,
//! not the other way round. That is why DDR commands appear here as
//! the mirror type [`CmdEvent`] and device configs/stats as embedded
//! JSON — the telemetry layer can describe the stack without
//! depending on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod diff;
pub mod event;
pub mod metrics;
pub mod tracer;

pub use codec::CommandTrace;
pub use diff::{diff_traces, Divergence, TraceDiff};
pub use event::{CmdEvent, Event, TraceRecord};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use tracer::Tracer;
