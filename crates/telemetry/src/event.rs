//! The event taxonomy: everything the simulator can say about itself.
//!
//! Every record is a cycle stamp plus one [`Event`]. The taxonomy is
//! deliberately flat and closed — each variant corresponds to one
//! observable action of the modelled hardware/software stack, so a
//! trace reads like a command-bus analyser capture annotated with the
//! defense-relevant events around it (paper §4: ACT-interrupts,
//! refresh instructions, remaps, TRR actions).
//!
//! Two variants carry embedded JSON rather than structured fields:
//! [`Event::DeviceReset`] (the full device config, so a trace is
//! self-describing and replayable) and [`Event::DeviceStats`] (the
//! device's final counters, the replay harness's ground truth). The
//! telemetry crate sits *below* the device model in the dependency
//! DAG, so it cannot name those types; JSON keeps the layer boundary
//! clean without losing information.

use hammertime_common::geometry::BankId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A DDR command as recorded on the trace.
///
/// Structural mirror of the device model's `DdrCommand` (which this
/// crate cannot depend on); `hammertime-dram` provides lossless
/// conversions in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmdEvent {
    /// Activate `row` in `bank`.
    Act {
        /// Target bank.
        bank: BankId,
        /// In-bank row index.
        row: u32,
    },
    /// Precharge the open row in `bank`.
    Pre {
        /// Target bank.
        bank: BankId,
    },
    /// Precharge every bank in `rank` of `channel`.
    PreAll {
        /// Target channel.
        channel: u32,
        /// Target rank.
        rank: u32,
    },
    /// Read burst at `col` of the open row in `bank`.
    Rd {
        /// Target bank.
        bank: BankId,
        /// Column burst index.
        col: u32,
        /// Implicit precharge after the burst (RDA).
        auto_pre: bool,
    },
    /// Write burst at `col` of the open row in `bank`.
    Wr {
        /// Target bank.
        bank: BankId,
        /// Column burst index.
        col: u32,
        /// Implicit precharge after the burst (WRA).
        auto_pre: bool,
    },
    /// All-bank auto-refresh for one rank.
    Ref {
        /// Target channel.
        channel: u32,
        /// Target rank.
        rank: u32,
    },
    /// Refresh every potential victim within `radius` of `row`.
    RefNeighbors {
        /// Bank containing the aggressor.
        bank: BankId,
        /// Aggressor row.
        row: u32,
        /// Blast radius (rows each side).
        radius: u32,
    },
}

impl CmdEvent {
    /// Short mnemonic, as a bus trace would print it.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CmdEvent::Act { .. } => "ACT",
            CmdEvent::Pre { .. } => "PRE",
            CmdEvent::PreAll { .. } => "PREA",
            CmdEvent::Rd {
                auto_pre: false, ..
            } => "RD",
            CmdEvent::Rd { auto_pre: true, .. } => "RDA",
            CmdEvent::Wr {
                auto_pre: false, ..
            } => "WR",
            CmdEvent::Wr { auto_pre: true, .. } => "WRA",
            CmdEvent::Ref { .. } => "REF",
            CmdEvent::RefNeighbors { .. } => "REFN",
        }
    }
}

/// One observable action of the simulated stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A DRAM device model came up. `config_json` is the device's full
    /// serialized `DramConfig` (tracer field rendered as `null`), which
    /// makes the trace self-describing: the replay harness rebuilds an
    /// identical device — same geometry, timing, disturbance model,
    /// fault plan, and seed — from this event alone.
    DeviceReset {
        /// JSON-serialized `DramConfig` of the device.
        config_json: String,
    },
    /// A DDR command was accepted by the device.
    Command {
        /// The command, as seen on the bus.
        cmd: CmdEvent,
    },
    /// Disturbance flipped a bit. Emitted at the ACT (or batched
    /// settle) that sampled the flip, immediately after its
    /// [`Event::Command`].
    Flip {
        /// Flat bank index of the victim.
        flat_bank: u64,
        /// Logical (post-remap) victim row.
        victim_row: u32,
        /// Logical aggressor row.
        aggressor_row: u32,
        /// Flipped bit index within the row.
        bit: u64,
    },
    /// The host asked the device whether a row has decayed past its
    /// retention margin. Recorded (with the answer) because the check
    /// mutates the device's decay counter, so replay must repeat it.
    RetentionCheck {
        /// Bank holding the row.
        bank: BankId,
        /// Logical row index.
        row: u32,
        /// Retention margin as a fraction of tREFW.
        margin: f64,
        /// Whether the device reported decay.
        decayed: bool,
    },
    /// The in-DRAM TRR engine refreshed a suspected victim row,
    /// piggybacked on a REF.
    TrrRefresh {
        /// Flat bank index.
        flat_bank: u64,
        /// Refreshed (logical) row.
        row: u32,
    },
    /// An ACT_COUNT overflow interrupt was delivered to the host OS
    /// (paper §4.2).
    ActInterrupt {
        /// Channel whose counter overflowed.
        channel: u32,
        /// Cycle the overflow occurred.
        raised_at: u64,
        /// Delivery latency in cycles (record cycle − `raised_at`).
        latency: u64,
    },
    /// A software-issued targeted `refresh` instruction reached the
    /// controller (paper §4.1).
    RefreshInstr {
        /// Target cache line.
        line: u64,
        /// Whether the controller NACKed it (injected fault).
        nacked: bool,
    },
    /// The OS remapped a victim frame away from its aggressor
    /// (software defense action).
    Remap {
        /// Frame number before the remap.
        frame: u64,
        /// Frame number after the remap.
        new_frame: u64,
    },
    /// A fault clock fired (chaos plan): the component misbehaved on
    /// purpose.
    FaultInjected {
        /// `FaultKind` name, kebab-case.
        kind: String,
    },
    /// The scheduler hit an illegal state and wedged the controller
    /// instead of panicking.
    SchedulerWedge {
        /// The wedge diagnostic.
        message: String,
    },
    /// A traced DRAM device went down; `stats_json` is its final
    /// serialized `DramStats`. The replay harness asserts its rebuilt
    /// device reproduces these counters exactly.
    DeviceStats {
        /// JSON-serialized final `DramStats` of the device.
        stats_json: String,
    },
}

impl Event {
    /// Short static name of the variant, for diffing and `trace stats`.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::DeviceReset { .. } => "device-reset",
            Event::Command { .. } => "command",
            Event::Flip { .. } => "flip",
            Event::RetentionCheck { .. } => "retention-check",
            Event::TrrRefresh { .. } => "trr-refresh",
            Event::ActInterrupt { .. } => "act-interrupt",
            Event::RefreshInstr { .. } => "refresh-instr",
            Event::Remap { .. } => "remap",
            Event::FaultInjected { .. } => "fault-injected",
            Event::SchedulerWedge { .. } => "scheduler-wedge",
            Event::DeviceStats { .. } => "device-stats",
        }
    }
}

/// A cycle-stamped event: one line of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulation cycle the event was recorded at.
    pub cycle: u64,
    /// The event.
    pub event: Event,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} ", self.cycle)?;
        match &self.event {
            Event::Command { cmd } => write!(f, "{} {:?}", cmd.mnemonic(), cmd),
            other => write!(f, "{} {:?}", other.kind(), other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let bank = BankId {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
        };
        let events = [
            Event::DeviceReset {
                config_json: "{}".into(),
            },
            Event::Command {
                cmd: CmdEvent::Pre { bank },
            },
            Event::Flip {
                flat_bank: 0,
                victim_row: 1,
                aggressor_row: 2,
                bit: 3,
            },
            Event::RetentionCheck {
                bank,
                row: 0,
                margin: 1.0,
                decayed: false,
            },
            Event::TrrRefresh {
                flat_bank: 0,
                row: 0,
            },
            Event::ActInterrupt {
                channel: 0,
                raised_at: 0,
                latency: 0,
            },
            Event::RefreshInstr {
                line: 0,
                nacked: false,
            },
            Event::Remap {
                frame: 0,
                new_frame: 1,
            },
            Event::FaultInjected {
                kind: "ghost-ref".into(),
            },
            Event::SchedulerWedge {
                message: "boom".into(),
            },
            Event::DeviceStats {
                stats_json: "{}".into(),
            },
        ];
        let kinds: std::collections::HashSet<_> = events.iter().map(Event::kind).collect();
        assert_eq!(kinds.len(), events.len());
    }

    #[test]
    fn record_serde_round_trips() {
        let rec = TraceRecord {
            cycle: 42,
            event: Event::Command {
                cmd: CmdEvent::Act {
                    bank: BankId {
                        channel: 1,
                        rank: 0,
                        bank_group: 2,
                        bank: 3,
                    },
                    row: 77,
                },
            },
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);
    }
}
