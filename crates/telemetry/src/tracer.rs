//! The `Tracer` handle and its pluggable sinks.
//!
//! A [`Tracer`] is a cheaply clonable handle (an `Arc`) shared by every
//! component of one simulated machine: the DRAM device, the memory
//! controller, and the machine itself all hold clones and feed the same
//! sink, so a trace interleaves all layers in emission order. Configs
//! carry `Option<Tracer>`; `None` is the default and the contract is
//! *zero cost when off* — the only overhead on the hot path is one
//! `is_none()` check.
//!
//! Tracers deliberately do not round-trip through serde: a sink is a
//! live resource (a buffer or an open file), not data. The manual
//! impls below serialize any tracer as `null` — so a traced component
//! config serializes exactly like an untraced one — and refuse to
//! deserialize anything but `null` (which the blanket `Option` impl
//! maps to `None` before this impl is ever consulted).

use crate::codec;
use crate::event::{Event, TraceRecord};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use hammertime_common::{Cycle, Error, Result};
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Where emitted records go.
enum Sink {
    /// Unbounded in-memory buffer; drained with
    /// [`Tracer::take_records`].
    Buffer(Vec<TraceRecord>),
    /// Bounded in-memory ring: keeps the most recent `cap` records,
    /// counting what it evicts.
    Ring {
        buf: VecDeque<TraceRecord>,
        cap: usize,
        dropped: u64,
    },
    /// Streaming JSONL file (header line already written).
    Jsonl(Writer),
    /// Streaming compact binary file (header already written).
    Binary(Writer),
}

/// A buffered file writer that remembers its first I/O error instead
/// of returning one per emit (emit sites cannot propagate errors).
struct Writer {
    out: BufWriter<File>,
    err: Option<String>,
}

impl Writer {
    fn write_all(&mut self, bytes: &[u8]) {
        if self.err.is_none() {
            if let Err(e) = self.out.write_all(bytes) {
                self.err = Some(e.to_string());
            }
        }
    }

    fn flush(&mut self) -> Result<()> {
        if let Err(e) = self.out.flush() {
            self.err.get_or_insert_with(|| e.to_string());
        }
        match &self.err {
            Some(e) => Err(Error::Config(format!("trace sink: {e}"))),
            None => Ok(()),
        }
    }
}

struct Inner {
    sink: Mutex<Sink>,
    metrics: Mutex<MetricsRegistry>,
}

/// A shared handle to one trace sink plus one metrics registry.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Tracer {
    fn with_sink(sink: Sink) -> Tracer {
        Tracer {
            inner: Arc::new(Inner {
                sink: Mutex::new(sink),
                metrics: Mutex::new(MetricsRegistry::default()),
            }),
        }
    }

    /// Unbounded in-memory sink. The workhorse for `trace record` and
    /// tests: run, then [`Tracer::take_records`].
    pub fn buffer() -> Tracer {
        Tracer::with_sink(Sink::Buffer(Vec::new()))
    }

    /// Bounded in-memory ring keeping the most recent `cap` records;
    /// older records are evicted and counted by [`Tracer::dropped`].
    /// `cap` must be nonzero.
    pub fn ring(cap: usize) -> Tracer {
        assert!(cap > 0, "ring sink capacity must be nonzero");
        Tracer::with_sink(Sink::Ring {
            buf: VecDeque::with_capacity(cap),
            cap,
            dropped: 0,
        })
    }

    /// Streaming JSONL sink: one header line, then one JSON record per
    /// line. Human-greppable.
    pub fn jsonl_file(path: &Path) -> Result<Tracer> {
        let mut w = open(path)?;
        w.write_all(codec::jsonl_header().as_bytes());
        Ok(Tracer::with_sink(Sink::Jsonl(w)))
    }

    /// Streaming compact binary sink (see [`crate::codec`] for the
    /// format). Roughly 10× smaller than JSONL.
    pub fn binary_file(path: &Path) -> Result<Tracer> {
        let mut w = open(path)?;
        w.write_all(&codec::binary_header());
        Ok(Tracer::with_sink(Sink::Binary(w)))
    }

    /// Appends one cycle-stamped event to the sink.
    pub fn emit(&self, cycle: Cycle, event: Event) {
        let rec = TraceRecord {
            cycle: cycle.raw(),
            event,
        };
        let mut sink = self.inner.sink.lock().expect("trace sink poisoned");
        match &mut *sink {
            Sink::Buffer(buf) => buf.push(rec),
            Sink::Ring { buf, cap, dropped } => {
                if buf.len() == *cap {
                    buf.pop_front();
                    *dropped += 1;
                }
                buf.push_back(rec);
            }
            Sink::Jsonl(w) => {
                let mut line = serde_json::to_string(&rec).expect("record serializes");
                line.push('\n');
                w.write_all(line.as_bytes());
            }
            Sink::Binary(w) => {
                let mut bytes = Vec::new();
                codec::encode_record(&rec, &mut bytes);
                w.write_all(&bytes);
            }
        }
    }

    /// Drains and returns the in-memory records (emission order).
    /// File sinks return an empty vec — their records are on disk.
    pub fn take_records(&self) -> Vec<TraceRecord> {
        let mut sink = self.inner.sink.lock().expect("trace sink poisoned");
        match &mut *sink {
            Sink::Buffer(buf) => std::mem::take(buf),
            Sink::Ring { buf, .. } => buf.drain(..).collect(),
            Sink::Jsonl(_) | Sink::Binary(_) => Vec::new(),
        }
    }

    /// Records evicted by a ring sink so far (0 for other sinks).
    pub fn dropped(&self) -> u64 {
        match &*self.inner.sink.lock().expect("trace sink poisoned") {
            Sink::Ring { dropped, .. } => *dropped,
            _ => 0,
        }
    }

    /// Flushes a file sink and surfaces any deferred I/O error.
    /// In-memory sinks always succeed.
    pub fn flush(&self) -> Result<()> {
        match &mut *self.inner.sink.lock().expect("trace sink poisoned") {
            Sink::Jsonl(w) | Sink::Binary(w) => w.flush(),
            _ => Ok(()),
        }
    }

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.metrics(|m| m.counter_add(name, delta));
    }

    /// Sets counter `name` to `value`.
    pub fn counter_set(&self, name: &str, value: u64) {
        self.metrics(|m| m.counter_set(name, value));
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.metrics(|m| m.observe(name, value));
    }

    /// Snapshot of every counter and histogram recorded so far.
    pub fn snapshot_metrics(&self) -> MetricsSnapshot {
        let m = self.inner.metrics.lock().expect("trace metrics poisoned");
        m.snapshot()
    }

    fn metrics(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        let mut m = self.inner.metrics.lock().expect("trace metrics poisoned");
        f(&mut m);
    }
}

fn open(path: &Path) -> Result<Writer> {
    let file = File::create(path)
        .map_err(|e| Error::Config(format!("create trace file {}: {e}", path.display())))?;
    Ok(Writer {
        out: BufWriter::new(file),
        err: None,
    })
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &*self.inner.sink.lock().expect("trace sink poisoned") {
            Sink::Buffer(b) => format!("buffer[{}]", b.len()),
            Sink::Ring { buf, cap, dropped } => {
                format!("ring[{}/{cap}, dropped {dropped}]", buf.len())
            }
            Sink::Jsonl(_) => "jsonl".to_string(),
            Sink::Binary(_) => "binary".to_string(),
        };
        write!(f, "Tracer({kind})")
    }
}

// A Tracer is a live resource, not data: serialize as `null` (so a
// traced config's JSON is byte-identical to an untraced one), never
// deserialize. `Option<Tracer>` round-trips as `null` ↔ `None` via the
// blanket Option impls, which handle `null` before consulting these.
impl serde::Serialize for Tracer {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("null");
    }
}

impl serde::Deserialize for Tracer {
    fn deserialize_json(_v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Err(serde::Error::expected(
            "null (a tracer is a live sink and cannot be deserialized)",
            "Tracer",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn flip(n: u64) -> Event {
        Event::Flip {
            flat_bank: n,
            victim_row: 0,
            aggressor_row: 0,
            bit: n,
        }
    }

    #[test]
    fn buffer_keeps_everything_in_order() {
        let t = Tracer::buffer();
        for n in 0..5 {
            t.emit(Cycle(n), flip(n));
        }
        let recs = t.take_records();
        assert_eq!(recs.len(), 5);
        assert!(recs.windows(2).all(|w| w[0].cycle < w[1].cycle));
        assert_eq!(t.dropped(), 0);
        assert!(t.take_records().is_empty(), "take drains");
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let t = Tracer::ring(4);
        for n in 0..10 {
            t.emit(Cycle(n), flip(n));
        }
        assert_eq!(t.dropped(), 6);
        let recs = t.take_records();
        assert_eq!(recs.len(), 4);
        let cycles: Vec<u64> = recs.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "most recent records survive");
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Tracer::buffer();
        let u = t.clone();
        t.emit(Cycle(1), flip(1));
        u.emit(Cycle(2), flip(2));
        u.counter_add("n", 1);
        t.counter_add("n", 2);
        assert_eq!(t.take_records().len(), 2);
        assert_eq!(u.snapshot_metrics().counters["n"], 3);
    }

    #[test]
    fn tracer_serializes_as_null() {
        let some = Some(Tracer::buffer());
        let none: Option<Tracer> = None;
        assert_eq!(serde_json::to_string(&some).unwrap(), "null");
        assert_eq!(serde_json::to_string(&none).unwrap(), "null");
        let back: Option<Tracer> = serde_json::from_str("null").unwrap();
        assert!(back.is_none());
        assert!(serde_json::from_str::<Tracer>("{}").is_err());
    }
}
