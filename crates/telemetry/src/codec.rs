//! On-disk command-trace formats: compact binary and JSONL.
//!
//! Both formats carry the workspace-wide
//! [`hammertime_common::traceformat::TraceHeader`] and the same record
//! stream, and convert losslessly into each other:
//!
//! - **JSONL** — first line is the header JSON, every following line
//!   one [`TraceRecord`] JSON. Greppable, diffable with text tools.
//! - **Binary** — magic `HTRB`, `u32` version, `u8` kind, then
//!   fixed-layout little-endian records until EOF. Roughly an order of
//!   magnitude smaller; the streaming layout (no record count up
//!   front) lets sinks append without seeking.
//!
//! [`read_path`] sniffs the leading magic bytes, so callers never
//! specify the format when loading.

use crate::event::{CmdEvent, Event, TraceRecord};
use hammertime_common::geometry::BankId;
use hammertime_common::traceformat::{TraceHeader, TraceKind, TRACE_VERSION};
use hammertime_common::{Error, Result};
use std::fs;
use std::path::Path;

/// Magic bytes opening a binary command trace.
pub const BINARY_MAGIC: &[u8; 4] = b"HTRB";

/// A complete command trace: header plus every record, in emission
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandTrace {
    /// Shared trace header (`kind` must be [`TraceKind::Commands`]).
    pub header: TraceHeader,
    /// Cycle-stamped records in emission order.
    pub records: Vec<TraceRecord>,
}

impl CommandTrace {
    /// Wraps records in a current-version commands header.
    pub fn new(records: Vec<TraceRecord>) -> CommandTrace {
        CommandTrace {
            header: TraceHeader::commands(),
            records,
        }
    }
}

/// The JSONL header line (with trailing newline) a streaming sink
/// writes on open.
pub fn jsonl_header() -> String {
    let mut line = serde_json::to_string(&TraceHeader::commands()).expect("header serializes");
    line.push('\n');
    line
}

/// The binary header bytes a streaming sink writes on open.
pub fn binary_header() -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.extend_from_slice(BINARY_MAGIC);
    out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
    out.push(kind_tag(TraceKind::Commands));
    out
}

/// Writes `trace` to `path`, picking the format by extension:
/// `.jsonl`/`.json` → JSONL, anything else → binary.
pub fn write_path(path: &Path, trace: &CommandTrace) -> Result<()> {
    let jsonl = matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("jsonl") | Some("json")
    );
    let bytes = if jsonl {
        to_jsonl(trace).into_bytes()
    } else {
        to_binary(trace)
    };
    fs::write(path, bytes)
        .map_err(|e| Error::Config(format!("write trace {}: {e}", path.display())))
}

/// Reads a command trace from `path`, sniffing binary vs JSONL by the
/// leading magic bytes.
pub fn read_path(path: &Path) -> Result<CommandTrace> {
    let bytes =
        fs::read(path).map_err(|e| Error::Config(format!("read trace {}: {e}", path.display())))?;
    if bytes.starts_with(BINARY_MAGIC) {
        from_binary(&bytes)
    } else {
        let text = String::from_utf8(bytes)
            .map_err(|e| Error::Config(format!("trace {} is not UTF-8: {e}", path.display())))?;
        from_jsonl(&text)
    }
}

/// Renders `trace` as JSONL text.
pub fn to_jsonl(trace: &CommandTrace) -> String {
    let mut out = serde_json::to_string(&trace.header).expect("header serializes");
    out.push('\n');
    for rec in &trace.records {
        out.push_str(&serde_json::to_string(rec).expect("record serializes"));
        out.push('\n');
    }
    out
}

/// Parses JSONL text into a validated command trace.
pub fn from_jsonl(text: &str) -> Result<CommandTrace> {
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| Error::Config("empty trace file".into()))?;
    let header: TraceHeader = serde_json::from_str(header_line)
        .map_err(|e| Error::Config(format!("bad trace header: {e}")))?;
    header.validate(TraceKind::Commands)?;
    let mut records = Vec::new();
    for (n, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let rec: TraceRecord = serde_json::from_str(line)
            .map_err(|e| Error::Config(format!("bad trace record on line {}: {e}", n + 2)))?;
        records.push(rec);
    }
    Ok(CommandTrace { header, records })
}

/// Renders `trace` as compact binary bytes.
pub fn to_binary(trace: &CommandTrace) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + trace.records.len() * 24);
    out.extend_from_slice(BINARY_MAGIC);
    out.extend_from_slice(&trace.header.version.to_le_bytes());
    out.push(kind_tag(trace.header.kind));
    for rec in &trace.records {
        encode_record(rec, &mut out);
    }
    out
}

/// Parses binary bytes into a validated command trace.
pub fn from_binary(bytes: &[u8]) -> Result<CommandTrace> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != BINARY_MAGIC {
        return Err(Error::Config("not a binary hammertime trace".into()));
    }
    let version = r.u32()?;
    let kind = match r.u8()? {
        0 => TraceKind::Ops,
        1 => TraceKind::Commands,
        other => return Err(Error::Config(format!("unknown trace kind tag {other}"))),
    };
    let header = TraceHeader {
        magic: hammertime_common::TRACE_MAGIC.to_string(),
        version,
        kind,
    };
    header.validate(TraceKind::Commands)?;
    let mut records = Vec::new();
    while !r.done() {
        records.push(decode_record(&mut r)?);
    }
    Ok(CommandTrace { header, records })
}

fn kind_tag(kind: TraceKind) -> u8 {
    match kind {
        TraceKind::Ops => 0,
        TraceKind::Commands => 1,
    }
}

// --- binary record layout -------------------------------------------------
//
// record  := u64 cycle, u8 event_tag, payload
// strings := u32 length, utf-8 bytes
// f64     := IEEE-754 bits as u64
// BankId  := u32 channel, u32 rank, u32 bank_group, u32 bank

const TAG_DEVICE_RESET: u8 = 0;
const TAG_COMMAND: u8 = 1;
const TAG_FLIP: u8 = 2;
const TAG_RETENTION_CHECK: u8 = 3;
const TAG_TRR_REFRESH: u8 = 4;
const TAG_ACT_INTERRUPT: u8 = 5;
const TAG_REFRESH_INSTR: u8 = 6;
const TAG_REMAP: u8 = 7;
const TAG_FAULT_INJECTED: u8 = 8;
const TAG_SCHEDULER_WEDGE: u8 = 9;
const TAG_DEVICE_STATS: u8 = 10;

const CMD_ACT: u8 = 0;
const CMD_PRE: u8 = 1;
const CMD_PRE_ALL: u8 = 2;
const CMD_RD: u8 = 3;
const CMD_WR: u8 = 4;
const CMD_REF: u8 = 5;
const CMD_REF_NEIGHBORS: u8 = 6;

/// Appends the binary encoding of one record.
pub(crate) fn encode_record(rec: &TraceRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&rec.cycle.to_le_bytes());
    match &rec.event {
        Event::DeviceReset { config_json } => {
            out.push(TAG_DEVICE_RESET);
            put_str(out, config_json);
        }
        Event::Command { cmd } => {
            out.push(TAG_COMMAND);
            encode_cmd(cmd, out);
        }
        Event::Flip {
            flat_bank,
            victim_row,
            aggressor_row,
            bit,
        } => {
            out.push(TAG_FLIP);
            out.extend_from_slice(&flat_bank.to_le_bytes());
            out.extend_from_slice(&victim_row.to_le_bytes());
            out.extend_from_slice(&aggressor_row.to_le_bytes());
            out.extend_from_slice(&bit.to_le_bytes());
        }
        Event::RetentionCheck {
            bank,
            row,
            margin,
            decayed,
        } => {
            out.push(TAG_RETENTION_CHECK);
            put_bank(out, bank);
            out.extend_from_slice(&row.to_le_bytes());
            out.extend_from_slice(&margin.to_bits().to_le_bytes());
            out.push(u8::from(*decayed));
        }
        Event::TrrRefresh { flat_bank, row } => {
            out.push(TAG_TRR_REFRESH);
            out.extend_from_slice(&flat_bank.to_le_bytes());
            out.extend_from_slice(&row.to_le_bytes());
        }
        Event::ActInterrupt {
            channel,
            raised_at,
            latency,
        } => {
            out.push(TAG_ACT_INTERRUPT);
            out.extend_from_slice(&channel.to_le_bytes());
            out.extend_from_slice(&raised_at.to_le_bytes());
            out.extend_from_slice(&latency.to_le_bytes());
        }
        Event::RefreshInstr { line, nacked } => {
            out.push(TAG_REFRESH_INSTR);
            out.extend_from_slice(&line.to_le_bytes());
            out.push(u8::from(*nacked));
        }
        Event::Remap { frame, new_frame } => {
            out.push(TAG_REMAP);
            out.extend_from_slice(&frame.to_le_bytes());
            out.extend_from_slice(&new_frame.to_le_bytes());
        }
        Event::FaultInjected { kind } => {
            out.push(TAG_FAULT_INJECTED);
            put_str(out, kind);
        }
        Event::SchedulerWedge { message } => {
            out.push(TAG_SCHEDULER_WEDGE);
            put_str(out, message);
        }
        Event::DeviceStats { stats_json } => {
            out.push(TAG_DEVICE_STATS);
            put_str(out, stats_json);
        }
    }
}

fn encode_cmd(cmd: &CmdEvent, out: &mut Vec<u8>) {
    match cmd {
        CmdEvent::Act { bank, row } => {
            out.push(CMD_ACT);
            put_bank(out, bank);
            out.extend_from_slice(&row.to_le_bytes());
        }
        CmdEvent::Pre { bank } => {
            out.push(CMD_PRE);
            put_bank(out, bank);
        }
        CmdEvent::PreAll { channel, rank } => {
            out.push(CMD_PRE_ALL);
            out.extend_from_slice(&channel.to_le_bytes());
            out.extend_from_slice(&rank.to_le_bytes());
        }
        CmdEvent::Rd {
            bank,
            col,
            auto_pre,
        } => {
            out.push(CMD_RD);
            put_bank(out, bank);
            out.extend_from_slice(&col.to_le_bytes());
            out.push(u8::from(*auto_pre));
        }
        CmdEvent::Wr {
            bank,
            col,
            auto_pre,
        } => {
            out.push(CMD_WR);
            put_bank(out, bank);
            out.extend_from_slice(&col.to_le_bytes());
            out.push(u8::from(*auto_pre));
        }
        CmdEvent::Ref { channel, rank } => {
            out.push(CMD_REF);
            out.extend_from_slice(&channel.to_le_bytes());
            out.extend_from_slice(&rank.to_le_bytes());
        }
        CmdEvent::RefNeighbors { bank, row, radius } => {
            out.push(CMD_REF_NEIGHBORS);
            put_bank(out, bank);
            out.extend_from_slice(&row.to_le_bytes());
            out.extend_from_slice(&radius.to_le_bytes());
        }
    }
}

fn decode_record(r: &mut Reader<'_>) -> Result<TraceRecord> {
    let cycle = r.u64()?;
    let event = match r.u8()? {
        TAG_DEVICE_RESET => Event::DeviceReset {
            config_json: r.string()?,
        },
        TAG_COMMAND => Event::Command {
            cmd: decode_cmd(r)?,
        },
        TAG_FLIP => Event::Flip {
            flat_bank: r.u64()?,
            victim_row: r.u32()?,
            aggressor_row: r.u32()?,
            bit: r.u64()?,
        },
        TAG_RETENTION_CHECK => Event::RetentionCheck {
            bank: r.bank()?,
            row: r.u32()?,
            margin: f64::from_bits(r.u64()?),
            decayed: r.u8()? != 0,
        },
        TAG_TRR_REFRESH => Event::TrrRefresh {
            flat_bank: r.u64()?,
            row: r.u32()?,
        },
        TAG_ACT_INTERRUPT => Event::ActInterrupt {
            channel: r.u32()?,
            raised_at: r.u64()?,
            latency: r.u64()?,
        },
        TAG_REFRESH_INSTR => Event::RefreshInstr {
            line: r.u64()?,
            nacked: r.u8()? != 0,
        },
        TAG_REMAP => Event::Remap {
            frame: r.u64()?,
            new_frame: r.u64()?,
        },
        TAG_FAULT_INJECTED => Event::FaultInjected { kind: r.string()? },
        TAG_SCHEDULER_WEDGE => Event::SchedulerWedge {
            message: r.string()?,
        },
        TAG_DEVICE_STATS => Event::DeviceStats {
            stats_json: r.string()?,
        },
        other => return Err(Error::Config(format!("unknown event tag {other}"))),
    };
    Ok(TraceRecord { cycle, event })
}

fn decode_cmd(r: &mut Reader<'_>) -> Result<CmdEvent> {
    Ok(match r.u8()? {
        CMD_ACT => CmdEvent::Act {
            bank: r.bank()?,
            row: r.u32()?,
        },
        CMD_PRE => CmdEvent::Pre { bank: r.bank()? },
        CMD_PRE_ALL => CmdEvent::PreAll {
            channel: r.u32()?,
            rank: r.u32()?,
        },
        CMD_RD => CmdEvent::Rd {
            bank: r.bank()?,
            col: r.u32()?,
            auto_pre: r.u8()? != 0,
        },
        CMD_WR => CmdEvent::Wr {
            bank: r.bank()?,
            col: r.u32()?,
            auto_pre: r.u8()? != 0,
        },
        CMD_REF => CmdEvent::Ref {
            channel: r.u32()?,
            rank: r.u32()?,
        },
        CMD_REF_NEIGHBORS => CmdEvent::RefNeighbors {
            bank: r.bank()?,
            row: r.u32()?,
            radius: r.u32()?,
        },
        other => return Err(Error::Config(format!("unknown command tag {other}"))),
    })
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bank(out: &mut Vec<u8>, b: &BankId) {
    out.extend_from_slice(&b.channel.to_le_bytes());
    out.extend_from_slice(&b.rank.to_le_bytes());
    out.extend_from_slice(&b.bank_group.to_le_bytes());
    out.extend_from_slice(&b.bank.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| Error::Config("truncated binary trace".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| Error::Config(format!("non-UTF-8 string in binary trace: {e}")))
    }

    fn bank(&mut self) -> Result<BankId> {
        Ok(BankId {
            channel: self.u32()?,
            rank: self.u32()?,
            bank_group: self.u32()?,
            bank: self.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BankId {
        BankId {
            channel: 1,
            rank: 0,
            bank_group: 2,
            bank: 3,
        }
    }

    /// One record of every event variant (and every command shape).
    fn exhaustive_records() -> Vec<TraceRecord> {
        let cmds = vec![
            CmdEvent::Act {
                bank: bank(),
                row: 9,
            },
            CmdEvent::Pre { bank: bank() },
            CmdEvent::PreAll {
                channel: 0,
                rank: 1,
            },
            CmdEvent::Rd {
                bank: bank(),
                col: 5,
                auto_pre: true,
            },
            CmdEvent::Wr {
                bank: bank(),
                col: 6,
                auto_pre: false,
            },
            CmdEvent::Ref {
                channel: 1,
                rank: 0,
            },
            CmdEvent::RefNeighbors {
                bank: bank(),
                row: 12,
                radius: 2,
            },
        ];
        let mut events: Vec<Event> = cmds.into_iter().map(|cmd| Event::Command { cmd }).collect();
        events.extend([
            Event::DeviceReset {
                config_json: "{\"seed\":1}".into(),
            },
            Event::Flip {
                flat_bank: 3,
                victim_row: 7,
                aggressor_row: 8,
                bit: 1 << 40,
            },
            Event::RetentionCheck {
                bank: bank(),
                row: 4,
                margin: 1.5,
                decayed: true,
            },
            Event::TrrRefresh {
                flat_bank: 2,
                row: 11,
            },
            Event::ActInterrupt {
                channel: 0,
                raised_at: 100,
                latency: 7,
            },
            Event::RefreshInstr {
                line: 0xdead,
                nacked: true,
            },
            Event::Remap {
                frame: 10,
                new_frame: 20,
            },
            Event::FaultInjected {
                kind: "ghost-ref".into(),
            },
            Event::SchedulerWedge {
                message: "illegal \"state\"\nwith newline".into(),
            },
            Event::DeviceStats {
                stats_json: "{\"acts\":5}".into(),
            },
        ]);
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TraceRecord {
                cycle: i as u64 * 17,
                event,
            })
            .collect()
    }

    #[test]
    fn binary_round_trips_every_variant() {
        let trace = CommandTrace::new(exhaustive_records());
        let bytes = to_binary(&trace);
        let back = from_binary(&bytes).expect("binary parses");
        assert_eq!(trace, back);
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        let trace = CommandTrace::new(exhaustive_records());
        let text = to_jsonl(&trace);
        let back = from_jsonl(&text).expect("jsonl parses");
        assert_eq!(trace, back);
    }

    #[test]
    fn binary_and_jsonl_convert_losslessly() {
        let trace = CommandTrace::new(exhaustive_records());
        // binary -> parse -> jsonl -> parse: still identical.
        let via_binary = from_binary(&to_binary(&trace)).unwrap();
        let via_both = from_jsonl(&to_jsonl(&via_binary)).unwrap();
        assert_eq!(trace, via_both);
    }

    #[test]
    fn binary_is_substantially_smaller_than_jsonl() {
        let mut records = Vec::new();
        for i in 0..500u64 {
            records.push(TraceRecord {
                cycle: i,
                event: Event::Command {
                    cmd: CmdEvent::Act {
                        bank: bank(),
                        row: (i % 128) as u32,
                    },
                },
            });
        }
        let trace = CommandTrace::new(records);
        let bin = to_binary(&trace).len();
        let jsonl = to_jsonl(&trace).len();
        assert!(
            bin * 3 < jsonl,
            "binary ({bin} B) should be well under a third of JSONL ({jsonl} B)"
        );
    }

    #[test]
    fn truncated_and_corrupt_inputs_are_rejected() {
        let trace = CommandTrace::new(exhaustive_records());
        let bytes = to_binary(&trace);
        assert!(from_binary(&bytes[..bytes.len() - 3]).is_err());
        assert!(from_binary(b"NOPE").is_err());
        assert!(from_jsonl("").is_err());
        assert!(from_jsonl("{\"magic\":\"HTRC\",\"version\":1,\"kind\":\"Ops\"}\n").is_err());
    }
}
