//! Trace diffing: first divergence plus per-kind deltas.
//!
//! Traces from this simulator are deterministic, so the interesting
//! question is never "how similar are these" but "where *exactly* do
//! they part ways". [`diff_traces`] walks two record streams in step
//! and reports (a) the first index at which they disagree — with both
//! records and their cycle stamps — and (b) per-event-kind (and
//! per-command-mnemonic) record counts for each trace, so a
//! one-glance summary shows *what class* of behaviour changed (e.g.
//! "REF count differs" vs "flips differ").

use crate::event::{Event, TraceRecord};
use std::collections::BTreeMap;
use std::fmt;

/// The first point at which two traces disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Record index (0-based) of the disagreement.
    pub index: usize,
    /// The record in trace A (`None` if A ended first).
    pub a: Option<TraceRecord>,
    /// The record in trace B (`None` if B ended first).
    pub b: Option<TraceRecord>,
}

/// Result of comparing two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// Record count of trace A.
    pub len_a: usize,
    /// Record count of trace B.
    pub len_b: usize,
    /// First disagreement, if any.
    pub first_divergence: Option<Divergence>,
    /// Per-kind record counts `(a, b)`, only for kinds whose counts
    /// differ. Command records additionally count under
    /// `command:MNEMONIC` keys.
    pub kind_deltas: BTreeMap<String, (u64, u64)>,
}

impl TraceDiff {
    /// True when the traces are identical record for record.
    pub fn is_empty(&self) -> bool {
        self.first_divergence.is_none() && self.len_a == self.len_b
    }
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "traces identical ({} records)", self.len_a);
        }
        writeln!(f, "traces differ: {} vs {} records", self.len_a, self.len_b)?;
        if let Some(d) = &self.first_divergence {
            writeln!(f, "first divergence at record {}:", d.index)?;
            match &d.a {
                Some(r) => writeln!(f, "  a: {r}")?,
                None => writeln!(f, "  a: <ended>")?,
            }
            match &d.b {
                Some(r) => writeln!(f, "  b: {r}")?,
                None => writeln!(f, "  b: <ended>")?,
            }
        }
        if !self.kind_deltas.is_empty() {
            writeln!(f, "per-kind count deltas (a vs b):")?;
            for (kind, (a, b)) in &self.kind_deltas {
                writeln!(f, "  {kind}: {a} vs {b}")?;
            }
        }
        Ok(())
    }
}

/// Tallies records by kind; commands additionally by mnemonic.
fn kind_counts(records: &[TraceRecord]) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for rec in records {
        *counts.entry(rec.event.kind().to_string()).or_insert(0) += 1;
        if let Event::Command { cmd } = &rec.event {
            *counts
                .entry(format!("command:{}", cmd.mnemonic()))
                .or_insert(0) += 1;
        }
    }
    counts
}

/// Compares two traces record by record.
pub fn diff_traces(a: &[TraceRecord], b: &[TraceRecord]) -> TraceDiff {
    let first_divergence = a
        .iter()
        .zip(b.iter())
        .position(|(ra, rb)| ra != rb)
        .or_else(|| (a.len() != b.len()).then(|| a.len().min(b.len())))
        .map(|index| Divergence {
            index,
            a: a.get(index).cloned(),
            b: b.get(index).cloned(),
        });

    let counts_a = kind_counts(a);
    let counts_b = kind_counts(b);
    let mut kind_deltas = BTreeMap::new();
    for key in counts_a.keys().chain(counts_b.keys()) {
        let ca = counts_a.get(key).copied().unwrap_or(0);
        let cb = counts_b.get(key).copied().unwrap_or(0);
        if ca != cb {
            kind_deltas.insert(key.clone(), (ca, cb));
        }
    }

    TraceDiff {
        len_a: a.len(),
        len_b: b.len(),
        first_divergence,
        kind_deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CmdEvent;
    use hammertime_common::geometry::BankId;

    fn rec(cycle: u64, row: u32) -> TraceRecord {
        TraceRecord {
            cycle,
            event: Event::Command {
                cmd: CmdEvent::Act {
                    bank: BankId {
                        channel: 0,
                        rank: 0,
                        bank_group: 0,
                        bank: 0,
                    },
                    row,
                },
            },
        }
    }

    #[test]
    fn identical_traces_diff_empty() {
        let a = vec![rec(1, 10), rec(2, 20)];
        let d = diff_traces(&a, &a.clone());
        assert!(d.is_empty());
        assert!(d.to_string().contains("identical"));
    }

    #[test]
    fn first_divergence_is_located() {
        let a = vec![rec(1, 10), rec(2, 20), rec(3, 30)];
        let mut b = a.clone();
        b[1] = rec(2, 99);
        let d = diff_traces(&a, &b);
        assert!(!d.is_empty());
        let div = d.first_divergence.expect("divergence");
        assert_eq!(div.index, 1);
        assert_eq!(div.a, Some(rec(2, 20)));
        assert_eq!(div.b, Some(rec(2, 99)));
        // Same kind counts on both sides: no deltas, but still a diff.
        assert!(d.kind_deltas.is_empty());
    }

    #[test]
    fn length_mismatch_diverges_at_shorter_end() {
        let a = vec![rec(1, 10), rec(2, 20)];
        let b = vec![rec(1, 10)];
        let d = diff_traces(&a, &b);
        let div = d.first_divergence.expect("divergence");
        assert_eq!(div.index, 1);
        assert_eq!(div.a, Some(rec(2, 20)));
        assert_eq!(div.b, None);
        assert_eq!(d.kind_deltas.get("command"), Some(&(2, 1)));
        assert_eq!(d.kind_deltas.get("command:ACT"), Some(&(2, 1)));
    }

    #[test]
    fn kind_deltas_group_by_mnemonic() {
        let a = vec![rec(1, 10)];
        let b = vec![TraceRecord {
            cycle: 1,
            event: Event::Command {
                cmd: CmdEvent::Ref {
                    channel: 0,
                    rank: 0,
                },
            },
        }];
        let d = diff_traces(&a, &b);
        assert_eq!(d.kind_deltas.get("command:ACT"), Some(&(1, 0)));
        assert_eq!(d.kind_deltas.get("command:REF"), Some(&(0, 1)));
        assert!(!d.kind_deltas.contains_key("command"), "equal counts");
    }
}
