//! Protocol-invariant checking for the hammertime simulator.
//!
//! The paper's controller primitives (ACT counters, targeted refresh,
//! isolation-aware mapping) and every defense built on them reason
//! about *when commands may issue*: tRRD/tFAW ACT spacing, refresh
//! deadlines, bank occupancy. A silent timing violation in the
//! simulated controller would invalidate each of those comparisons, so
//! this crate provides the oracle that keeps the rest of the workspace
//! honest:
//!
//! - [`Rule`] / [`Violation`]: the declarative invariant catalog —
//!   per-bank state-machine legality, per-bank timing, per-channel
//!   command/data-bus exclusivity, rank-level tRRD/tFAW/tRFC, refresh
//!   deadlines, and cross-layer conservation. Violations are
//!   structured and serializable (JSONL reports).
//! - [`InvariantChecker`]: an incremental shadow of the device's
//!   timing state, fed one [`CmdEvent`](hammertime_telemetry::CmdEvent)
//!   at a time. It mirrors the arithmetic of `hammertime-dram`'s bank
//!   and rank models *independently* (no shared code), so a bug in the
//!   device model cannot hide itself.
//! - [`lint_records`] / [`lint_trace`]: offline validation of a
//!   recorded [`CommandTrace`](hammertime_telemetry::CommandTrace) —
//!   the engine behind the `trace lint` CLI subcommand. Traces are
//!   self-describing (`DeviceReset` embeds the device config), so no
//!   out-of-band configuration is needed.
//! - [`ShadowChecker`]: the same engine as an opt-in live observer,
//!   threaded through `MemCtrlConfig`/`MachineConfig` exactly like the
//!   tracer — one `is_none()` branch when off, serializes as `null`.
//! - [`mutate`]: a mutation harness (drop/shift/insert/reorder
//!   commands in a recorded trace) proving each rule class actually
//!   fires — the lint of the lint.
//! - [`lint_domain_stripes`]: the OS-layer isolation invariant (no two
//!   domains own row stripes within one guard radius).
//!
//! This crate sits between `hammertime-dram` and `hammertime-memctrl`
//! in the dependency DAG: it can name device configs and commands, and
//! the controller can embed a [`ShadowChecker`].

#![warn(missing_docs)]

mod checker;
mod domain;
mod lint;
pub mod mutate;
mod rules;
mod shadow;

pub use checker::InvariantChecker;
pub use domain::lint_domain_stripes;
pub use lint::{lint_records, lint_trace, LintReport};
pub use rules::{Rule, RuleClass, Violation};
pub use shadow::ShadowChecker;

/// Maximum legal gap between consecutive REF commands to one rank, in
/// multiples of tREFI: JEDEC DDR4 allows up to 8 REFs to be postponed
/// (the "pull-in window"), so two REFs may never be more than 9×tREFI
/// apart.
pub const MAX_REF_GAP_TREFI: u64 = 9;
