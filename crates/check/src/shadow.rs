//! The live shadow observer: the invariant engine as an opt-in
//! controller sidecar.
//!
//! A [`ShadowChecker`] is threaded through `MemCtrlConfig` /
//! `MachineConfig` as `Option<ShadowChecker>`, exactly like the
//! tracer: `None` (the default) costs one `is_none()` branch per
//! issued command and nothing else, and the handle serializes as
//! `null` so a shadowed config's JSON equals an unshadowed one. The
//! controller feeds it every command it successfully issues; the
//! checker validates the stream against the same invariant catalog the
//! offline linter uses and accumulates violations for the caller to
//! assert on (tests) or report (debug runs).

use crate::checker::InvariantChecker;
use crate::rules::Violation;
use hammertime_common::Cycle;
use hammertime_dram::DramConfig;
use hammertime_telemetry::CmdEvent;
use std::fmt;
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct ShadowInner {
    checker: Option<InvariantChecker>,
    commands: u64,
}

/// A cheaply clonable handle to a live invariant checker.
///
/// All clones share one engine (like [`hammertime_telemetry::Tracer`]),
/// so the handle embedded in a controller config and the one the test
/// kept see the same violations.
#[derive(Clone, Default)]
pub struct ShadowChecker {
    inner: Arc<Mutex<ShadowInner>>,
}

impl ShadowChecker {
    /// Creates an idle shadow checker; it arms itself at the first
    /// [`ShadowChecker::on_device_reset`].
    pub fn new() -> ShadowChecker {
        ShadowChecker::default()
    }

    /// (Re-)arms the engine for a fresh device with this configuration.
    /// The controller calls this once at construction, mirroring the
    /// `DeviceReset` record a tracer would see.
    pub fn on_device_reset(&self, config: &DramConfig) {
        let mut inner = self.inner.lock().expect("shadow lock");
        inner.checker = Some(InvariantChecker::new(
            config.geometry,
            config.timing,
            config.batched_pressure,
        ));
    }

    /// Checks one successfully issued command.
    pub fn on_command(&self, now: Cycle, cmd: &CmdEvent) {
        let mut inner = self.inner.lock().expect("shadow lock");
        inner.commands += 1;
        if let Some(c) = &mut inner.checker {
            c.command(now, cmd);
        }
    }

    /// Runs the end-of-run refresh-deadline tail check at `end`.
    pub fn finish(&self, end: Cycle) {
        let mut inner = self.inner.lock().expect("shadow lock");
        if let Some(c) = &mut inner.checker {
            c.finish(end);
        }
    }

    /// Violations detected so far.
    pub fn violations(&self) -> Vec<Violation> {
        let inner = self.inner.lock().expect("shadow lock");
        inner
            .checker
            .as_ref()
            .map(|c| c.violations().to_vec())
            .unwrap_or_default()
    }

    /// `true` when no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        let inner = self.inner.lock().expect("shadow lock");
        inner
            .checker
            .as_ref()
            .is_none_or(|c| c.violations().is_empty())
    }

    /// Commands observed so far.
    pub fn commands_checked(&self) -> u64 {
        self.inner.lock().expect("shadow lock").commands
    }

    /// ACT commands observed so far — the stream-side leg of the
    /// ACT-conservation law (compare against `DramStats.acts` and the
    /// controller's summed ACT-counter increments).
    pub fn acts_observed(&self) -> u64 {
        let inner = self.inner.lock().expect("shadow lock");
        inner
            .checker
            .as_ref()
            .map_or(0, InvariantChecker::acts_observed)
    }
}

impl fmt::Debug for ShadowChecker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("shadow lock");
        let violations = inner.checker.as_ref().map_or(0, |c| c.violations().len());
        write!(
            f,
            "ShadowChecker(commands {}, violations {violations})",
            inner.commands
        )
    }
}

// A shadow checker is a live resource, not data: serialize as `null`
// (so a shadowed config's JSON is byte-identical to an unshadowed
// one), never deserialize — the same contract as `Tracer`.
impl serde::Serialize for ShadowChecker {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("null");
    }
}

impl serde::Deserialize for ShadowChecker {
    fn deserialize_json(_v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Err(serde::Error::expected(
            "null (a shadow checker is a live observer and cannot be deserialized)",
            "ShadowChecker",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime_common::geometry::BankId;

    fn bank0() -> BankId {
        BankId {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
        }
    }

    #[test]
    fn shadow_clones_share_one_engine() {
        let shadow = ShadowChecker::new();
        let clone = shadow.clone();
        clone.on_device_reset(&DramConfig::test_config(1000));
        shadow.on_command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank0(),
                row: 1,
            },
        );
        shadow.on_command(
            Cycle(1),
            &CmdEvent::Act {
                bank: bank0(),
                row: 2,
            },
        );
        assert!(!clone.is_clean());
        assert_eq!(clone.commands_checked(), 2);
        assert_eq!(clone.acts_observed(), 2);
    }

    #[test]
    fn serializes_as_null_inside_option() {
        let some: Option<ShadowChecker> = Some(ShadowChecker::new());
        let none: Option<ShadowChecker> = None;
        assert_eq!(
            serde_json::to_string(&some).unwrap(),
            serde_json::to_string(&none).unwrap()
        );
    }

    #[test]
    fn unarmed_shadow_is_clean() {
        let shadow = ShadowChecker::new();
        shadow.on_command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank0(),
                row: 1,
            },
        );
        assert!(shadow.is_clean());
        assert_eq!(shadow.commands_checked(), 1);
    }
}
