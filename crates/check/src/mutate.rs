//! The mutation harness: prove every rule class actually fires.
//!
//! A checker that never fires is indistinguishable from a correct
//! simulator — so this module deliberately breaks recorded traces in
//! targeted ways (drop a closing PRE, shift an ACT inside tRP, insert
//! a fifth ACT into a full tFAW window, starve a rank's refresh, ...)
//! and [`self_test`] verifies the linter reports the expected rule
//! class for each applicable mutation. This is the "lint of the lint"
//! run by the `trace lint --self-test` CLI mode and the golden
//! integration test.
//!
//! Mutations are *site-searched*: each one replays the trace through a
//! shadow checker to find a position where its violation is guaranteed
//! to fire (e.g. an inserted fifth ACT targets a bank that is idle and
//! past its tRP at the insertion cycle). A mutation that finds no site
//! in the given trace is reported as skipped, not failed — e.g. a
//! refresh-disabled trace cannot demonstrate refresh starvation.

use crate::checker::InvariantChecker;
use crate::lint::lint_records;
use crate::rules::{Rule, RuleClass};
use hammertime_common::geometry::BankId;
use hammertime_common::Cycle;
use hammertime_dram::DramConfig;
use hammertime_telemetry::{CmdEvent, Event, TraceRecord};

/// Minimum number of distinct rule classes a passing self-test must
/// prove (the acceptance bar for "the checker demonstrably works").
pub const MIN_CLASSES_PROVEN: usize = 4;

/// One targeted trace corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Remove a PRE that closes a row which a later ACT/REF needs
    /// closed → `ActOnOpenBank` / `RefWithOpenBank`.
    DropPre,
    /// Move an ACT to one cycle after its bank's closing PRE →
    /// `TRp`/`TRc`.
    ActBeforeTrp,
    /// Move a RD/WR to one cycle after its row's ACT → `TRcd`.
    CasBeforeTrcd,
    /// Insert a fifth ACT inside a rank's full tFAW window → `TFaw`.
    FifthActInFaw,
    /// Drop every REF after a rank's first → `RefStarved`.
    StarveRef,
    /// Remove an ACT whose row a later RD/WR expects open →
    /// `CasOnClosedBank` (plus a conservation mismatch).
    DropAct,
    /// Stamp a command with the same cycle as the previous command on
    /// its channel → `CmdBusConflict`.
    DupCycle,
}

impl Mutation {
    /// Every mutation, in the order the self-test runs them.
    pub const ALL: [Mutation; 7] = [
        Mutation::DropPre,
        Mutation::ActBeforeTrp,
        Mutation::CasBeforeTrcd,
        Mutation::FifthActInFaw,
        Mutation::StarveRef,
        Mutation::DropAct,
        Mutation::DupCycle,
    ];

    /// Kebab-case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::DropPre => "drop-pre",
            Mutation::ActBeforeTrp => "act-before-trp",
            Mutation::CasBeforeTrcd => "cas-before-trcd",
            Mutation::FifthActInFaw => "fifth-act-in-tfaw",
            Mutation::StarveRef => "starve-ref",
            Mutation::DropAct => "drop-act",
            Mutation::DupCycle => "dup-cycle",
        }
    }

    /// The rule classes this mutation is expected to trip (any one of
    /// them counts as the mutation firing correctly).
    pub fn expected_classes(&self) -> &'static [RuleClass] {
        match self {
            Mutation::DropPre | Mutation::DropAct => &[RuleClass::Protocol],
            Mutation::ActBeforeTrp | Mutation::CasBeforeTrcd => &[RuleClass::BankTiming],
            Mutation::FifthActInFaw => &[RuleClass::Rank],
            Mutation::StarveRef => &[RuleClass::Refresh],
            Mutation::DupCycle => &[RuleClass::Bus],
        }
    }

    /// Applies the mutation to `records`, or `None` when the trace has
    /// no site where this mutation's violation is guaranteed.
    pub fn apply(&self, records: &[TraceRecord]) -> Option<Vec<TraceRecord>> {
        let seg = Segment::first(records)?;
        match self {
            Mutation::DropPre => drop_pre(records, &seg),
            Mutation::ActBeforeTrp => act_before_trp(records, &seg),
            Mutation::CasBeforeTrcd => cas_before_trcd(records, &seg),
            Mutation::FifthActInFaw => fifth_act_in_faw(records, &seg),
            Mutation::StarveRef => starve_ref(records, &seg),
            Mutation::DropAct => drop_act(records, &seg),
            Mutation::DupCycle => dup_cycle(records, &seg),
        }
    }
}

/// The first device segment of a trace: record index range plus the
/// device config parsed from its `DeviceReset`.
struct Segment {
    /// Index of the `DeviceReset` record.
    start: usize,
    /// Exclusive end: index of the closing `DeviceStats` (or of the
    /// next `DeviceReset`, or `records.len()`).
    end: usize,
    config: DramConfig,
}

impl Segment {
    fn first(records: &[TraceRecord]) -> Option<Segment> {
        let start = records
            .iter()
            .position(|r| matches!(r.event, Event::DeviceReset { .. }))?;
        let Event::DeviceReset { config_json } = &records[start].event else {
            unreachable!("position matched DeviceReset");
        };
        let config: DramConfig = serde_json::from_str(config_json).ok()?;
        let end = records[start + 1..]
            .iter()
            .position(|r| {
                matches!(
                    r.event,
                    Event::DeviceStats { .. } | Event::DeviceReset { .. }
                )
            })
            .map_or(records.len(), |p| start + 1 + p);
        Some(Segment { start, end, config })
    }

    fn checker(&self) -> InvariantChecker {
        InvariantChecker::new(
            self.config.geometry,
            self.config.timing,
            self.config.batched_pressure,
        )
    }

    /// Command records of the segment as `(record index, cycle, cmd)`.
    fn commands<'a>(
        &self,
        records: &'a [TraceRecord],
    ) -> impl Iterator<Item = (usize, Cycle, &'a CmdEvent)> {
        let start = self.start;
        records[start + 1..self.end]
            .iter()
            .enumerate()
            .filter_map(move |(off, r)| match &r.event {
                Event::Command { cmd } => Some((start + 1 + off, Cycle(r.cycle), cmd)),
                _ => None,
            })
    }
}

fn channel_of(cmd: &CmdEvent) -> u32 {
    match *cmd {
        CmdEvent::Act { bank, .. }
        | CmdEvent::Pre { bank }
        | CmdEvent::Rd { bank, .. }
        | CmdEvent::Wr { bank, .. }
        | CmdEvent::RefNeighbors { bank, .. } => bank.channel,
        CmdEvent::PreAll { channel, .. } | CmdEvent::Ref { channel, .. } => channel,
    }
}

fn command_record(cycle: Cycle, cmd: CmdEvent) -> TraceRecord {
    TraceRecord {
        cycle: cycle.raw(),
        event: Event::Command { cmd },
    }
}

/// Removes record `idx`.
fn without(records: &[TraceRecord], idx: usize) -> Vec<TraceRecord> {
    let mut out = records.to_vec();
    out.remove(idx);
    out
}

/// Moves record `from` to just after `after` with a new cycle stamp.
fn moved(records: &[TraceRecord], from: usize, after: usize, cycle: Cycle) -> Vec<TraceRecord> {
    debug_assert!(after < from);
    let mut out = records.to_vec();
    let mut rec = out.remove(from);
    rec.cycle = cycle.raw();
    out.insert(after + 1, rec);
    out
}

/// After dropping a closing PRE of `bank`, scan forward: does an
/// ACT/REF/REFN hit the still-open bank before anything else closes it?
fn open_bank_trigger_follows(
    records: &[TraceRecord],
    seg: &Segment,
    from: usize,
    bank: BankId,
) -> bool {
    for (_, _, cmd) in seg.commands(records).filter(|(i, _, _)| *i > from) {
        match *cmd {
            CmdEvent::Act { bank: b, .. } if b == bank => return true,
            CmdEvent::Ref { channel, rank } if channel == bank.channel && rank == bank.rank => {
                return true;
            }
            CmdEvent::RefNeighbors { bank: b, .. } if b == bank => return true,
            // Anything that would (legally) close the row again ends
            // the window in which the drop is observable.
            CmdEvent::Pre { bank: b } if b == bank => return false,
            CmdEvent::PreAll { channel, rank } if channel == bank.channel && rank == bank.rank => {
                return false;
            }
            CmdEvent::Rd {
                bank: b,
                auto_pre: true,
                ..
            }
            | CmdEvent::Wr {
                bank: b,
                auto_pre: true,
                ..
            } if b == bank => return false,
            _ => {}
        }
    }
    false
}

fn drop_pre(records: &[TraceRecord], seg: &Segment) -> Option<Vec<TraceRecord>> {
    let mut checker = seg.checker();
    for (i, cycle, cmd) in seg.commands(records) {
        if let CmdEvent::Pre { bank } = *cmd {
            if checker.peek_bank_open(&bank) && open_bank_trigger_follows(records, seg, i, bank) {
                return Some(without(records, i));
            }
        }
        checker.command(cycle, cmd);
    }
    None
}

fn act_before_trp(records: &[TraceRecord], seg: &Segment) -> Option<Vec<TraceRecord>> {
    if seg.config.timing.t_rp < 2 {
        return None;
    }
    let mut checker = seg.checker();
    // Last closing PRE per flat bank: (record index, cycle).
    let banks = seg.config.geometry.total_banks() as usize;
    let mut last_close: Vec<Option<(usize, Cycle)>> = vec![None; banks];
    for (i, cycle, cmd) in seg.commands(records) {
        match *cmd {
            CmdEvent::Pre { bank } if checker.peek_bank_open(&bank) => {
                last_close[bank.flat(&seg.config.geometry)] = Some((i, cycle));
            }
            CmdEvent::Act { bank, .. } => {
                if let Some((pre_idx, pre_cycle)) = last_close[bank.flat(&seg.config.geometry)] {
                    if cycle > pre_cycle + 1 {
                        // One cycle after the PRE is always inside tRP.
                        return Some(moved(records, i, pre_idx, pre_cycle + 1));
                    }
                }
                last_close[bank.flat(&seg.config.geometry)] = None;
            }
            _ => {}
        }
        checker.command(cycle, cmd);
    }
    None
}

fn cas_before_trcd(records: &[TraceRecord], seg: &Segment) -> Option<Vec<TraceRecord>> {
    if seg.config.timing.t_rcd < 2 {
        return None;
    }
    let banks = seg.config.geometry.total_banks() as usize;
    // Opening ACT per flat bank: (record index, cycle).
    let mut last_open: Vec<Option<(usize, Cycle)>> = vec![None; banks];
    for (i, cycle, cmd) in seg.commands(records) {
        match *cmd {
            CmdEvent::Act { bank, .. } => {
                last_open[bank.flat(&seg.config.geometry)] = Some((i, cycle));
            }
            CmdEvent::Rd { bank, .. } | CmdEvent::Wr { bank, .. } => {
                if let Some((act_idx, act_cycle)) = last_open[bank.flat(&seg.config.geometry)] {
                    if cycle > act_cycle + 1 {
                        // One cycle after the ACT is always inside tRCD.
                        return Some(moved(records, i, act_idx, act_cycle + 1));
                    }
                }
                last_open[bank.flat(&seg.config.geometry)] = None;
            }
            CmdEvent::Pre { bank } | CmdEvent::RefNeighbors { bank, .. } => {
                last_open[bank.flat(&seg.config.geometry)] = None;
            }
            CmdEvent::PreAll { channel, rank } | CmdEvent::Ref { channel, rank } => {
                for slot in last_open.iter_mut().enumerate().filter_map(|(b, s)| {
                    let per_rank = seg.config.geometry.banks_per_rank() as usize;
                    let r = (channel * seg.config.geometry.ranks + rank) as usize;
                    (b / per_rank == r).then_some(s)
                }) {
                    *slot = None;
                }
            }
        }
    }
    None
}

fn fifth_act_in_faw(records: &[TraceRecord], seg: &Segment) -> Option<Vec<TraceRecord>> {
    let t_faw = seg.config.timing.t_faw;
    let mut checker = seg.checker();
    for (i, cycle, cmd) in seg.commands(records) {
        checker.command(cycle, cmd);
        let CmdEvent::Act { bank, .. } = *cmd else {
            continue;
        };
        let (len, front) = checker.peek_rank_faw(bank.channel, bank.rank);
        let Some(window_open) = front else { continue };
        let insert_at = cycle + 1;
        if len < 4 || insert_at >= window_open + t_faw {
            continue;
        }
        // Find an idle, ready bank in the rank for the illegal ACT so
        // the only new rank-class violations are the intended ones.
        if checker.peek_rank_busy_until(bank.channel, bank.rank) > insert_at {
            continue;
        }
        let g = *checker.peek_geometry();
        for bank_group in 0..g.bank_groups {
            for b in 0..g.banks_per_group {
                let victim = BankId {
                    channel: bank.channel,
                    rank: bank.rank,
                    bank_group,
                    bank: b,
                };
                if !checker.peek_bank_open(&victim)
                    && checker.peek_bank_ready_act(&victim) <= insert_at
                {
                    let mut out = records.to_vec();
                    out.insert(
                        i + 1,
                        command_record(
                            insert_at,
                            CmdEvent::Act {
                                bank: victim,
                                row: 0,
                            },
                        ),
                    );
                    return Some(out);
                }
            }
        }
    }
    None
}

fn starve_ref(records: &[TraceRecord], seg: &Segment) -> Option<Vec<TraceRecord>> {
    let limit = crate::MAX_REF_GAP_TREFI * seg.config.timing.t_refi;
    let end_cycle = records[seg.start..seg.end.min(records.len())]
        .iter()
        .map(|r| r.cycle)
        .max()
        .unwrap_or(0);
    // Per (channel, rank): indices of its REF records.
    let mut refs: std::collections::BTreeMap<(u32, u32), Vec<usize>> = Default::default();
    for (i, _, cmd) in seg.commands(records) {
        if let CmdEvent::Ref { channel, rank } = *cmd {
            refs.entry((channel, rank)).or_default().push(i);
        }
    }
    for indices in refs.values() {
        if indices.len() < 2 {
            continue;
        }
        let first_cycle = records[indices[0]].cycle;
        if end_cycle.saturating_sub(first_cycle) <= limit {
            continue; // segment too short to demonstrate starvation
        }
        let drop: std::collections::HashSet<usize> = indices[1..].iter().copied().collect();
        let out = records
            .iter()
            .enumerate()
            .filter(|(i, _)| !drop.contains(i))
            .map(|(_, r)| r.clone())
            .collect();
        return Some(out);
    }
    None
}

fn drop_act(records: &[TraceRecord], seg: &Segment) -> Option<Vec<TraceRecord>> {
    let banks = seg.config.geometry.total_banks() as usize;
    let mut candidate: Vec<Option<usize>> = vec![None; banks];
    for (i, _, cmd) in seg.commands(records) {
        match *cmd {
            CmdEvent::Act { bank, .. } => {
                candidate[bank.flat(&seg.config.geometry)] = Some(i);
            }
            CmdEvent::Rd { bank, .. } | CmdEvent::Wr { bank, .. } => {
                if let Some(act_idx) = candidate[bank.flat(&seg.config.geometry)] {
                    // Dropping that ACT leaves this CAS with no open row.
                    return Some(without(records, act_idx));
                }
            }
            CmdEvent::Pre { bank } | CmdEvent::RefNeighbors { bank, .. } => {
                candidate[bank.flat(&seg.config.geometry)] = None;
            }
            CmdEvent::PreAll { .. } | CmdEvent::Ref { .. } => {
                candidate.iter_mut().for_each(|c| *c = None);
            }
        }
    }
    None
}

fn dup_cycle(records: &[TraceRecord], seg: &Segment) -> Option<Vec<TraceRecord>> {
    let mut last_on_channel: std::collections::HashMap<u32, u64> = Default::default();
    for (i, cycle, cmd) in seg.commands(records) {
        let ch = channel_of(cmd);
        if let Some(prev) = last_on_channel.get(&ch) {
            if cycle.raw() > *prev {
                let mut out = records.to_vec();
                out[i].cycle = *prev;
                return Some(out);
            }
        }
        last_on_channel.insert(ch, cycle.raw());
    }
    None
}

/// Outcome of one mutation in a self-test run.
#[derive(Debug, Clone)]
pub struct SelfTestOutcome {
    /// Which mutation ran.
    pub mutation: Mutation,
    /// Rules the linter reported on the mutated trace; `None` when the
    /// trace had no applicable mutation site.
    pub fired: Option<Vec<Rule>>,
    /// Whether an expected-class rule fired (vacuously `true` for a
    /// skipped mutation).
    pub ok: bool,
}

/// The full self-test result: one outcome per mutation.
#[derive(Debug, Clone)]
pub struct SelfTestReport {
    /// Outcomes in [`Mutation::ALL`] order.
    pub outcomes: Vec<SelfTestOutcome>,
}

impl SelfTestReport {
    /// Distinct rule classes proven to fire across all mutations.
    pub fn classes_proven(&self) -> usize {
        let mut classes = std::collections::HashSet::new();
        for o in &self.outcomes {
            if let Some(fired) = &o.fired {
                classes.extend(fired.iter().map(Rule::class));
            }
        }
        classes.len()
    }

    /// `true` when every applicable mutation tripped its expected rule
    /// class and at least [`MIN_CLASSES_PROVEN`] classes fired overall.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.ok) && self.classes_proven() >= MIN_CLASSES_PROVEN
    }

    /// One line per mutation, human-readable.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            let status = match &o.fired {
                None => "skipped (no applicable site)".to_string(),
                Some(rules) if o.ok => format!(
                    "fired {}",
                    rules.iter().map(Rule::name).collect::<Vec<_>>().join(", ")
                ),
                Some(rules) => format!(
                    "FAILED: expected {:?}, got [{}]",
                    o.mutation.expected_classes(),
                    rules.iter().map(Rule::name).collect::<Vec<_>>().join(", ")
                ),
            };
            out.push_str(&format!("{:<18} {status}\n", o.mutation.name()));
        }
        out.push_str(&format!(
            "classes proven: {} (need >= {MIN_CLASSES_PROVEN})\n",
            self.classes_proven()
        ));
        out
    }
}

/// Runs every mutation against `records` and lints each mutated trace:
/// the checker's own regression test.
pub fn self_test(records: &[TraceRecord]) -> SelfTestReport {
    let outcomes = Mutation::ALL
        .iter()
        .map(|m| match m.apply(records) {
            None => SelfTestOutcome {
                mutation: *m,
                fired: None,
                ok: true,
            },
            Some(mutated) => {
                let report = lint_records(&mutated);
                let fired = report.rules_fired();
                let ok = fired
                    .iter()
                    .any(|r| m.expected_classes().contains(&r.class()));
                SelfTestOutcome {
                    mutation: *m,
                    fired: Some(fired),
                    ok,
                }
            }
        })
        .collect();
    SelfTestReport { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime_dram::{DdrCommand, DramModule};
    use hammertime_telemetry::Tracer;

    /// A legal single-bank open/read/close session, recorded from a
    /// real traced device.
    fn recorded_session() -> Vec<TraceRecord> {
        let tracer = Tracer::buffer();
        let mut config = DramConfig::test_config(1_000_000);
        config.tracer = Some(tracer.clone());
        let bank = BankId {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
        };
        {
            let mut dram = DramModule::new(config).unwrap();
            let t = hammertime_dram::TimingParams::tiny_test();
            let mut now = Cycle(1);
            for _ in 0..3 {
                dram.issue(&DdrCommand::Act { bank, row: 2 }, now).unwrap();
                now += t.t_rcd;
                dram.issue(
                    &DdrCommand::Rd {
                        bank,
                        col: 0,
                        auto_pre: false,
                    },
                    now,
                )
                .unwrap();
                now += t.t_ras - t.t_rcd;
                dram.issue(&DdrCommand::Pre { bank }, now).unwrap();
                now += t.t_rc;
            }
        }
        tracer.take_records()
    }

    #[test]
    fn every_applied_mutation_fires_its_class() {
        let records = recorded_session();
        // Sanity: the unmutated trace is clean, so every rule fired
        // below is caused by the mutation.
        assert!(lint_records(&records).is_clean());
        let report = self_test(&records);
        assert!(report.passed(), "{}", report.summary());
        // This simple trace has sites for at least these five.
        for m in [
            Mutation::DropPre,
            Mutation::ActBeforeTrp,
            Mutation::CasBeforeTrcd,
            Mutation::DropAct,
            Mutation::DupCycle,
        ] {
            let o = report.outcomes.iter().find(|o| o.mutation == m).unwrap();
            assert!(o.fired.is_some(), "{} found no site", m.name());
        }
    }

    #[test]
    fn faw_and_refresh_mutations_skip_gracefully_without_sites() {
        let records = recorded_session();
        // Three same-bank ACTs can't fill a tFAW window, and the
        // session is refresh-free — both mutations must report None,
        // not a bogus failure.
        assert!(Mutation::FifthActInFaw.apply(&records).is_none());
        assert!(Mutation::StarveRef.apply(&records).is_none());
    }

    #[test]
    fn mutation_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            Mutation::ALL.iter().map(Mutation::name).collect();
        assert_eq!(names.len(), Mutation::ALL.len());
    }
}
