//! The incremental invariant engine: a shadow of the device's timing
//! state, fed one command at a time.
//!
//! [`InvariantChecker`] re-implements the *constraint arithmetic* of
//! `hammertime-dram`'s bank FSM (`bank.rs`) and rank state
//! (`module.rs`) independently — it shares no code with the device
//! model, so a bug in the model cannot hide from the checker. On top
//! of the device-level rules it enforces two controller-level
//! invariants the device itself cannot see: per-channel command-bus
//! exclusivity (the controller issues at most one command per channel
//! per cycle) and data-bus occupancy (CAS bursts on one channel never
//! overlap, CL/CWL lead + tBL burst).
//!
//! Commands address *logical* rows; internal row remapping is invisible
//! on the bus and none of the enforced constraints depend on which
//! physical row is hit, so the checker works entirely in logical
//! coordinates. The one remap-sensitive quantity — how many rows a
//! REFN actually refreshes, which sets its occupancy — is bounded from
//! below (one row cycle), keeping the checker sound (no false
//! positives) at the cost of not flagging an early reuse of a bank a
//! multi-victim REFN would still be occupying.

use crate::rules::{Rule, Violation};
use crate::MAX_REF_GAP_TREFI;
use hammertime_common::geometry::BankId;
use hammertime_common::{Cycle, Geometry};
use hammertime_dram::stats::DramStats;
use hammertime_dram::timing::TimingParams;
use hammertime_telemetry::CmdEvent;
use std::collections::VecDeque;

/// Shadow of one bank's FSM and timing windows (mirrors
/// `hammertime-dram`'s `Bank`, state only — no disturbance model).
#[derive(Debug, Clone)]
struct BankShadow {
    /// `Some((row, opened_at))` while a row is open.
    open: Option<(u32, Cycle)>,
    /// tRP component of the next legal ACT (closing PRE + tRP).
    ready_act_pre: Cycle,
    /// tRC component of the next legal ACT (previous ACT + tRC).
    ready_act_rc: Cycle,
    /// Refresh-occupancy component of the next legal ACT (REF/REFN).
    ready_act_block: Cycle,
    /// Earliest legal PRE while open (max of tRAS/tRTP/tWR effects).
    ready_pre: Cycle,
    /// Earliest legal RD/WR while open (ACT + tRCD).
    ready_rdwr: Cycle,
}

impl BankShadow {
    fn new() -> BankShadow {
        BankShadow {
            open: None,
            ready_act_pre: Cycle::ZERO,
            ready_act_rc: Cycle::ZERO,
            ready_act_block: Cycle::ZERO,
            ready_pre: Cycle::ZERO,
            ready_rdwr: Cycle::ZERO,
        }
    }

    fn ready_act(&self) -> Cycle {
        self.ready_act_pre
            .max(self.ready_act_rc)
            .max(self.ready_act_block)
    }

    /// Closes the open row: PRE at `pre_time` of a row opened at
    /// `opened_at` (mirrors `Bank::close`).
    fn close(&mut self, pre_time: Cycle, opened_at: Cycle, t: &TimingParams) {
        self.open = None;
        self.ready_act_pre = pre_time + t.t_rp;
        self.ready_act_rc = opened_at + t.t_rc;
    }
}

/// Shadow of one rank's ACT spacing and refresh state (mirrors
/// `hammertime-dram`'s `RankState`).
#[derive(Debug, Clone)]
struct RankShadow {
    /// Last ACT in this rank: (time, bank group) — tRRD_S/L reference.
    last_act: Option<(Cycle, u32)>,
    /// Times of the most recent 4 ACTs (tFAW window).
    faw: VecDeque<Cycle>,
    /// Rank unusable until this time (tRFC after REF).
    busy_until: Cycle,
    /// Last REF to this rank, if any (refresh-deadline rule).
    last_ref: Option<Cycle>,
}

impl RankShadow {
    fn new() -> RankShadow {
        RankShadow {
            last_act: None,
            faw: VecDeque::with_capacity(4),
            busy_until: Cycle::ZERO,
            last_ref: None,
        }
    }

    fn record_act(&mut self, now: Cycle, bank_group: u32) {
        self.last_act = Some((now, bank_group));
        if self.faw.len() == 4 {
            self.faw.pop_front();
        }
        self.faw.push_back(now);
    }
}

/// Per-channel bus state: the controller-level invariants.
#[derive(Debug, Clone)]
struct ChannelShadow {
    /// Cycle of the last command on this channel's command bus.
    last_cmd: Option<Cycle>,
    /// Data bus occupied until this cycle (exclusive).
    data_bus_free: Cycle,
}

/// Command counts accumulated for the conservation check against the
/// device's final `DramStats`.
#[derive(Debug, Clone, Copy, Default)]
struct CmdCounts {
    acts: u64,
    pres: u64,
    rds: u64,
    wrs: u64,
    refs: u64,
    flips: u64,
}

/// The incremental invariant engine for one device segment.
///
/// Feed it every command of one device's lifetime in emission order
/// via [`InvariantChecker::command`]; violations accumulate and are
/// retrieved with [`InvariantChecker::violations`]. For a recorded
/// trace, [`crate::lint_records`] drives this over each device
/// segment; for a live stream, [`crate::ShadowChecker`] wraps it.
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    geometry: Geometry,
    timing: TimingParams,
    /// Batched disturbance accounting changes flip *timing* (flips can
    /// settle outside traced commands), so flip conservation is only
    /// checked when off.
    batched: bool,
    banks: Vec<BankShadow>,
    ranks: Vec<RankShadow>,
    channels: Vec<ChannelShadow>,
    counts: CmdCounts,
    violations: Vec<Violation>,
}

impl InvariantChecker {
    /// Creates a checker for a fresh (just reset) device.
    pub fn new(geometry: Geometry, timing: TimingParams, batched: bool) -> InvariantChecker {
        InvariantChecker {
            banks: (0..geometry.total_banks())
                .map(|_| BankShadow::new())
                .collect(),
            ranks: (0..(geometry.channels * geometry.ranks) as usize)
                .map(|_| RankShadow::new())
                .collect(),
            channels: (0..geometry.channels as usize)
                .map(|_| ChannelShadow {
                    last_cmd: None,
                    data_bus_free: Cycle::ZERO,
                })
                .collect(),
            counts: CmdCounts::default(),
            violations: Vec::new(),
            geometry,
            timing,
            batched,
        }
    }

    /// Violations detected so far, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Consumes the checker, returning its violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }

    /// Total commands checked so far.
    pub fn commands_checked(&self) -> u64 {
        self.counts.acts + self.counts.pres + self.counts.rds + self.counts.wrs + self.counts.refs
    }

    /// ACT commands observed so far (the trace-side leg of the
    /// ACT-conservation law).
    pub fn acts_observed(&self) -> u64 {
        self.counts.acts
    }

    fn rank_index(&self, channel: u32, rank: u32) -> usize {
        (channel * self.geometry.ranks + rank) as usize
    }

    fn push(&mut self, cycle: Cycle, rule: Rule, bank: Option<BankId>, detail: String) {
        self.violations.push(Violation {
            cycle: cycle.raw(),
            rule,
            bank,
            detail,
        });
    }

    /// Command-bus exclusivity: one command per channel per cycle, in
    /// cycle order (the controller reserves the bus for one cycle per
    /// issued command).
    fn check_cmd_bus(&mut self, now: Cycle, channel: u32) {
        let ch = channel as usize;
        if ch >= self.channels.len() {
            self.push(
                now,
                Rule::AddressRange,
                None,
                format!("channel {channel} out of range ({})", self.channels.len()),
            );
            return;
        }
        if let Some(last) = self.channels[ch].last_cmd {
            if now <= last {
                self.push(
                    now,
                    Rule::CmdBusConflict,
                    None,
                    format!("command on channel {channel} at {now} not after previous at {last}"),
                );
            }
        }
        let slot = &mut self.channels[ch];
        slot.last_cmd = Some(slot.last_cmd.map_or(now, |l| l.max(now)));
    }

    /// Attributes an early-ACT-class violation on `bank` to the
    /// binding constraint (refresh occupancy, tRP, or tRC).
    fn check_bank_act_ready(&mut self, now: Cycle, bank: BankId, what: &str) {
        let b = bank.flat(&self.geometry);
        let shadow = &self.banks[b];
        if now >= shadow.ready_act() {
            return;
        }
        let (rule, earliest) = if shadow.ready_act_block > now {
            (Rule::RankBusy, shadow.ready_act_block)
        } else if shadow.ready_act_pre >= shadow.ready_act_rc {
            (Rule::TRp, shadow.ready_act_pre)
        } else {
            (Rule::TRc, shadow.ready_act_rc)
        };
        self.push(
            now,
            rule,
            Some(bank),
            format!("{what} at {now} before bank ready at {earliest}"),
        );
    }

    fn check_rank_busy(&mut self, now: Cycle, channel: u32, rank: u32, what: &str) {
        let r = self.rank_index(channel, rank);
        let busy = self.ranks[r].busy_until;
        if now < busy {
            self.push(
                now,
                Rule::RankBusy,
                None,
                format!("{what} at {now} to ch{channel}:rk{rank} busy with refresh until {busy}"),
            );
        }
    }

    /// Checks and applies one command. `now` is the record's cycle
    /// stamp. Violations accumulate; state is updated best-effort even
    /// for violating commands so downstream checking stays meaningful.
    pub fn command(&mut self, now: Cycle, cmd: &CmdEvent) {
        match *cmd {
            CmdEvent::Act { bank, row } => self.act(now, bank, row),
            CmdEvent::Pre { bank } => self.pre(now, bank),
            CmdEvent::PreAll { channel, rank } => self.pre_all(now, channel, rank),
            CmdEvent::Rd {
                bank,
                col,
                auto_pre,
            } => self.cas(now, bank, col, auto_pre, false),
            CmdEvent::Wr {
                bank,
                col,
                auto_pre,
            } => self.cas(now, bank, col, auto_pre, true),
            CmdEvent::Ref { channel, rank } => self.refresh(now, channel, rank),
            CmdEvent::RefNeighbors { bank, row, radius } => {
                self.ref_neighbors(now, bank, row, radius)
            }
        }
    }

    /// Records one `Flip` event (for the flip-conservation check).
    pub fn flip(&mut self) {
        self.counts.flips += 1;
    }

    fn act(&mut self, now: Cycle, bank: BankId, row: u32) {
        self.check_cmd_bus(now, bank.channel);
        let t = self.timing;
        if row >= self.geometry.rows_per_bank() {
            self.push(
                now,
                Rule::AddressRange,
                Some(bank),
                format!(
                    "ACT row {row} out of range ({} rows/bank)",
                    self.geometry.rows_per_bank()
                ),
            );
        }
        let b = bank.flat(&self.geometry);
        if let Some((open_row, _)) = self.banks[b].open {
            self.push(
                now,
                Rule::ActOnOpenBank,
                Some(bank),
                format!("ACT r{row} while r{open_row} is open (PRE first)"),
            );
        } else {
            self.check_bank_act_ready(now, bank, "ACT");
        }
        // Rank-level spacing (tRRD_S/L, tFAW, tRFC occupancy) — the
        // constraints of module.rs's RankState::earliest_act.
        self.check_rank_busy(now, bank.channel, bank.rank, "ACT");
        let r = self.rank_index(bank.channel, bank.rank);
        if let Some((when, bg)) = self.ranks[r].last_act {
            let (gap, which) = if bg == bank.bank_group {
                (t.t_rrd_l, "tRRD_L")
            } else {
                (t.t_rrd_s, "tRRD_S")
            };
            if now < when + gap {
                self.push(
                    now,
                    Rule::TRrd,
                    Some(bank),
                    format!("ACT at {now} within {which} {gap} of rank ACT at {when}"),
                );
            }
        }
        if self.ranks[r].faw.len() == 4 {
            let window_open = *self.ranks[r].faw.front().expect("len checked");
            if now < window_open + t.t_faw {
                self.push(
                    now,
                    Rule::TFaw,
                    Some(bank),
                    format!(
                        "5th ACT at {now} inside window opened at {window_open} (tFAW {})",
                        t.t_faw
                    ),
                );
            }
        }
        // Apply.
        self.banks[b].open = Some((row, now));
        self.banks[b].ready_rdwr = now + t.t_rcd;
        self.banks[b].ready_pre = now + t.t_ras;
        self.ranks[r].record_act(now, bank.bank_group);
        self.counts.acts += 1;
    }

    /// Closes one bank as a PRE at `now` would, checking tRAS-class
    /// timing. PRE of an idle bank is a legal no-op.
    fn pre_one(&mut self, now: Cycle, bank: BankId) {
        let t = self.timing;
        let b = bank.flat(&self.geometry);
        if let Some((_, opened_at)) = self.banks[b].open {
            if now < self.banks[b].ready_pre {
                let earliest = self.banks[b].ready_pre;
                self.push(
                    now,
                    Rule::TRas,
                    Some(bank),
                    format!(
                        "PRE at {now} before earliest close at {earliest} \
                         (tRAS/tRTP/write recovery)"
                    ),
                );
            }
            self.banks[b].close(now, opened_at, &t);
        }
    }

    fn pre(&mut self, now: Cycle, bank: BankId) {
        self.check_cmd_bus(now, bank.channel);
        self.check_rank_busy(now, bank.channel, bank.rank, "PRE");
        self.pre_one(now, bank);
        self.counts.pres += 1;
    }

    fn pre_all(&mut self, now: Cycle, channel: u32, rank: u32) {
        self.check_cmd_bus(now, channel);
        self.check_rank_busy(now, channel, rank, "PREA");
        for bank in self.rank_banks(channel, rank) {
            self.pre_one(now, bank);
        }
        self.counts.pres += 1;
    }

    fn cas(&mut self, now: Cycle, bank: BankId, col: u32, auto_pre: bool, is_write: bool) {
        self.check_cmd_bus(now, bank.channel);
        let t = self.timing;
        let name = if is_write { "WR" } else { "RD" };
        if col >= self.geometry.columns {
            self.push(
                now,
                Rule::AddressRange,
                Some(bank),
                format!(
                    "{name} col {col} out of range ({} columns)",
                    self.geometry.columns
                ),
            );
        }
        self.check_rank_busy(now, bank.channel, bank.rank, name);
        let b = bank.flat(&self.geometry);
        match self.banks[b].open {
            None => {
                self.push(
                    now,
                    Rule::CasOnClosedBank,
                    Some(bank),
                    format!("{name} with no open row"),
                );
            }
            Some((_, opened_at)) => {
                if now < self.banks[b].ready_rdwr {
                    let earliest = self.banks[b].ready_rdwr;
                    self.push(
                        now,
                        Rule::TRcd,
                        Some(bank),
                        format!("{name} at {now} before tRCD satisfied at {earliest}"),
                    );
                }
                // Per-bank close window updates (Bank::rd / Bank::wr).
                if is_write {
                    let data_end = now + t.cwl + t.t_bl;
                    self.banks[b].ready_pre = self.banks[b].ready_pre.max(data_end + t.t_wr);
                } else {
                    self.banks[b].ready_pre = self.banks[b].ready_pre.max(now + t.t_rtp);
                }
                if auto_pre {
                    let pre_time = self.banks[b].ready_pre;
                    self.banks[b].close(pre_time, opened_at, &t);
                }
            }
        }
        // Data-bus occupancy: the burst holds the channel's data bus
        // for [now + lead, now + lead + tBL); the controller schedules
        // CAS commands so bursts never overlap.
        let lead = if is_write { t.cwl } else { t.cl };
        let start = now + lead;
        let end = start + t.t_bl;
        let ch = bank.channel as usize;
        if ch < self.channels.len() {
            let free = self.channels[ch].data_bus_free;
            if start < free {
                self.push(
                    now,
                    Rule::DataBusOverlap,
                    Some(bank),
                    format!(
                        "{name} burst starts at {start} while data bus busy until {free} \
                         (lead {lead}, tBL {})",
                        t.t_bl
                    ),
                );
            }
            self.channels[ch].data_bus_free = free.max(end);
        }
        if is_write {
            self.counts.wrs += 1;
        } else {
            self.counts.rds += 1;
        }
    }

    fn refresh(&mut self, now: Cycle, channel: u32, rank: u32) {
        self.check_cmd_bus(now, channel);
        let t = self.timing;
        self.check_rank_busy(now, channel, rank, "REF");
        for bank in self.rank_banks(channel, rank) {
            let b = bank.flat(&self.geometry);
            if let Some((row, _)) = self.banks[b].open {
                self.push(
                    now,
                    Rule::RefWithOpenBank,
                    Some(bank),
                    format!("REF with r{row} open (PRE first)"),
                );
            } else {
                self.check_bank_act_ready(now, bank, "REF");
            }
        }
        // Refresh-deadline rule: consecutive REFs to one rank must be
        // within the pull-in window (first REF measured from reset).
        let limit = MAX_REF_GAP_TREFI * t.t_refi;
        let r = self.rank_index(channel, rank);
        let since = self.ranks[r].last_ref.map_or(0, Cycle::raw);
        if now.raw().saturating_sub(since) > limit {
            let origin = if self.ranks[r].last_ref.is_some() {
                "previous REF"
            } else {
                "reset"
            };
            self.push(
                now,
                Rule::RefStarved,
                None,
                format!(
                    "REF to ch{channel}:rk{rank} at {now}, {} cycles after {origin} \
                     (limit {MAX_REF_GAP_TREFI}×tREFI = {limit})",
                    now.raw() - since
                ),
            );
        }
        // Apply: rank busy for tRFC, every bank blocked.
        let done = now + t.t_rfc;
        for bank in self.rank_banks(channel, rank) {
            let b = bank.flat(&self.geometry);
            self.banks[b].ready_act_block = self.banks[b].ready_act_block.max(done);
        }
        self.ranks[r].busy_until = done;
        self.ranks[r].last_ref = Some(now);
        self.counts.refs += 1;
    }

    fn ref_neighbors(&mut self, now: Cycle, bank: BankId, row: u32, _radius: u32) {
        self.check_cmd_bus(now, bank.channel);
        let t = self.timing;
        if row >= self.geometry.rows_per_bank() {
            self.push(
                now,
                Rule::AddressRange,
                Some(bank),
                format!(
                    "REFN row {row} out of range ({} rows/bank)",
                    self.geometry.rows_per_bank()
                ),
            );
        }
        self.check_rank_busy(now, bank.channel, bank.rank, "REFN");
        let b = bank.flat(&self.geometry);
        if let Some((open_row, _)) = self.banks[b].open {
            self.push(
                now,
                Rule::RefWithOpenBank,
                Some(bank),
                format!("REFN with r{open_row} open (PRE first)"),
            );
        } else {
            self.check_bank_act_ready(now, bank, "REFN");
        }
        // Occupancy lower bound: the device charges one row cycle per
        // refreshed victim; the victim count depends on internal
        // remapping, so the checker blocks for the guaranteed minimum.
        self.banks[b].ready_act_block = self.banks[b].ready_act_block.max(now + t.t_rc);
    }

    /// Validates the device's final counters against the commands this
    /// checker saw (the trace-side conservation laws).
    pub fn device_stats(&mut self, cycle: Cycle, stats: &DramStats) {
        let pairs = [
            ("acts", self.counts.acts, stats.acts),
            ("pres", self.counts.pres, stats.pres),
            ("rds", self.counts.rds, stats.rds),
            ("wrs", self.counts.wrs, stats.wrs),
            ("refs", self.counts.refs, stats.refs),
        ];
        for (name, traced, device) in pairs {
            if traced != device {
                self.push(
                    cycle,
                    Rule::CommandConservation,
                    None,
                    format!("trace has {traced} {name} but DramStats.{name} = {device}"),
                );
            }
        }
        if !self.batched && self.counts.flips != stats.flips {
            self.push(
                cycle,
                Rule::FlipConservation,
                None,
                format!(
                    "trace has {} flip events but DramStats.flips = {}",
                    self.counts.flips, stats.flips
                ),
            );
        }
    }

    /// Closes the segment at `end` (the last cycle covered by the
    /// trace): ranks that refresh must not have gone silent for longer
    /// than the pull-in window before the end of the recording.
    pub fn finish(&mut self, end: Cycle) {
        let limit = MAX_REF_GAP_TREFI * self.timing.t_refi;
        for r in 0..self.ranks.len() {
            let Some(last) = self.ranks[r].last_ref else {
                // Rank never refreshed: refresh is disabled for this
                // run (a legitimate configuration), not starvation.
                continue;
            };
            let gap = end.raw().saturating_sub(last.raw());
            if gap > limit {
                let channel = r as u32 / self.geometry.ranks;
                let rank = r as u32 % self.geometry.ranks;
                self.push(
                    end,
                    Rule::RefStarved,
                    None,
                    format!(
                        "ch{channel}:rk{rank} last REF at {last}, {gap} cycles before \
                         end of segment (limit {MAX_REF_GAP_TREFI}×tREFI = {limit})"
                    ),
                );
            }
        }
    }

    // ---- state peeks for the mutation harness ----
    // The harness replays a trace prefix through a checker to find
    // mutation sites where a specific rule is *guaranteed* to fire
    // (e.g. an idle, ready bank for an inserted fifth ACT).

    /// Whether `bank` currently has an open row.
    pub(crate) fn peek_bank_open(&self, bank: &BankId) -> bool {
        self.banks[bank.flat(&self.geometry)].open.is_some()
    }

    /// Earliest legal ACT for `bank` (Cycle::MAX-free: only meaningful
    /// while the bank is closed).
    pub(crate) fn peek_bank_ready_act(&self, bank: &BankId) -> Cycle {
        self.banks[bank.flat(&self.geometry)].ready_act()
    }

    /// The rank's refresh-occupancy horizon.
    pub(crate) fn peek_rank_busy_until(&self, channel: u32, rank: u32) -> Cycle {
        self.ranks[self.rank_index(channel, rank)].busy_until
    }

    /// The rank's tFAW window: `(len, oldest ACT time)`.
    pub(crate) fn peek_rank_faw(&self, channel: u32, rank: u32) -> (usize, Option<Cycle>) {
        let r = &self.ranks[self.rank_index(channel, rank)];
        (r.faw.len(), r.faw.front().copied())
    }

    /// The checker's geometry.
    pub(crate) fn peek_geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// All bank IDs of one rank.
    fn rank_banks(&self, channel: u32, rank: u32) -> Vec<BankId> {
        let g = self.geometry;
        let mut out = Vec::with_capacity(g.banks_per_rank() as usize);
        for bank_group in 0..g.bank_groups {
            for bank in 0..g.banks_per_group {
                out.push(BankId {
                    channel,
                    rank,
                    bank_group,
                    bank,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank0() -> BankId {
        BankId {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
        }
    }

    fn bank(bank_group: u32, bank: u32) -> BankId {
        BankId {
            channel: 0,
            rank: 0,
            bank_group,
            bank,
        }
    }

    fn checker() -> InvariantChecker {
        // medium(): 1 channel, 1 rank, 2 bank groups × 2 banks.
        InvariantChecker::new(Geometry::medium(), TimingParams::tiny_test(), false)
    }

    fn rules_of(c: &InvariantChecker) -> Vec<Rule> {
        c.violations().iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_open_read_close_cycle_has_no_violations() {
        let t = TimingParams::tiny_test();
        let mut c = checker();
        c.command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank0(),
                row: 3,
            },
        );
        c.command(
            Cycle(t.t_rcd),
            &CmdEvent::Rd {
                bank: bank0(),
                col: 0,
                auto_pre: false,
            },
        );
        c.command(Cycle(t.t_ras), &CmdEvent::Pre { bank: bank0() });
        c.command(
            Cycle(t.t_rc),
            &CmdEvent::Act {
                bank: bank0(),
                row: 4,
            },
        );
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    #[test]
    fn act_on_open_bank_fires() {
        let mut c = checker();
        c.command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank0(),
                row: 1,
            },
        );
        c.command(
            Cycle(100),
            &CmdEvent::Act {
                bank: bank0(),
                row: 2,
            },
        );
        assert!(rules_of(&c).contains(&Rule::ActOnOpenBank));
    }

    #[test]
    fn cas_on_closed_bank_and_trcd_fire() {
        let mut c = checker();
        c.command(
            Cycle(0),
            &CmdEvent::Rd {
                bank: bank0(),
                col: 0,
                auto_pre: false,
            },
        );
        assert!(rules_of(&c).contains(&Rule::CasOnClosedBank));

        let mut c = checker();
        c.command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank0(),
                row: 1,
            },
        );
        // tRCD = 4: RD at 3 is one cycle early.
        c.command(
            Cycle(3),
            &CmdEvent::Rd {
                bank: bank0(),
                col: 0,
                auto_pre: false,
            },
        );
        assert!(rules_of(&c).contains(&Rule::TRcd));
    }

    #[test]
    fn early_pre_and_early_act_fire() {
        let mut c = checker();
        c.command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank0(),
                row: 1,
            },
        );
        // tRAS = 10: PRE at 9 is early.
        c.command(Cycle(9), &CmdEvent::Pre { bank: bank0() });
        assert!(rules_of(&c).contains(&Rule::TRas));

        let mut c = checker();
        c.command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank0(),
                row: 1,
            },
        );
        c.command(Cycle(10), &CmdEvent::Pre { bank: bank0() });
        // ready_act = max(10 + tRP, 0 + tRC) = 14; 13 is early (tRC
        // and tRP bind equally here; tRP wins the attribution).
        c.command(
            Cycle(13),
            &CmdEvent::Act {
                bank: bank0(),
                row: 2,
            },
        );
        let rules = rules_of(&c);
        assert!(
            rules.contains(&Rule::TRp) || rules.contains(&Rule::TRc),
            "{rules:?}"
        );
    }

    #[test]
    fn trrd_and_tfaw_fire() {
        let mut c = checker();
        // tRRD_S = 2 (different group): ACT at 1 after ACT at 0 is early.
        c.command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank(0, 0),
                row: 1,
            },
        );
        c.command(
            Cycle(1),
            &CmdEvent::Act {
                bank: bank(1, 0),
                row: 1,
            },
        );
        assert!(rules_of(&c).contains(&Rule::TRrd));

        // 4 ACTs at 0,3,6,9 (legal spacing); 5th at 11 < 0 + tFAW = 12.
        let mut c = InvariantChecker::new(Geometry::server(), TimingParams::tiny_test(), false);
        for (i, at) in [0u64, 3, 6, 9].into_iter().enumerate() {
            c.command(
                Cycle(at),
                &CmdEvent::Act {
                    bank: BankId {
                        channel: 0,
                        rank: 0,
                        bank_group: i as u32,
                        bank: 0,
                    },
                    row: 1,
                },
            );
        }
        assert!(c.violations().is_empty(), "{:?}", c.violations());
        c.command(
            Cycle(11),
            &CmdEvent::Act {
                bank: BankId {
                    channel: 0,
                    rank: 0,
                    bank_group: 0,
                    bank: 1,
                },
                row: 1,
            },
        );
        assert!(rules_of(&c).contains(&Rule::TFaw));
    }

    #[test]
    fn ref_with_open_bank_and_rank_busy_fire() {
        let mut c = checker();
        c.command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank0(),
                row: 1,
            },
        );
        c.command(
            Cycle(20),
            &CmdEvent::Ref {
                channel: 0,
                rank: 0,
            },
        );
        assert!(rules_of(&c).contains(&Rule::RefWithOpenBank));

        let mut c = checker();
        c.command(
            Cycle(0),
            &CmdEvent::Ref {
                channel: 0,
                rank: 0,
            },
        );
        // tRFC = 20: rank busy until 20.
        c.command(
            Cycle(19),
            &CmdEvent::Act {
                bank: bank0(),
                row: 1,
            },
        );
        assert!(rules_of(&c).contains(&Rule::RankBusy));
    }

    #[test]
    fn cmd_bus_conflict_fires_on_same_cycle() {
        let mut c = checker();
        c.command(
            Cycle(5),
            &CmdEvent::Act {
                bank: bank(0, 0),
                row: 1,
            },
        );
        c.command(
            Cycle(5),
            &CmdEvent::Act {
                bank: bank(1, 0),
                row: 1,
            },
        );
        let rules = rules_of(&c);
        assert!(rules.contains(&Rule::CmdBusConflict), "{rules:?}");
    }

    #[test]
    fn data_bus_overlap_fires() {
        let mut c = checker();
        c.command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank(0, 0),
                row: 1,
            },
        );
        // Same bank group: tRRD_L = 3.
        c.command(
            Cycle(3),
            &CmdEvent::Act {
                bank: bank(0, 1),
                row: 1,
            },
        );
        // First burst occupies [6+cl, 6+cl+tBL) = [11, 13).
        c.command(
            Cycle(6),
            &CmdEvent::Rd {
                bank: bank(0, 0),
                col: 0,
                auto_pre: false,
            },
        );
        // Second burst [12, 14) starts before 13 — overlap. tRCD for
        // the bank opened at 3 is satisfied (7 >= 3 + 4).
        c.command(
            Cycle(7),
            &CmdEvent::Rd {
                bank: bank(0, 1),
                col: 0,
                auto_pre: false,
            },
        );
        assert!(
            rules_of(&c).contains(&Rule::DataBusOverlap),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn ref_starvation_fires_on_gap_and_tail() {
        let t = TimingParams::tiny_test();
        let limit = MAX_REF_GAP_TREFI * t.t_refi;
        let mut c = checker();
        c.command(
            Cycle(10),
            &CmdEvent::Ref {
                channel: 0,
                rank: 0,
            },
        );
        c.command(
            Cycle(10 + limit + 1),
            &CmdEvent::Ref {
                channel: 0,
                rank: 0,
            },
        );
        assert!(rules_of(&c).contains(&Rule::RefStarved));

        let mut c = checker();
        c.command(
            Cycle(10),
            &CmdEvent::Ref {
                channel: 0,
                rank: 0,
            },
        );
        c.finish(Cycle(10 + limit + 1));
        assert!(rules_of(&c).contains(&Rule::RefStarved));

        // No REF at all: refresh disabled, not starvation.
        let mut c = checker();
        c.command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank0(),
                row: 1,
            },
        );
        c.finish(Cycle(1_000_000));
        assert!(c.violations().is_empty());
    }

    #[test]
    fn conservation_mismatch_fires() {
        let mut c = checker();
        c.command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank0(),
                row: 1,
            },
        );
        let stats = DramStats {
            acts: 2, // trace saw 1
            ..DramStats::default()
        };
        c.device_stats(Cycle(0), &stats);
        assert!(rules_of(&c).contains(&Rule::CommandConservation));
    }

    #[test]
    fn auto_pre_reopens_only_after_trp() {
        let t = TimingParams::tiny_test();
        let mut c = checker();
        c.command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank0(),
                row: 1,
            },
        );
        c.command(
            Cycle(t.t_rcd),
            &CmdEvent::Rd {
                bank: bank0(),
                col: 0,
                auto_pre: true,
            },
        );
        // Auto-pre time = max(tRAS=10, 4+tRTP=7) = 10; next ACT legal
        // at max(10 + tRP, 0 + tRC) = 14.
        c.command(
            Cycle(13),
            &CmdEvent::Act {
                bank: bank0(),
                row: 2,
            },
        );
        let rules = rules_of(&c);
        assert!(
            rules.contains(&Rule::TRp) || rules.contains(&Rule::TRc),
            "{rules:?}"
        );

        let mut c = checker();
        c.command(
            Cycle(0),
            &CmdEvent::Act {
                bank: bank0(),
                row: 1,
            },
        );
        c.command(
            Cycle(t.t_rcd),
            &CmdEvent::Rd {
                bank: bank0(),
                col: 0,
                auto_pre: true,
            },
        );
        c.command(
            Cycle(14),
            &CmdEvent::Act {
                bank: bank0(),
                row: 2,
            },
        );
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }
}
