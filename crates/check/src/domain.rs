//! The OS-layer isolation invariant: guard-radius spacing between
//! domains.
//!
//! The isolation-centric allocator (paper §4.1) promises that frames
//! of different isolation domains are never mapped to row stripes
//! within one blast radius of each other — that spacing is what makes
//! cross-domain hammering physically impossible. This module checks
//! the promise from the allocator's output alone.

use crate::rules::{Rule, Violation};

/// Checks the isolation-domain invariant over an allocator's ownership
/// map: `owned` lists `(row stripe, domain)` pairs for every stripe a
/// domain owns frames in, and no two *different* domains may own
/// stripes closer than or equal to `radius` apart.
///
/// Returns one violation per offending adjacent pair (after sorting by
/// stripe, adjacency is sufficient: any violating pair at distance ≤
/// `radius` implies a violating adjacent pair within it).
pub fn lint_domain_stripes(owned: &[(u32, u64)], radius: u32) -> Vec<Violation> {
    let mut sorted: Vec<(u32, u64)> = owned.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut out = Vec::new();
    for pair in sorted.windows(2) {
        let (s1, d1) = pair[0];
        let (s2, d2) = pair[1];
        if d1 != d2 && s2 - s1 <= radius {
            out.push(Violation {
                cycle: 0,
                rule: Rule::DomainGuard,
                bank: None,
                detail: format!(
                    "domain {d1} owns stripe {s1} and domain {d2} owns stripe {s2} \
                     ({} apart, guard radius {radius})",
                    s2 - s1
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respecting_the_radius_is_clean() {
        let owned = [(0, 1), (1, 1), (5, 2), (6, 2), (10, 1)];
        assert!(lint_domain_stripes(&owned, 2).is_empty());
    }

    #[test]
    fn adjacent_foreign_stripes_violate() {
        let owned = [(0, 1), (2, 2)];
        let v = lint_domain_stripes(&owned, 2);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::DomainGuard);
    }

    #[test]
    fn same_domain_stripes_never_violate() {
        let owned = [(0, 1), (1, 1), (2, 1)];
        assert!(lint_domain_stripes(&owned, 4).is_empty());
    }

    #[test]
    fn violation_found_across_interleaved_same_domain_stripe() {
        // 0(d1), 1(d1), 2(d2): the (1, 2) adjacent pair violates even
        // though (0, 2) is the "visually" offending span.
        let owned = [(0, 1), (1, 1), (2, 2)];
        assert!(!lint_domain_stripes(&owned, 1).is_empty());
    }
}
