//! The invariant catalog: rule identifiers and structured violations.
//!
//! Every rule corresponds to one JEDEC-style constraint or one
//! cross-layer conservation law; DESIGN.md §9 tabulates each rule
//! against the datasheet constraint and the paper section it protects.

use hammertime_common::geometry::BankId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One invariant the checker enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rule {
    // ---- per-bank state-machine legality ----
    /// ACT issued to a bank whose row buffer is already open.
    ActOnOpenBank,
    /// RD/WR issued to a bank with no open row.
    CasOnClosedBank,
    /// REF/REFN issued while a covered bank still has an open row.
    RefWithOpenBank,
    /// A row or column index outside the device geometry.
    AddressRange,

    // ---- per-bank timing ----
    /// RD/WR before tRCD has elapsed since the ACT.
    TRcd,
    /// PRE before the earliest legal close (tRAS since ACT, tRTP since
    /// RD, or write recovery since the WR burst).
    TRas,
    /// ACT before tRP has elapsed since the closing PRE.
    TRp,
    /// ACT before tRC has elapsed since the previous ACT of the bank.
    TRc,

    // ---- per-channel bus occupancy ----
    /// Two commands on one channel's command bus in the same cycle (or
    /// out of order).
    CmdBusConflict,
    /// A CAS data burst overlapping the previous burst on the
    /// channel's data bus (CL/CWL + tBL occupancy).
    DataBusOverlap,

    // ---- rank-level timing ----
    /// ACT-to-ACT spacing below tRRD_L (same bank group) or tRRD_S
    /// (different group).
    TRrd,
    /// A fifth ACT inside one rank's four-activate window (tFAW).
    TFaw,
    /// A command to a rank (or a bank it covers) still busy with a
    /// refresh (tRFC / REFN row-cycle occupancy).
    RankBusy,

    // ---- refresh schedule ----
    /// A rank went longer than the pull-in window allows (9×tREFI)
    /// without a REF.
    RefStarved,

    // ---- cross-layer conservation ----
    /// Command counts on the trace disagree with the device's final
    /// `DramStats` counters.
    CommandConservation,
    /// Flip events on the trace disagree with `DramStats.flips`.
    FlipConservation,

    // ---- OS-layer isolation ----
    /// Two isolation domains own row stripes within one guard radius.
    DomainGuard,

    // ---- trace well-formedness ----
    /// The trace itself is malformed (command before `DeviceReset`,
    /// unparseable embedded config/stats).
    TraceFormat,
}

/// Coarse family of a rule, used by the mutation harness to prove
/// coverage of distinct rule *classes*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleClass {
    /// FSM legality (state-dependent command validity).
    Protocol,
    /// Bank-local timing windows.
    BankTiming,
    /// Command/data bus exclusivity.
    Bus,
    /// Rank-level ACT spacing and occupancy.
    Rank,
    /// Refresh-interval deadlines.
    Refresh,
    /// Cross-layer count conservation.
    Conservation,
    /// OS-layer isolation-domain spacing.
    Isolation,
    /// Trace well-formedness.
    Format,
}

impl Rule {
    /// Short kebab-case name, used in reports and metrics keys.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::ActOnOpenBank => "act-on-open-bank",
            Rule::CasOnClosedBank => "cas-on-closed-bank",
            Rule::RefWithOpenBank => "ref-with-open-bank",
            Rule::AddressRange => "address-range",
            Rule::TRcd => "t-rcd",
            Rule::TRas => "t-ras",
            Rule::TRp => "t-rp",
            Rule::TRc => "t-rc",
            Rule::CmdBusConflict => "cmd-bus-conflict",
            Rule::DataBusOverlap => "data-bus-overlap",
            Rule::TRrd => "t-rrd",
            Rule::TFaw => "t-faw",
            Rule::RankBusy => "rank-busy",
            Rule::RefStarved => "ref-starved",
            Rule::CommandConservation => "command-conservation",
            Rule::FlipConservation => "flip-conservation",
            Rule::DomainGuard => "domain-guard",
            Rule::TraceFormat => "trace-format",
        }
    }

    /// The rule's class.
    pub fn class(&self) -> RuleClass {
        match self {
            Rule::ActOnOpenBank
            | Rule::CasOnClosedBank
            | Rule::RefWithOpenBank
            | Rule::AddressRange => RuleClass::Protocol,
            Rule::TRcd | Rule::TRas | Rule::TRp | Rule::TRc => RuleClass::BankTiming,
            Rule::CmdBusConflict | Rule::DataBusOverlap => RuleClass::Bus,
            Rule::TRrd | Rule::TFaw | Rule::RankBusy => RuleClass::Rank,
            Rule::RefStarved => RuleClass::Refresh,
            Rule::CommandConservation | Rule::FlipConservation => RuleClass::Conservation,
            Rule::DomainGuard => RuleClass::Isolation,
            Rule::TraceFormat => RuleClass::Format,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One detected invariant violation: which rule, where, and why.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Cycle the offending record is stamped with (0 for structural
    /// checks that have no single cycle, e.g. domain spacing).
    pub cycle: u64,
    /// The violated rule.
    pub rule: Rule,
    /// The bank the violation is attributed to, when bank-scoped.
    pub bank: Option<BankId>,
    /// Human-readable diagnostic with the exact numbers involved.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} [{}]", self.cycle, self.rule.name())?;
        if let Some(b) = &self.bank {
            write!(
                f,
                " ch{}:rk{}:bg{}:ba{}",
                b.channel, b.rank, b.bank_group, b.bank
            )?;
        }
        write!(f, " {}", self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_distinct() {
        let rules = [
            Rule::ActOnOpenBank,
            Rule::CasOnClosedBank,
            Rule::RefWithOpenBank,
            Rule::AddressRange,
            Rule::TRcd,
            Rule::TRas,
            Rule::TRp,
            Rule::TRc,
            Rule::CmdBusConflict,
            Rule::DataBusOverlap,
            Rule::TRrd,
            Rule::TFaw,
            Rule::RankBusy,
            Rule::RefStarved,
            Rule::CommandConservation,
            Rule::FlipConservation,
            Rule::DomainGuard,
            Rule::TraceFormat,
        ];
        let names: std::collections::HashSet<_> = rules.iter().map(Rule::name).collect();
        assert_eq!(names.len(), rules.len());
    }

    #[test]
    fn violation_serializes_to_json() {
        let v = Violation {
            cycle: 17,
            rule: Rule::TFaw,
            bank: Some(BankId {
                channel: 0,
                rank: 1,
                bank_group: 0,
                bank: 3,
            }),
            detail: "5th ACT at 17 inside window opened at 10 (tFAW 12)".into(),
        };
        let json = serde_json::to_string(&v).unwrap();
        let back: Violation = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
        assert!(json.contains("TFaw"));
    }
}
