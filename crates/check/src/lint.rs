//! Offline trace linting: drive the invariant engine over a recorded
//! command trace.
//!
//! A command trace is self-describing — each [`Event::DeviceReset`]
//! embeds the full `DramConfig` of the device coming up, and each
//! [`Event::DeviceStats`] closes that device's segment with its final
//! counters — so the linter needs no out-of-band configuration: it
//! rebuilds an [`InvariantChecker`] per segment and validates every
//! command, then the conservation laws, then the refresh-deadline tail.

use crate::checker::InvariantChecker;
use crate::rules::{Rule, Violation};
use hammertime_common::Cycle;
use hammertime_dram::{DramConfig, DramStats};
use hammertime_telemetry::{CommandTrace, Event, TraceRecord};

/// The result of linting one trace: every violation found, plus the
/// coverage counters a report wants to print.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All violations, in detection order.
    pub violations: Vec<Violation>,
    /// DDR commands checked.
    pub commands: u64,
    /// Device segments (one per `DeviceReset`).
    pub devices: u64,
}

impl LintReport {
    /// `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Machine-readable JSONL: one [`Violation`] object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&serde_json::to_string(v).expect("violation serializes"));
            out.push('\n');
        }
        out
    }

    /// Rules that fired, deduplicated, in first-fired order.
    pub fn rules_fired(&self) -> Vec<Rule> {
        let mut seen = Vec::new();
        for v in &self.violations {
            if !seen.contains(&v.rule) {
                seen.push(v.rule);
            }
        }
        seen
    }
}

/// One device segment being linted.
struct Segment {
    checker: InvariantChecker,
    /// Latest cycle covered by the segment (commands or stats record).
    end: Cycle,
    /// Whether the closing `DeviceStats` was seen.
    closed: bool,
}

/// Lints a stream of trace records (the payload of a command trace).
pub fn lint_records(records: &[TraceRecord]) -> LintReport {
    let mut report = LintReport::default();
    let mut segment: Option<Segment> = None;

    let close = |seg: &mut Option<Segment>, report: &mut LintReport| {
        if let Some(mut s) = seg.take() {
            s.checker.finish(s.end);
            report.commands += s.checker.commands_checked();
            report.violations.extend(s.checker.into_violations());
        }
    };

    for rec in records {
        match &rec.event {
            Event::DeviceReset { config_json } => {
                close(&mut segment, &mut report);
                report.devices += 1;
                match serde_json::from_str::<DramConfig>(config_json) {
                    Ok(config) => {
                        segment = Some(Segment {
                            checker: InvariantChecker::new(
                                config.geometry,
                                config.timing,
                                config.batched_pressure,
                            ),
                            end: Cycle(rec.cycle),
                            closed: false,
                        });
                    }
                    Err(e) => {
                        report.violations.push(Violation {
                            cycle: rec.cycle,
                            rule: Rule::TraceFormat,
                            bank: None,
                            detail: format!("DeviceReset config does not parse: {e}"),
                        });
                    }
                }
            }
            Event::Command { cmd } => match &mut segment {
                Some(s) if !s.closed => {
                    s.end = s.end.max(Cycle(rec.cycle));
                    s.checker.command(Cycle(rec.cycle), cmd);
                }
                _ => {
                    report.violations.push(Violation {
                        cycle: rec.cycle,
                        rule: Rule::TraceFormat,
                        bank: None,
                        detail: format!(
                            "{} command outside a device segment (no preceding DeviceReset)",
                            cmd.mnemonic()
                        ),
                    });
                }
            },
            Event::Flip { .. } => {
                if let Some(s) = &mut segment {
                    s.checker.flip();
                }
            }
            Event::DeviceStats { stats_json } => match &mut segment {
                Some(s) if !s.closed => {
                    s.end = s.end.max(Cycle(rec.cycle));
                    match serde_json::from_str::<DramStats>(stats_json) {
                        Ok(stats) => s.checker.device_stats(Cycle(rec.cycle), &stats),
                        Err(e) => report.violations.push(Violation {
                            cycle: rec.cycle,
                            rule: Rule::TraceFormat,
                            bank: None,
                            detail: format!("DeviceStats does not parse: {e}"),
                        }),
                    }
                    s.closed = true;
                }
                _ => report.violations.push(Violation {
                    cycle: rec.cycle,
                    rule: Rule::TraceFormat,
                    bank: None,
                    detail: "DeviceStats outside a device segment".into(),
                }),
            },
            // Machine-level events (interrupts, remaps, retention
            // checks, TRR actions, injected faults, wedges) carry no
            // bus-level invariants.
            _ => {}
        }
    }
    close(&mut segment, &mut report);
    report
}

/// Lints a complete [`CommandTrace`] (header + records).
pub fn lint_trace(trace: &CommandTrace) -> LintReport {
    lint_records(&trace.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime_common::geometry::BankId;
    use hammertime_dram::{DdrCommand, DramModule};
    use hammertime_telemetry::Tracer;

    /// Drives a real traced device through a legal command sequence and
    /// returns the records — the ground-truth "clean trace" source.
    fn recorded_session() -> Vec<TraceRecord> {
        let tracer = Tracer::buffer();
        let mut config = DramConfig::test_config(1_000_000);
        config.tracer = Some(tracer.clone());
        let bank = BankId {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
        };
        {
            let mut dram = DramModule::new(config).unwrap();
            let t = hammertime_dram::TimingParams::tiny_test();
            let mut now = Cycle(1);
            for _ in 0..3 {
                dram.issue(&DdrCommand::Act { bank, row: 2 }, now).unwrap();
                now += t.t_rcd;
                dram.issue(
                    &DdrCommand::Rd {
                        bank,
                        col: 0,
                        auto_pre: false,
                    },
                    now,
                )
                .unwrap();
                now += t.t_ras - t.t_rcd;
                dram.issue(&DdrCommand::Pre { bank }, now).unwrap();
                now += t.t_rc;
            }
        }
        tracer.take_records()
    }

    #[test]
    fn real_device_session_lints_clean() {
        let records = recorded_session();
        assert!(records
            .iter()
            .any(|r| matches!(r.event, Event::DeviceStats { .. })));
        let report = lint_records(&records);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.devices, 1);
        assert!(report.commands >= 9);
    }

    #[test]
    fn command_before_reset_is_flagged() {
        let mut records = recorded_session();
        // Strip the DeviceReset: every command is now orphaned.
        records.retain(|r| !matches!(r.event, Event::DeviceReset { .. }));
        let report = lint_records(&records);
        assert!(report.rules_fired().contains(&Rule::TraceFormat));
    }

    #[test]
    fn dropped_command_breaks_conservation() {
        let mut records = recorded_session();
        let idx = records
            .iter()
            .position(|r| {
                matches!(
                    r.event,
                    Event::Command {
                        cmd: hammertime_telemetry::CmdEvent::Rd { .. }
                    }
                )
            })
            .unwrap();
        records.remove(idx);
        let report = lint_records(&records);
        assert!(report.rules_fired().contains(&Rule::CommandConservation));
    }

    #[test]
    fn jsonl_report_is_one_object_per_line() {
        let mut records = recorded_session();
        records.retain(|r| !matches!(r.event, Event::DeviceReset { .. }));
        let report = lint_records(&records);
        let jsonl = report.to_jsonl();
        assert_eq!(jsonl.lines().count(), report.violations.len());
        for line in jsonl.lines() {
            let v: Violation = serde_json::from_str(line).unwrap();
            assert_eq!(v.rule, Rule::TraceFormat);
        }
    }
}
