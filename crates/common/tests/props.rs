//! Property tests for the foundation types.

use hammertime_common::time::{cycles_to_ns, ns_to_cycles};
use hammertime_common::{CacheLineAddr, Cycle, DetRng, Geometry, PhysAddr, VirtAddr};
use proptest::prelude::*;

proptest! {
    /// Cycle offset/delta are inverse operations.
    #[test]
    fn cycle_offset_delta_inverse(base in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4) {
        let t = Cycle(base);
        let later = t + d;
        prop_assert_eq!(later.delta(t), d);
        prop_assert_eq!(later - t, d);
    }

    /// max/min are consistent with ordering.
    #[test]
    fn cycle_max_min(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (Cycle(a), Cycle(b));
        prop_assert_eq!(x.max(y).raw(), a.max(b));
        prop_assert_eq!(x.min(y).raw(), a.min(b));
    }

    /// ns→cycles never rounds down (JEDEC constraints are minimums).
    #[test]
    fn ns_to_cycles_rounds_up(ns in 0.0f64..1e9, mhz in 1u64..10_000) {
        let cycles = ns_to_cycles(ns, mhz);
        let back = cycles_to_ns(cycles, mhz);
        prop_assert!(back >= ns - 1e-6, "{back} < {ns}");
    }

    /// Physical address decomposition reassembles exactly.
    #[test]
    fn phys_addr_decomposition_reassembles(raw in any::<u64>()) {
        let pa = PhysAddr(raw);
        let rebuilt = PhysAddr::from_frame(pa.page_frame()).offset(pa.page_offset());
        prop_assert_eq!(rebuilt, pa);
        // Line containment.
        prop_assert!(pa.line().base().0 <= raw);
        prop_assert!(raw < pa.line().base().0 + 64);
    }

    /// Virtual address decomposition reassembles exactly.
    #[test]
    fn virt_addr_decomposition_reassembles(raw in any::<u64>() ) {
        let va = VirtAddr(raw % (u64::MAX / 2));
        let rebuilt = VirtAddr::from_page(va.page_number()).offset(va.page_offset());
        prop_assert_eq!(rebuilt, va);
    }

    /// Line index ↔ base address round trip.
    #[test]
    fn line_round_trip(idx in any::<u32>()) {
        let line = CacheLineAddr(idx as u64);
        prop_assert_eq!(line.base().line(), line);
    }

    /// Same seed ⇒ identical stream; fork(salt) is deterministic.
    #[test]
    fn rng_determinism(seed in any::<u64>(), salt in any::<u64>()) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut fa = a.fork(salt);
        let mut fb = b.fork(salt);
        prop_assert_eq!(fa.next_u64(), fb.next_u64());
    }

    /// below() respects its bound for arbitrary bounds.
    #[test]
    fn rng_below_bound(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = DetRng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Shuffle always yields a permutation.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), len in 0usize..64) {
        let mut rng = DetRng::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    /// Power-of-two geometries validate; derived counts are consistent.
    #[test]
    fn geometry_counts_consistent(
        ch in 0u32..2, rk in 0u32..2, bg in 0u32..3, ba in 0u32..3,
        sa in 0u32..4, rows in 3u32..8, cols in 3u32..8,
    ) {
        let g = Geometry {
            channels: 1 << ch,
            ranks: 1 << rk,
            bank_groups: 1 << bg,
            banks_per_group: 1 << ba,
            subarrays_per_bank: 1 << sa,
            rows_per_subarray: 1 << rows,
            columns: 1 << cols,
        };
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.total_rows(), g.total_banks() * g.rows_per_bank() as u64);
        prop_assert_eq!(g.capacity_bytes(), g.total_lines() * 64);
        // Subarray classification covers every row exactly once.
        for row in [0, g.rows_per_bank() - 1] {
            prop_assert!(g.subarray_of_row(row) < g.subarrays_per_bank);
        }
    }
}
