//! The shared on-disk trace header.
//!
//! The workspace has two "trace" notions: the *input-side* operation
//! trace ([`hammertime-workloads`]'s recorded access streams) and the
//! *output-side* telemetry command trace (what the device actually
//! executed). Both are serialized artifacts that outlive the process
//! that wrote them, so both carry this common header — one magic, one
//! version, and a [`TraceKind`] tag — and refuse to load a file of the
//! wrong kind or a future version. Keeping the header here (the only
//! crate both sides depend on) means the two formats cannot drift
//! apart silently.
//!
//! [`hammertime-workloads`]: https://example.com/hammertime

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Magic string identifying any hammertime trace artifact.
pub const TRACE_MAGIC: &str = "HTRC";

/// Current trace format version. Bump on any incompatible change to
/// either payload format.
pub const TRACE_VERSION: u32 = 1;

/// Which payload follows the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Input-side: a recorded stream of memory access operations
    /// (`hammertime-workloads`).
    Ops,
    /// Output-side: a cycle-stamped telemetry event stream including
    /// the DDR commands the device executed (`hammertime-telemetry`).
    Commands,
}

impl TraceKind {
    /// Short lowercase name, for messages and file sniffing.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Ops => "ops",
            TraceKind::Commands => "commands",
        }
    }
}

/// Version header carried by every serialized trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Always [`TRACE_MAGIC`].
    pub magic: String,
    /// Format version, currently [`TRACE_VERSION`].
    pub version: u32,
    /// Payload kind.
    pub kind: TraceKind,
}

impl TraceHeader {
    /// Header for an input-side operation trace.
    pub fn ops() -> TraceHeader {
        TraceHeader::new(TraceKind::Ops)
    }

    /// Header for an output-side telemetry command trace.
    pub fn commands() -> TraceHeader {
        TraceHeader::new(TraceKind::Commands)
    }

    fn new(kind: TraceKind) -> TraceHeader {
        TraceHeader {
            magic: TRACE_MAGIC.to_string(),
            version: TRACE_VERSION,
            kind,
        }
    }

    /// Checks magic, version, and kind; `Err(Error::Config)` with a
    /// diagnosable message on any mismatch.
    pub fn validate(&self, expected: TraceKind) -> Result<()> {
        if self.magic != TRACE_MAGIC {
            return Err(Error::Config(format!(
                "not a hammertime trace: magic {:?} (want {TRACE_MAGIC:?})",
                self.magic
            )));
        }
        if self.version != TRACE_VERSION {
            return Err(Error::Config(format!(
                "unsupported trace version {} (this build reads version {TRACE_VERSION})",
                self.version
            )));
        }
        if self.kind != expected {
            return Err(Error::Config(format!(
                "wrong trace kind: file holds a {} trace, expected {}",
                self.kind.name(),
                expected.name()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_matching_kind() {
        assert!(TraceHeader::ops().validate(TraceKind::Ops).is_ok());
        assert!(TraceHeader::commands()
            .validate(TraceKind::Commands)
            .is_ok());
    }

    #[test]
    fn validate_rejects_mismatches() {
        let mut h = TraceHeader::ops();
        assert!(h.validate(TraceKind::Commands).is_err());
        h.magic = "NOPE".into();
        assert!(h.validate(TraceKind::Ops).is_err());
        let mut h = TraceHeader::commands();
        h.version = TRACE_VERSION + 1;
        assert!(h.validate(TraceKind::Commands).is_err());
    }
}
