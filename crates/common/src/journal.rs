//! Append-only, checksummed epoch journal.
//!
//! Durable fleet runs write one record per committed epoch barrier so a
//! crashed or killed run can resume without losing completed work. The
//! format follows the [`traceformat`](crate::traceformat) discipline —
//! a magic + version header that refuses foreign or future files — but
//! is binary and framed, because a journal must survive the writer
//! dying mid-record:
//!
//! ```text
//! header:  "HTJL" | version u32 LE | seed u64 LE          (16 bytes)
//! record:  len u32 LE | kind u16 LE | crc u32 LE | payload
//! ```
//!
//! `len` counts the payload bytes only; `crc` is CRC-32 (IEEE) over the
//! kind bytes followed by the payload, so a bit flip in either is
//! detected. Two read modes serve two callers:
//!
//! - [`read_all`] is *strict*: any malformed frame — bad magic, future
//!   version, short header, CRC mismatch, truncated tail — is a
//!   structured [`Error`], never a panic. Tamper tests assert on this.
//! - [`JournalWriter::recover`] is *tolerant*: it keeps the longest
//!   valid prefix, reports whether a torn tail was dropped, truncates
//!   the file to the prefix, and reopens it for appending. Resume uses
//!   this to fall back to the last committed epoch after a SIGKILL
//!   landed mid-write.
//!
//! The journal does not know what the payloads mean; record `kind`
//! namespacing belongs to the caller (the fleet crate commits epoch
//! postings, commit markers, clean-stop markers, and quarantine
//! events).

use crate::error::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes opening every journal file.
pub const JOURNAL_MAGIC: [u8; 4] = *b"HTJL";

/// Current journal format version. Bump on any incompatible change.
pub const JOURNAL_VERSION: u32 = 1;

/// Header length in bytes: magic + version + seed.
const HEADER_LEN: u64 = 16;

/// Frame prefix length in bytes: len + kind + crc.
const FRAME_LEN: u64 = 10;

/// Upper bound on a single payload, so a corrupt length field cannot
/// make a reader allocate gigabytes. Fleet epoch postings for even a
/// huge population are far below this.
const MAX_PAYLOAD: u32 = 64 << 20;

/// One journal record: an opaque payload tagged with a caller-defined
/// kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Caller-defined record type tag.
    pub kind: u16,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `parts`
/// concatenated. Hand-rolled table so the workspace stays
/// dependency-free.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    // The table is tiny to build; computing it per call keeps the code
    // free of lazy-init machinery and is nowhere near a hot path (one
    // call per epoch barrier).
    let mut table = [0u32; 256];
    for (i, slot) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *slot = c;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
    }
    crc ^ 0xFFFF_FFFF
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Config(format!("journal {what} {}: {e}", path.display()))
}

fn encode_header(seed: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..4].copy_from_slice(&JOURNAL_MAGIC);
    h[4..8].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&seed.to_le_bytes());
    h
}

/// Validates a header buffer; returns the recorded seed.
fn decode_header(buf: &[u8], path: &Path) -> Result<u64> {
    if buf.len() < HEADER_LEN as usize {
        return Err(Error::Config(format!(
            "journal {} is truncated before the header ({} of {HEADER_LEN} bytes)",
            path.display(),
            buf.len()
        )));
    }
    if buf[0..4] != JOURNAL_MAGIC {
        return Err(Error::Config(format!(
            "not a hammertime journal: {} has magic {:?} (want {:?})",
            path.display(),
            &buf[0..4],
            JOURNAL_MAGIC
        )));
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if version != JOURNAL_VERSION {
        return Err(Error::Config(format!(
            "unsupported journal version {version} in {} (this build reads version {JOURNAL_VERSION})",
            path.display()
        )));
    }
    Ok(u64::from_le_bytes(buf[8..16].try_into().unwrap()))
}

/// Outcome of scanning a journal's frames.
struct Scan {
    records: Vec<Record>,
    /// Byte offset just past the last valid frame.
    valid_len: u64,
    /// Description of the first malformed frame, if any.
    defect: Option<String>,
}

fn scan_frames(buf: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut off = HEADER_LEN as usize;
    let defect = loop {
        if off == buf.len() {
            break None;
        }
        let rest = &buf[off..];
        if rest.len() < FRAME_LEN as usize {
            break Some(format!(
                "truncated frame prefix at byte {off} ({} of {FRAME_LEN} bytes)",
                rest.len()
            ));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if len > MAX_PAYLOAD {
            break Some(format!(
                "implausible payload length {len} at byte {off} (max {MAX_PAYLOAD})"
            ));
        }
        let kind = u16::from_le_bytes(rest[4..6].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[6..10].try_into().unwrap());
        let body = &rest[FRAME_LEN as usize..];
        if body.len() < len as usize {
            break Some(format!(
                "truncated payload at byte {off} ({} of {len} bytes)",
                body.len()
            ));
        }
        let payload = &body[..len as usize];
        let want = crc32(&[&rest[4..6], payload]);
        if crc != want {
            break Some(format!(
                "CRC mismatch at byte {off} (stored {crc:#010x}, computed {want:#010x})"
            ));
        }
        records.push(Record {
            kind,
            payload: payload.to_vec(),
        });
        off += FRAME_LEN as usize + len as usize;
    };
    Scan {
        records,
        valid_len: off as u64,
        defect,
    }
}

fn read_file(path: &Path) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut buf))
        .map_err(|e| io_err("open", path, e))?;
    Ok(buf)
}

/// Strictly reads an entire journal: returns the recorded seed and all
/// records, or a structured [`Error`] describing the *first* defect —
/// bad magic, future version, bit flip (CRC mismatch), or truncation.
pub fn read_all(path: &Path) -> Result<(u64, Vec<Record>)> {
    let buf = read_file(path)?;
    let seed = decode_header(&buf, path)?;
    let scan = scan_frames(&buf);
    if let Some(defect) = scan.defect {
        return Err(Error::Config(format!(
            "corrupt journal {}: {defect}",
            path.display()
        )));
    }
    Ok((seed, scan.records))
}

/// An append-only journal file.
///
/// Appends are flushed and fsynced individually ([`JournalWriter::append`]
/// then [`JournalWriter::sync`]), so a record either survives a crash
/// whole or is dropped as a torn tail by [`JournalWriter::recover`].
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: std::path::PathBuf,
}

impl JournalWriter {
    /// Creates a fresh journal (truncating any existing file) and
    /// writes the header.
    pub fn create(path: &Path, seed: u64) -> Result<JournalWriter> {
        let mut file = File::create(path).map_err(|e| io_err("create", path, e))?;
        file.write_all(&encode_header(seed))
            .and_then(|()| file.sync_data())
            .map_err(|e| io_err("write header to", path, e))?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Reopens an existing journal for appending, tolerating a torn
    /// tail: the longest valid frame prefix is kept, anything after it
    /// is truncated away, and the surviving records are returned along
    /// with whether a tail was dropped.
    ///
    /// Header damage (wrong magic, future version) is *not* tolerated —
    /// that is a foreign file, not a torn write — and neither is a seed
    /// mismatch, which means the journal belongs to a different run.
    pub fn recover(path: &Path, seed: u64) -> Result<(JournalWriter, Vec<Record>, bool)> {
        let buf = read_file(path)?;
        let recorded = decode_header(&buf, path)?;
        if recorded != seed {
            return Err(Error::Config(format!(
                "journal {} was written for seed {recorded:#x}, not {seed:#x}",
                path.display()
            )));
        }
        let scan = scan_frames(&buf);
        let torn = scan.defect.is_some();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err("reopen", path, e))?;
        if torn {
            file.set_len(scan.valid_len)
                .map_err(|e| io_err("truncate", path, e))?;
        }
        file.seek(SeekFrom::Start(scan.valid_len))
            .map_err(|e| io_err("seek", path, e))?;
        Ok((
            JournalWriter {
                file,
                path: path.to_path_buf(),
            },
            scan.records,
            torn,
        ))
    }

    /// Appends one record. The frame is written in a single `write_all`
    /// so the window for a torn record is one syscall wide; call
    /// [`JournalWriter::sync`] to make it durable.
    pub fn append(&mut self, kind: u16, payload: &[u8]) -> Result<()> {
        assert!(
            payload.len() as u64 <= MAX_PAYLOAD as u64,
            "journal payload exceeds MAX_PAYLOAD"
        );
        let kind_bytes = kind.to_le_bytes();
        let crc = crc32(&[&kind_bytes, payload]);
        let mut frame = Vec::with_capacity(FRAME_LEN as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&kind_bytes);
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append to", &self.path, e))
    }

    /// Forces appended records to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .flush()
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err("sync", &self.path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("htjl-test-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join("epochs.htjl")
    }

    fn write_three(path: &Path) {
        let mut w = JournalWriter::create(path, 0xF1EE7).unwrap();
        w.append(1, b"first").unwrap();
        w.append(2, b"").unwrap();
        w.append(1, b"third record, a bit longer").unwrap();
        w.sync().unwrap();
    }

    #[test]
    fn round_trip_preserves_records() {
        let path = tmp("roundtrip");
        write_three(&path);
        let (seed, records) = read_all(&path).unwrap();
        assert_eq!(seed, 0xF1EE7);
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[0],
            Record {
                kind: 1,
                payload: b"first".to_vec()
            }
        );
        assert_eq!(
            records[1],
            Record {
                kind: 2,
                payload: Vec::new()
            }
        );
        assert_eq!(records[2].payload, b"third record, a bit longer");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn bit_flip_is_a_structured_error() {
        let path = tmp("bitflip");
        write_three(&path);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload bit in the middle of the file.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = read_all(&path).unwrap_err();
        assert!(
            err.to_string().contains("CRC mismatch") || err.to_string().contains("corrupt journal"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn truncation_at_every_boundary_recovers_a_prefix() {
        let path = tmp("truncate");
        write_three(&path);
        let full = fs::read(&path).unwrap();
        // Whatever byte we cut at, strict reads must error (unless the
        // cut lands exactly on a frame boundary) and recovery must
        // return a valid prefix of the three records.
        for cut in HEADER_LEN as usize..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            // A cut mid-frame must fail the strict reader; a cut on a
            // frame boundary just looks like a shorter journal.
            let strict = read_all(&path);
            let (_, records, torn) = JournalWriter::recover(&path, 0xF1EE7).unwrap();
            assert!(records.len() < 3, "cut {cut} kept everything");
            assert_eq!(strict.is_err(), torn, "cut {cut}");
            // The prefix must match the uncut journal's records.
            let expected: &[&[u8]] = &[b"first", b"", b"third record, a bit longer"];
            for (r, want) in records.iter().zip(expected) {
                assert_eq!(&r.payload[..], *want, "cut {cut}");
            }
        }
    }

    #[test]
    fn recover_truncates_and_reappends_cleanly() {
        let path = tmp("reappend");
        write_three(&path);
        let full = fs::read(&path).unwrap();
        // Tear the third record in half.
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (mut w, records, torn) = JournalWriter::recover(&path, 0xF1EE7).unwrap();
        assert!(torn);
        assert_eq!(records.len(), 2);
        w.append(7, b"replacement").unwrap();
        w.sync().unwrap();
        drop(w);
        let (_, records) = read_all(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[2],
            Record {
                kind: 7,
                payload: b"replacement".to_vec()
            }
        );
    }

    #[test]
    fn recover_of_clean_journal_is_not_torn() {
        let path = tmp("clean");
        write_three(&path);
        let (_, records, torn) = JournalWriter::recover(&path, 0xF1EE7).unwrap();
        assert!(!torn);
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn header_mismatches_are_rejected() {
        let path = tmp("header");
        write_three(&path);
        let mut bytes = fs::read(&path).unwrap();

        // Wrong seed: recover refuses (different run), strict read
        // does not care about the caller's seed.
        assert!(JournalWriter::recover(&path, 0xBAD).is_err());

        // Future version.
        bytes[4..8].copy_from_slice(&(JOURNAL_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = read_all(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "got: {err}");

        // Foreign magic.
        bytes[0..4].copy_from_slice(b"NOPE");
        fs::write(&path, &bytes).unwrap();
        let err = read_all(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "got: {err}");

        // Too short for a header at all.
        fs::write(&path, b"HTJ").unwrap();
        assert!(read_all(&path).is_err());
    }

    #[test]
    fn implausible_length_is_rejected_not_allocated() {
        let path = tmp("hugelen");
        let mut w = JournalWriter::create(&path, 1).unwrap();
        w.append(1, b"ok").unwrap();
        w.sync().unwrap();
        drop(w);
        let mut bytes = fs::read(&path).unwrap();
        // Stamp an absurd length into the frame prefix.
        bytes[HEADER_LEN as usize..HEADER_LEN as usize + 4]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = read_all(&path).unwrap_err();
        assert!(err.to_string().contains("implausible"), "got: {err}");
        // Tolerant recovery keeps zero records but succeeds.
        let (_, records, torn) = JournalWriter::recover(&path, 1).unwrap();
        assert!(torn);
        assert!(records.is_empty());
    }
}
