//! The workspace-wide error type.
//!
//! The simulator treats protocol violations (issuing a RD to a bank
//! with no open row, activating an already-active bank, violating a
//! timing constraint) as *errors*, not panics: a defense or scheduler
//! bug should surface as a diagnosable `Err`, and tests assert on the
//! specific variant.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced anywhere in the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Error {
    /// A configuration value is invalid (zero field, non-power-of-two
    /// count, inconsistent sweep, ...).
    Config(String),
    /// A DDR protocol rule was violated (e.g. ACT to an already-active
    /// bank, RD with no open row).
    Protocol(String),
    /// A DDR timing constraint was violated (command issued before its
    /// earliest legal cycle).
    Timing(String),
    /// An address could not be translated (unmapped virtual page,
    /// out-of-range physical address).
    Translation(String),
    /// A resource was exhausted (out of frames, queue full, no free
    /// LLC lock way).
    Exhausted(String),
    /// An operation required a privilege the caller lacks (e.g. a guest
    /// issuing the host-privileged `refresh` instruction).
    Privilege(String),
    /// The simulated machine detected unrecoverable corruption and
    /// locked up (the enclave integrity-check DoS path, §4.4).
    MachineLockup(String),
    /// An injected or detected hardware fault (a NACKed `refresh`
    /// instruction, a wedged scheduler, a corrupted remap entry): the
    /// component is degraded but the simulation itself is intact.
    Fault(String),
}

impl Error {
    /// Returns the human-readable message regardless of variant.
    pub fn message(&self) -> &str {
        match self {
            Error::Config(m)
            | Error::Protocol(m)
            | Error::Timing(m)
            | Error::Translation(m)
            | Error::Exhausted(m)
            | Error::Privilege(m)
            | Error::MachineLockup(m)
            | Error::Fault(m) => m,
        }
    }

    /// Returns a short static name for the variant, for metrics keys.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Config(_) => "config",
            Error::Protocol(_) => "protocol",
            Error::Timing(_) => "timing",
            Error::Translation(_) => "translation",
            Error::Exhausted(_) => "exhausted",
            Error::Privilege(_) => "privilege",
            Error::MachineLockup(_) => "lockup",
            Error::Fault(_) => "fault",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_and_kind_round_trip() {
        let e = Error::Timing("tRCD violated".into());
        assert_eq!(e.kind(), "timing");
        assert_eq!(e.message(), "tRCD violated");
        assert_eq!(e.to_string(), "timing: tRCD violated");
    }

    #[test]
    fn all_variants_have_distinct_kinds() {
        let variants = [
            Error::Config(String::new()),
            Error::Protocol(String::new()),
            Error::Timing(String::new()),
            Error::Translation(String::new()),
            Error::Exhausted(String::new()),
            Error::Privilege(String::new()),
            Error::MachineLockup(String::new()),
            Error::Fault(String::new()),
        ];
        let kinds: std::collections::HashSet<_> = variants.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), variants.len());
    }
}
