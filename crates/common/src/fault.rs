//! Deterministic fault injection: a seeded, serializable description of
//! *how* the modeled hardware misbehaves.
//!
//! The paper specifies its MC primitives as ideal — ACT-interrupts
//! always fire, ACT_COUNT never sticks, the `refresh` instruction never
//! NACKs — yet argues software defenses must survive imperfect,
//! blackbox DRAM (§2.3's in-DRAM TRR is the cautionary tale). This
//! module supplies the vocabulary for degrading that ideal hardware on
//! purpose:
//!
//! - [`FaultPlan`]: a serializable bag of per-fault rates and
//!   parameters, plus its own seed. Plans travel in configs and JSON
//!   files (`--faults PATH`).
//! - [`FaultKind`]: the taxonomy of injectable faults, one per hook
//!   site in `dram`/`memctrl`.
//! - [`FaultClock`]: the runtime side — one forked [`DetRng`] stream
//!   per fault kind, so firing one fault never perturbs the draw
//!   sequence of another, plus injection counters for reporting.
//!
//! # Determinism contract
//!
//! - **Absent plan ⇒ byte-identical.** Components hold an
//!   `Option<FaultClock>`; with `None` no hook draws from any RNG and
//!   the simulation is byte-identical to a build without the subsystem.
//! - **Inert plan ⇒ byte-identical.** [`DetRng::chance`] returns
//!   `false` for `p <= 0` *without advancing the stream*, so a plan
//!   whose rates are all zero (see [`FaultPlan::is_inert`]) makes the
//!   same decisions — and leaves every RNG in the same state — as no
//!   plan at all.
//! - **Plan + seed ⇒ identical run.** All randomness flows from
//!   `plan.seed` through per-component salts and per-kind forks; the
//!   wall clock, thread count, and iteration order of host-side maps
//!   never participate.

use crate::rng::DetRng;
use serde::Serialize;

/// The taxonomy of injectable hardware faults.
///
/// Each variant corresponds to one hook site in the `dram` or `memctrl`
/// crate; the enum's discriminant doubles as the RNG-fork salt so the
/// per-kind streams are stable across plan edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// A REF command is accepted (timing, cursor, busy accounting all
    /// proceed) but restores no rows — the retention/disturbance state
    /// the slot should have cleared survives.
    DroppedRef = 0,
    /// A REF command reports covering *two* cursor groups while
    /// restoring only one: the skipped group silently loses a refresh
    /// slot per wrap.
    GhostRef = 1,
    /// The in-DRAM TRR sampler fails to observe an ACT (the blackbox
    /// sampler-miss TRRespass exploits).
    TrrSamplerMiss = 2,
    /// A row's per-refresh-window activation counter saturates at a
    /// configured ceiling instead of counting accurately
    /// ([`FaultPlan::disturb_saturation`]); frequency-centric defenses
    /// reading it undercount hammering. Deterministic (a ceiling, not a
    /// rate) — recorded via [`FaultClock::note`], never fired.
    DisturbSaturation = 3,
    /// An ACT-interrupt raised by the counter block is silently lost
    /// before delivery to the kernel daemon.
    DroppedActInterrupt = 4,
    /// An ACT-interrupt is delivered [`FaultPlan::interrupt_delay`]
    /// cycles late — the daemon acts on stale information.
    DelayedActInterrupt = 5,
    /// The ACT_COUNT register wedges: for the next
    /// [`FaultPlan::stuck_window`] ACTs on the channel the counter
    /// neither increments nor overflows.
    StuckActCount = 6,
    /// The host-privileged `refresh` instruction is NACKed by the
    /// memory controller; the caller sees [`crate::Error::Fault`].
    RefreshNack = 7,
    /// A transient remap-table disturbance: one request's row lookup
    /// returns a bit-flipped (but in-range) row before the table
    /// self-corrects.
    RemapCorruption = 8,
}

impl FaultKind {
    /// Every fault kind, in discriminant order.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::DroppedRef,
        FaultKind::GhostRef,
        FaultKind::TrrSamplerMiss,
        FaultKind::DisturbSaturation,
        FaultKind::DroppedActInterrupt,
        FaultKind::DelayedActInterrupt,
        FaultKind::StuckActCount,
        FaultKind::RefreshNack,
        FaultKind::RemapCorruption,
    ];

    /// Short kebab-case name, for reports and metrics keys.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DroppedRef => "dropped-ref",
            FaultKind::GhostRef => "ghost-ref",
            FaultKind::TrrSamplerMiss => "trr-sampler-miss",
            FaultKind::DisturbSaturation => "disturb-saturation",
            FaultKind::DroppedActInterrupt => "dropped-act-interrupt",
            FaultKind::DelayedActInterrupt => "delayed-act-interrupt",
            FaultKind::StuckActCount => "stuck-act-count",
            FaultKind::RefreshNack => "refresh-nack",
            FaultKind::RemapCorruption => "remap-corruption",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// A serializable description of how the hardware misbehaves.
///
/// Rates are per-opportunity probabilities in `[0, 1]` (a rate of 0
/// disables that fault and draws nothing from its RNG stream);
/// parameters tune the non-rate faults. The plan carries its own seed
/// so `plan + seed ⇒ identical run` holds regardless of the machine
/// seed it rides along with.
///
/// Deserialization treats every field as optional (missing ⇒ the
/// [`Default`] value), so a JSON plan names only the faults it enables:
///
/// ```json
/// { "seed": 7, "dropped_ref": 0.05, "trr_miss": 0.25 }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Root seed for all fault decisions.
    pub seed: u64,
    /// Probability a REF restores no rows ([`FaultKind::DroppedRef`]).
    pub dropped_ref: f64,
    /// Probability a REF skips an extra cursor group
    /// ([`FaultKind::GhostRef`]).
    pub ghost_ref: f64,
    /// Probability the TRR sampler misses an ACT
    /// ([`FaultKind::TrrSamplerMiss`]).
    pub trr_miss: f64,
    /// Probability an ACT-interrupt is lost
    /// ([`FaultKind::DroppedActInterrupt`]).
    pub dropped_interrupt: f64,
    /// Probability an ACT-interrupt is delayed
    /// ([`FaultKind::DelayedActInterrupt`]).
    pub delayed_interrupt: f64,
    /// Probability, per counter-block ACT, that the channel's ACT_COUNT
    /// wedges for [`FaultPlan::stuck_window`] ACTs
    /// ([`FaultKind::StuckActCount`]).
    pub stuck_act_count: f64,
    /// Probability a host `refresh` instruction is NACKed
    /// ([`FaultKind::RefreshNack`]).
    pub refresh_nack: f64,
    /// Probability a request's remap lookup is transiently corrupted
    /// ([`FaultKind::RemapCorruption`]).
    pub remap_corrupt: f64,
    /// Ceiling at which per-row activation counters saturate; 0
    /// disables ([`FaultKind::DisturbSaturation`]).
    pub disturb_saturation: u32,
    /// How late a delayed ACT-interrupt is delivered, in cycles.
    pub interrupt_delay: u64,
    /// How many ACTs a stuck ACT_COUNT stays wedged for.
    pub stuck_window: u64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            dropped_ref: 0.0,
            ghost_ref: 0.0,
            trr_miss: 0.0,
            dropped_interrupt: 0.0,
            delayed_interrupt: 0.0,
            stuck_act_count: 0.0,
            refresh_nack: 0.0,
            remap_corrupt: 0.0,
            disturb_saturation: 0,
            interrupt_delay: 5_000,
            stuck_window: 64,
        }
    }
}

// Hand-written so every field is optional with a default — the vendored
// derive has no `#[serde(default)]`, and partial JSON plans are the
// whole point of `--faults PATH`.
impl serde::Deserialize for FaultPlan {
    fn deserialize_json(v: &serde::Value) -> Result<FaultPlan, serde::Error> {
        fn opt<T: serde::Deserialize>(
            obj: &[(String, serde::Value)],
            name: &str,
            default: T,
        ) -> Result<T, serde::Error> {
            match obj.iter().find(|(k, _)| k == name) {
                Some((_, v)) => T::deserialize_json(v),
                None => Ok(default),
            }
        }
        let obj = v
            .as_obj()
            .ok_or_else(|| serde::Error::expected("object", "FaultPlan"))?;
        let d = FaultPlan::default();
        Ok(FaultPlan {
            seed: opt(obj, "seed", d.seed)?,
            dropped_ref: opt(obj, "dropped_ref", d.dropped_ref)?,
            ghost_ref: opt(obj, "ghost_ref", d.ghost_ref)?,
            trr_miss: opt(obj, "trr_miss", d.trr_miss)?,
            dropped_interrupt: opt(obj, "dropped_interrupt", d.dropped_interrupt)?,
            delayed_interrupt: opt(obj, "delayed_interrupt", d.delayed_interrupt)?,
            stuck_act_count: opt(obj, "stuck_act_count", d.stuck_act_count)?,
            refresh_nack: opt(obj, "refresh_nack", d.refresh_nack)?,
            remap_corrupt: opt(obj, "remap_corrupt", d.remap_corrupt)?,
            disturb_saturation: opt(obj, "disturb_saturation", d.disturb_saturation)?,
            interrupt_delay: opt(obj, "interrupt_delay", d.interrupt_delay)?,
            stuck_window: opt(obj, "stuck_window", d.stuck_window)?,
        })
    }
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero, saturation off).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// The per-opportunity rate for `kind`. Rate-less kinds
    /// ([`FaultKind::DisturbSaturation`]) report 0 — they never `fire`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::DroppedRef => self.dropped_ref,
            FaultKind::GhostRef => self.ghost_ref,
            FaultKind::TrrSamplerMiss => self.trr_miss,
            FaultKind::DisturbSaturation => 0.0,
            FaultKind::DroppedActInterrupt => self.dropped_interrupt,
            FaultKind::DelayedActInterrupt => self.delayed_interrupt,
            FaultKind::StuckActCount => self.stuck_act_count,
            FaultKind::RefreshNack => self.refresh_nack,
            FaultKind::RemapCorruption => self.remap_corrupt,
        }
    }

    /// True when the plan can never inject anything: every rate is
    /// `<= 0` and counter saturation is off. An inert plan is
    /// behaviorally — and byte — identical to no plan (see the module
    /// docs' determinism contract).
    pub fn is_inert(&self) -> bool {
        FaultKind::ALL.iter().all(|&k| self.rate(k) <= 0.0) && self.disturb_saturation == 0
    }

    /// Returns this plan with every rate multiplied by `intensity`
    /// (clamped to `[0, 1]`); saturation stays untouched unless
    /// `intensity` is 0, which disables it too. `scaled(0.0)` is inert;
    /// `scaled(1.0)` is `self`. The F3 sweep's intensity axis.
    pub fn scaled(&self, intensity: f64) -> FaultPlan {
        let s = |r: f64| (r * intensity).clamp(0.0, 1.0);
        FaultPlan {
            seed: self.seed,
            dropped_ref: s(self.dropped_ref),
            ghost_ref: s(self.ghost_ref),
            trr_miss: s(self.trr_miss),
            dropped_interrupt: s(self.dropped_interrupt),
            delayed_interrupt: s(self.delayed_interrupt),
            stuck_act_count: s(self.stuck_act_count),
            refresh_nack: s(self.refresh_nack),
            remap_corrupt: s(self.remap_corrupt),
            disturb_saturation: if intensity > 0.0 {
                self.disturb_saturation
            } else {
                0
            },
            interrupt_delay: self.interrupt_delay,
            stuck_window: self.stuck_window,
        }
    }
}

/// The runtime half of a [`FaultPlan`]: per-kind RNG streams plus
/// injection counters.
///
/// Each component that injects faults holds its own clock, built with a
/// component-distinct `salt` so the DRAM module's and the memory
/// controller's decision streams never alias even under one plan.
#[derive(Debug, Clone)]
pub struct FaultClock {
    plan: FaultPlan,
    rngs: [DetRng; FaultKind::ALL.len()],
    injected: [u64; FaultKind::ALL.len()],
}

impl FaultClock {
    /// Builds the clock for `plan` in the component identified by
    /// `salt`.
    pub fn new(plan: FaultPlan, salt: u64) -> FaultClock {
        let mut root = DetRng::new(plan.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let rngs = FaultKind::ALL.map(|k| root.fork(k.index() as u64 + 1));
        FaultClock {
            plan,
            rngs,
            injected: [0; FaultKind::ALL.len()],
        }
    }

    /// The plan this clock executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draws the injection decision for one opportunity of `kind`,
    /// recording it when it fires. Zero-rate kinds return `false`
    /// without advancing the stream.
    pub fn fire(&mut self, kind: FaultKind) -> bool {
        let hit = self.rngs[kind.index()].chance(self.plan.rate(kind));
        if hit {
            self.injected[kind.index()] += 1;
        }
        hit
    }

    /// Records a deterministic (rate-less) injection of `kind`, e.g.
    /// each counter clamped by [`FaultKind::DisturbSaturation`].
    pub fn note(&mut self, kind: FaultKind) {
        self.injected[kind.index()] += 1;
    }

    /// How many times `kind` has been injected.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Total injections across every kind.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        assert!(FaultPlan::none().is_inert());
        assert!(FaultPlan::default().is_inert());
    }

    #[test]
    fn scaled_zero_is_inert_and_one_is_identity() {
        let plan = FaultPlan {
            seed: 9,
            dropped_ref: 0.5,
            trr_miss: 0.2,
            disturb_saturation: 8,
            ..FaultPlan::default()
        };
        assert!(plan.scaled(0.0).is_inert());
        assert_eq!(plan.scaled(1.0), plan);
        let half = plan.scaled(0.5);
        assert_eq!(half.dropped_ref, 0.25);
        assert_eq!(half.disturb_saturation, 8);
    }

    #[test]
    fn inert_clock_never_fires_and_never_draws() {
        let mut c = FaultClock::new(FaultPlan::none(), 0xABCD);
        for _ in 0..100 {
            for k in FaultKind::ALL {
                assert!(!c.fire(k));
            }
        }
        assert_eq!(c.total_injected(), 0);
        // The streams must be untouched: a fresh clock built from the
        // same plan + salt makes the same next decision.
        let mut fresh = FaultClock::new(FaultPlan::none(), 0xABCD);
        let mut plan = FaultPlan::none();
        plan.dropped_ref = 1.0;
        let mut c2 = FaultClock::new(plan, 0xABCD);
        assert!(c2.fire(FaultKind::DroppedRef));
        assert!(!fresh.fire(FaultKind::DroppedRef));
        assert!(!c.fire(FaultKind::DroppedRef));
    }

    #[test]
    fn same_plan_and_salt_reproduce_decisions() {
        let plan = FaultPlan {
            seed: 1234,
            dropped_ref: 0.3,
            trr_miss: 0.7,
            refresh_nack: 0.1,
            ..FaultPlan::default()
        };
        let mut a = FaultClock::new(plan, 0x11);
        let mut b = FaultClock::new(plan, 0x11);
        for i in 0..500 {
            let k = FaultKind::ALL[i % FaultKind::ALL.len()];
            assert_eq!(a.fire(k), b.fire(k));
        }
        assert_eq!(a.total_injected(), b.total_injected());
        // A different salt yields a different decision stream.
        let mut c = FaultClock::new(plan, 0x22);
        let mut diverged = false;
        let mut a2 = FaultClock::new(plan, 0x11);
        for _ in 0..500 {
            if a2.fire(FaultKind::TrrSamplerMiss) != c.fire(FaultKind::TrrSamplerMiss) {
                diverged = true;
            }
        }
        assert!(diverged, "salts must separate component streams");
    }

    #[test]
    fn kinds_are_distinct_and_named() {
        let names: std::collections::HashSet<_> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), FaultKind::ALL.len());
        let idxs: std::collections::HashSet<_> = FaultKind::ALL.iter().map(|k| k.index()).collect();
        assert_eq!(idxs.len(), FaultKind::ALL.len());
    }

    #[test]
    fn partial_json_plan_deserializes_with_defaults() {
        let v = serde::parse_json(r#"{"seed": 7, "dropped_ref": 0.05, "trr_miss": 0.25}"#)
            .expect("valid json");
        let plan = <FaultPlan as serde::Deserialize>::deserialize_json(&v).expect("plan parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.dropped_ref, 0.05);
        assert_eq!(plan.trr_miss, 0.25);
        assert_eq!(plan.ghost_ref, 0.0);
        assert_eq!(plan.interrupt_delay, FaultPlan::default().interrupt_delay);
        assert!(!plan.is_inert());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan {
            seed: 42,
            ghost_ref: 0.125,
            remap_corrupt: 0.5,
            disturb_saturation: 16,
            stuck_window: 32,
            ..FaultPlan::default()
        };
        let mut out = String::new();
        plan.serialize_json(&mut out);
        let v = serde::parse_json(&out).expect("serialized plan parses");
        let back = <FaultPlan as serde::Deserialize>::deserialize_json(&v).expect("round trip");
        assert_eq!(back, plan);
    }
}
