//! DRAM organization and coordinates.
//!
//! A [`Geometry`] describes the shape of the memory system: channels ×
//! ranks × bank groups × banks × subarrays × rows × columns. A
//! [`DramCoord`] locates one cache-line-sized column burst within that
//! shape. The memory controller's address map (in `hammertime-memctrl`)
//! is a bijection between [`CacheLineAddr`](crate::CacheLineAddr) and
//! [`DramCoord`]; this module only defines the shape and coordinate
//! arithmetic.
//!
//! Subarrays matter: the paper's isolation-centric primitive
//! (subarray-isolated interleaving, §4.1) relies on the fact that
//! subarrays within a bank are electromagnetically isolated from one
//! another, so rows in different subarrays can never be in an
//! aggressor/victim relationship.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a simulated memory system.
///
/// All fields are counts and must be non-zero; rows per subarray and
/// most counts should be powers of two so the address map can use bit
/// slicing, which [`Geometry::validate`] enforces.
///
/// # Examples
///
/// ```
/// use hammertime_common::Geometry;
///
/// let g = Geometry::small_test();
/// g.validate().unwrap();
/// assert_eq!(g.rows_per_bank(), g.subarrays_per_bank * g.rows_per_subarray);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    /// Independent DDR channels, each with its own command/data bus.
    pub channels: u32,
    /// Ranks per channel (chip selects sharing the channel bus).
    pub ranks: u32,
    /// Bank groups per rank (DDR4+; use 1 to model DDR3).
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Subarrays per bank (each with local sense amps, isolated from
    /// its neighbors).
    pub subarrays_per_bank: u32,
    /// Rows per subarray.
    pub rows_per_subarray: u32,
    /// Cache-line-sized column bursts per row. A row of `columns * 64`
    /// bytes; 128 columns models the common 8 KB row.
    pub columns: u32,
}

impl Geometry {
    /// A deliberately tiny geometry for unit tests: 1 channel, 1 rank,
    /// 1 bank group, 2 banks, 2 subarrays x 16 rows, 8 columns.
    pub fn small_test() -> Geometry {
        Geometry {
            channels: 1,
            ranks: 1,
            bank_groups: 1,
            banks_per_group: 2,
            subarrays_per_bank: 2,
            rows_per_subarray: 16,
            columns: 8,
        }
    }

    /// A medium geometry for integration tests and fast experiments:
    /// 1 channel, 1 rank, 2 bank groups x 2 banks, 4 subarrays x 128
    /// rows, 32 columns (64 MiB).
    pub fn medium() -> Geometry {
        Geometry {
            channels: 1,
            ranks: 1,
            bank_groups: 2,
            banks_per_group: 2,
            subarrays_per_bank: 4,
            rows_per_subarray: 128,
            columns: 32,
        }
    }

    /// A server-ish geometry used by the benchmark harness: 2 channels,
    /// 1 rank, 4 bank groups x 4 banks, 8 subarrays x 512 rows, 128
    /// columns (8 GiB).
    pub fn server() -> Geometry {
        Geometry {
            channels: 2,
            ranks: 1,
            bank_groups: 4,
            banks_per_group: 4,
            subarrays_per_bank: 8,
            rows_per_subarray: 512,
            columns: 128,
        }
    }

    /// Checks the geometry is usable: every count non-zero and every
    /// count a power of two (required by the bit-sliced address maps).
    ///
    /// # Examples
    ///
    /// ```
    /// use hammertime_common::Geometry;
    ///
    /// let mut g = Geometry::small_test();
    /// g.columns = 3;
    /// assert!(g.validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<()> {
        let fields = [
            ("channels", self.channels),
            ("ranks", self.ranks),
            ("bank_groups", self.bank_groups),
            ("banks_per_group", self.banks_per_group),
            ("subarrays_per_bank", self.subarrays_per_bank),
            ("rows_per_subarray", self.rows_per_subarray),
            ("columns", self.columns),
        ];
        for (name, v) in fields {
            if v == 0 {
                return Err(Error::Config(format!("geometry field {name} is zero")));
            }
            if !v.is_power_of_two() {
                return Err(Error::Config(format!(
                    "geometry field {name} = {v} is not a power of two"
                )));
            }
        }
        Ok(())
    }

    /// Banks per rank.
    #[inline]
    pub fn banks_per_rank(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// Total banks across the whole system.
    #[inline]
    pub fn total_banks(&self) -> u64 {
        self.channels as u64 * self.ranks as u64 * self.banks_per_rank() as u64
    }

    /// Rows per bank.
    #[inline]
    pub fn rows_per_bank(&self) -> u32 {
        self.subarrays_per_bank * self.rows_per_subarray
    }

    /// Total rows across the whole system.
    #[inline]
    pub fn total_rows(&self) -> u64 {
        self.total_banks() * self.rows_per_bank() as u64
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_rows() * self.row_bytes()
    }

    /// Bytes per row.
    #[inline]
    pub fn row_bytes(&self) -> u64 {
        self.columns as u64 * crate::addr::CACHE_LINE_BYTES
    }

    /// Total cache lines across the whole system.
    #[inline]
    pub fn total_lines(&self) -> u64 {
        self.capacity_bytes() / crate::addr::CACHE_LINE_BYTES
    }

    /// Total page frames across the whole system.
    #[inline]
    pub fn total_frames(&self) -> u64 {
        self.capacity_bytes() / crate::addr::PAGE_BYTES
    }

    /// Returns the subarray index containing `row` (an in-bank row
    /// index).
    #[inline]
    pub fn subarray_of_row(&self, row: u32) -> u32 {
        debug_assert!(row < self.rows_per_bank());
        row / self.rows_per_subarray
    }

    /// Returns `true` if in-bank rows `a` and `b` lie in the same
    /// subarray (and can therefore disturb each other).
    #[inline]
    pub fn same_subarray(&self, a: u32, b: u32) -> bool {
        self.subarray_of_row(a) == self.subarray_of_row(b)
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}ch x {}rk x {}bg x {}ba x {}sa x {}row x {}col ({} MiB)",
            self.channels,
            self.ranks,
            self.bank_groups,
            self.banks_per_group,
            self.subarrays_per_bank,
            self.rows_per_subarray,
            self.columns,
            self.capacity_bytes() / (1024 * 1024)
        )
    }
}

/// The location of one cache-line-sized burst in DRAM.
///
/// `row` is the in-bank row index (subarray-relative rows are derived
/// via [`Geometry::subarray_of_row`]); `col` is the cache-line-sized
/// column burst index within the row.
///
/// # Examples
///
/// ```
/// use hammertime_common::{DramCoord, Geometry};
///
/// let g = Geometry::small_test();
/// let c = DramCoord { channel: 0, rank: 0, bank_group: 0, bank: 1, row: 17, col: 3 };
/// assert!(c.validate(&g).is_ok());
/// assert_eq!(c.subarray(&g), 1); // rows 16..31 are subarray 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramCoord {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank group index within the rank.
    pub bank_group: u32,
    /// Bank index within the bank group.
    pub bank: u32,
    /// Row index within the bank (spanning all subarrays).
    pub row: u32,
    /// Cache-line-sized column burst index within the row.
    pub col: u32,
}

impl DramCoord {
    /// Checks every index is in range for `g`.
    pub fn validate(&self, g: &Geometry) -> Result<()> {
        if self.channel >= g.channels
            || self.rank >= g.ranks
            || self.bank_group >= g.bank_groups
            || self.bank >= g.banks_per_group
            || self.row >= g.rows_per_bank()
            || self.col >= g.columns
        {
            return Err(Error::Config(format!(
                "coordinate {self:?} out of range for geometry {g}"
            )));
        }
        Ok(())
    }

    /// Returns the subarray index containing this coordinate's row.
    #[inline]
    pub fn subarray(&self, g: &Geometry) -> u32 {
        g.subarray_of_row(self.row)
    }

    /// Returns a flat bank identifier unique across the system, useful
    /// as an index into per-bank state tables.
    #[inline]
    pub fn flat_bank(&self, g: &Geometry) -> usize {
        let per_rank = g.banks_per_rank();
        let bank_in_rank = self.bank_group * g.banks_per_group + self.bank;
        ((self.channel * g.ranks + self.rank) * per_rank + bank_in_rank) as usize
    }

    /// Returns the coordinate of the same column in a different row of
    /// the same bank.
    #[inline]
    pub fn with_row(&self, row: u32) -> DramCoord {
        DramCoord { row, ..*self }
    }
}

impl fmt::Display for DramCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/rk{}/bg{}/ba{}/r{}/c{}",
            self.channel, self.rank, self.bank_group, self.bank, self.row, self.col
        )
    }
}

/// Identifies a bank (without row/column), e.g. for per-bank queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BankId {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank group index within the rank.
    pub bank_group: u32,
    /// Bank index within the bank group.
    pub bank: u32,
}

impl BankId {
    /// Extracts the bank identifier from a full coordinate.
    #[inline]
    pub fn of(c: &DramCoord) -> BankId {
        BankId {
            channel: c.channel,
            rank: c.rank,
            bank_group: c.bank_group,
            bank: c.bank,
        }
    }

    /// Returns a flat bank index unique across the system.
    #[inline]
    pub fn flat(&self, g: &Geometry) -> usize {
        let per_rank = g.banks_per_rank();
        let bank_in_rank = self.bank_group * g.banks_per_group + self.bank;
        ((self.channel * g.ranks + self.rank) * per_rank + bank_in_rank) as usize
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/rk{}/bg{}/ba{}",
            self.channel, self.rank, self.bank_group, self.bank
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        Geometry::small_test().validate().unwrap();
        Geometry::medium().validate().unwrap();
        Geometry::server().validate().unwrap();
    }

    #[test]
    fn derived_counts() {
        let g = Geometry::small_test();
        assert_eq!(g.banks_per_rank(), 2);
        assert_eq!(g.total_banks(), 2);
        assert_eq!(g.rows_per_bank(), 32);
        assert_eq!(g.total_rows(), 64);
        assert_eq!(g.row_bytes(), 8 * 64);
        assert_eq!(g.capacity_bytes(), 64 * 8 * 64);
        assert_eq!(g.total_lines(), 64 * 8);
        assert_eq!(g.total_frames(), g.capacity_bytes() / 4096);
    }

    #[test]
    fn subarray_boundaries() {
        let g = Geometry::small_test();
        assert_eq!(g.subarray_of_row(0), 0);
        assert_eq!(g.subarray_of_row(15), 0);
        assert_eq!(g.subarray_of_row(16), 1);
        assert!(g.same_subarray(0, 15));
        assert!(!g.same_subarray(15, 16));
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut g = Geometry::small_test();
        g.rows_per_subarray = 12;
        assert!(g.validate().is_err());
        g.rows_per_subarray = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn coord_validation() {
        let g = Geometry::small_test();
        let ok = DramCoord {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 1,
            row: 31,
            col: 7,
        };
        assert!(ok.validate(&g).is_ok());
        assert!(ok.with_row(32).validate(&g).is_err());
        let bad = DramCoord { col: 8, ..ok };
        assert!(bad.validate(&g).is_err());
    }

    #[test]
    fn flat_bank_is_unique_and_dense() {
        let g = Geometry::server();
        let mut seen = std::collections::HashSet::new();
        for ch in 0..g.channels {
            for rk in 0..g.ranks {
                for bg in 0..g.bank_groups {
                    for ba in 0..g.banks_per_group {
                        let id = BankId {
                            channel: ch,
                            rank: rk,
                            bank_group: bg,
                            bank: ba,
                        };
                        let flat = id.flat(&g);
                        assert!(flat < g.total_banks() as usize);
                        assert!(seen.insert(flat), "duplicate flat bank {flat}");
                    }
                }
            }
        }
        assert_eq!(seen.len(), g.total_banks() as usize);
    }

    #[test]
    fn flat_bank_matches_coord_flat_bank() {
        let g = Geometry::medium();
        let c = DramCoord {
            channel: 0,
            rank: 0,
            bank_group: 1,
            bank: 1,
            row: 3,
            col: 0,
        };
        assert_eq!(c.flat_bank(&g), BankId::of(&c).flat(&g));
    }
}
