//! Simulation time.
//!
//! All timing in the workspace is expressed in DRAM *command-clock
//! cycles* (one tick of the DDR command bus, i.e. `tCK`). Using integer
//! cycles rather than wall-clock units keeps timing-constraint
//! arithmetic exact and makes simulations reproducible.
//!
//! A [`Cycle`] is a point in time; a plain `u64` is used for durations
//! where the meaning is unambiguous, and [`Cycle::delta`] /
//! [`Cycle::offset`] convert between the two.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulation time, measured in DRAM command-clock cycles
/// since the start of the simulation.
///
/// # Examples
///
/// ```
/// use hammertime_common::Cycle;
///
/// let t0 = Cycle::ZERO;
/// let t1 = t0 + 14; // 14 cycles later (e.g. tRCD for DDR4-2400)
/// assert_eq!(t1.delta(t0), 14);
/// assert!(t1 > t0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The start of simulation time.
    pub const ZERO: Cycle = Cycle(0);

    /// A time later than any the simulator will ever reach; used as the
    /// "no constraint" value in earliest-issue bookkeeping.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the duration in cycles from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    #[inline]
    pub fn delta(self, earlier: Cycle) -> u64 {
        debug_assert!(earlier.0 <= self.0, "delta from a later time");
        self.0 - earlier.0
    }

    /// Returns this time advanced by `cycles`, saturating at
    /// [`Cycle::MAX`].
    #[inline]
    pub const fn offset(self, cycles: u64) -> Cycle {
        Cycle(self.0.saturating_add(cycles))
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        self.offset(rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        *self = self.offset(rhs);
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.delta(rhs)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

/// Converts a duration in nanoseconds to command-clock cycles for a bus
/// running at `mhz` megahertz (command rate), rounding up as JEDEC
/// timing conversion requires.
///
/// # Examples
///
/// ```
/// use hammertime_common::time::ns_to_cycles;
///
/// // DDR4-2400: command clock 1200 MHz, tRCD = 13.32 ns -> 16 cycles.
/// assert_eq!(ns_to_cycles(13.32, 1200), 16);
/// ```
pub fn ns_to_cycles(ns: f64, mhz: u64) -> u64 {
    debug_assert!(ns >= 0.0 && ns.is_finite(), "nonsensical duration");
    (ns * mhz as f64 / 1000.0).ceil() as u64
}

/// Converts a cycle count back to nanoseconds for reporting.
///
/// # Examples
///
/// ```
/// use hammertime_common::time::cycles_to_ns;
///
/// assert!((cycles_to_ns(1200, 1200) - 1000.0).abs() < 1e-9);
/// ```
pub fn cycles_to_ns(cycles: u64, mhz: u64) -> f64 {
    cycles as f64 * 1000.0 / mhz as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_ordering_and_arithmetic() {
        let a = Cycle(10);
        let b = a + 5;
        assert_eq!(b, Cycle(15));
        assert_eq!(b - a, 5);
        assert_eq!(b.delta(a), 5);
        assert!(b > a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn cycle_saturates_at_max() {
        assert_eq!(Cycle::MAX + 1, Cycle::MAX);
        assert_eq!(Cycle::MAX.offset(u64::MAX), Cycle::MAX);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = Cycle::ZERO;
        t += 7;
        t += 3;
        assert_eq!(t.raw(), 10);
    }

    #[test]
    fn ns_conversion_rounds_up() {
        // 0.01 ns at 1200 MHz is a fraction of a cycle; must round to 1.
        assert_eq!(ns_to_cycles(0.01, 1200), 1);
        assert_eq!(ns_to_cycles(0.0, 1200), 0);
        // Round trip within one cycle of slack.
        let cycles = ns_to_cycles(64_000_000.0, 1200); // 64 ms refresh window
        let ns = cycles_to_ns(cycles, 1200);
        assert!((ns - 64_000_000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "delta from a later time")]
    fn delta_panics_on_reversed_order_in_debug() {
        let _ = Cycle(1).delta(Cycle(2));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Cycle(42).to_string(), "42cyc");
    }
}
