//! Address newtypes.
//!
//! The simulator distinguishes three address spaces:
//!
//! - [`VirtAddr`]: a guest/process virtual address, translated by the
//!   model OS page tables.
//! - [`PhysAddr`]: a CPU physical address, the input to the memory
//!   controller's address mapping.
//! - [`CacheLineAddr`]: a physical address with the line offset
//!   stripped; the granularity at which the cache and the memory
//!   controller operate.
//!
//! Keeping them as distinct types prevents the classic simulator bug of
//! feeding a virtual address into the DRAM address map.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes per cache line (and per DRAM column burst as seen by the MC).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Bytes per OS page frame.
pub const PAGE_BYTES: u64 = 4096;

/// Cache lines per OS page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / CACHE_LINE_BYTES;

/// A CPU physical address.
///
/// # Examples
///
/// ```
/// use hammertime_common::PhysAddr;
///
/// let pa = PhysAddr(0x12345);
/// assert_eq!(pa.line().line_index(), 0x12345 / 64);
/// assert_eq!(pa.page_frame(), 0x12);
/// assert_eq!(pa.page_offset(), 0x345);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Returns the cache line containing this address.
    #[inline]
    pub const fn line(self) -> CacheLineAddr {
        CacheLineAddr(self.0 / CACHE_LINE_BYTES)
    }

    /// Returns the page frame number containing this address.
    #[inline]
    pub const fn page_frame(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Returns the byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }

    /// Constructs the physical address of the first byte of a page
    /// frame.
    #[inline]
    pub const fn from_frame(frame: u64) -> PhysAddr {
        PhysAddr(frame * PAGE_BYTES)
    }

    /// Returns this address advanced by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

/// A virtual address within some trust domain's address space.
///
/// # Examples
///
/// ```
/// use hammertime_common::VirtAddr;
///
/// let va = VirtAddr(0x7000_1234);
/// assert_eq!(va.page_number(), 0x7000_1234 / 4096);
/// assert_eq!(va.page_offset(), 0x234);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Returns the virtual page number containing this address.
    #[inline]
    pub const fn page_number(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Returns the byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }

    /// Constructs the virtual address of the first byte of a virtual
    /// page.
    #[inline]
    pub const fn from_page(page: u64) -> VirtAddr {
        VirtAddr(page * PAGE_BYTES)
    }

    /// Returns this address advanced by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

/// A physical cache-line address: a [`PhysAddr`] divided by
/// [`CACHE_LINE_BYTES`].
///
/// This is the unit the LLC and the memory controller operate on, and
/// the address granularity the paper's precise ACT interrupt reports.
///
/// # Examples
///
/// ```
/// use hammertime_common::{CacheLineAddr, PhysAddr};
///
/// let line = PhysAddr(0x1040).line();
/// assert_eq!(line, CacheLineAddr(0x41));
/// assert_eq!(line.base(), PhysAddr(0x1040));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CacheLineAddr(pub u64);

impl CacheLineAddr {
    /// Returns the raw line index (physical address / 64).
    #[inline]
    pub const fn line_index(self) -> u64 {
        self.0
    }

    /// Returns the physical address of the first byte of the line.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 * CACHE_LINE_BYTES)
    }

    /// Returns the page frame number containing this line.
    #[inline]
    pub const fn page_frame(self) -> u64 {
        self.base().page_frame()
    }

    /// Returns the index of this line within its page (0..64).
    #[inline]
    pub const fn index_in_page(self) -> u64 {
        self.0 % LINES_PER_PAGE
    }
}

impl fmt::Display for CacheLineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cl:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_decomposition() {
        let pa = PhysAddr(2 * PAGE_BYTES + 3 * CACHE_LINE_BYTES + 7);
        assert_eq!(pa.page_frame(), 2);
        assert_eq!(pa.page_offset(), 3 * CACHE_LINE_BYTES + 7);
        assert_eq!(pa.line().index_in_page(), 3);
        assert_eq!(PhysAddr::from_frame(2).page_frame(), 2);
        assert_eq!(PhysAddr::from_frame(2).page_offset(), 0);
    }

    #[test]
    fn virt_addr_decomposition() {
        let va = VirtAddr::from_page(9).offset(100);
        assert_eq!(va.page_number(), 9);
        assert_eq!(va.page_offset(), 100);
    }

    #[test]
    fn line_round_trips_to_base() {
        for raw in [0u64, 63, 64, 65, 4095, 4096, 123_456_789] {
            let pa = PhysAddr(raw);
            let line = pa.line();
            assert_eq!(line.base().0, (raw / 64) * 64);
            assert_eq!(line.base().line(), line);
        }
    }

    #[test]
    fn lines_per_page_consistent() {
        assert_eq!(LINES_PER_PAGE, 64);
        let frame = 5u64;
        let first = PhysAddr::from_frame(frame).line();
        let last = PhysAddr::from_frame(frame).offset(PAGE_BYTES - 1).line();
        assert_eq!(last.line_index() - first.line_index() + 1, LINES_PER_PAGE);
        assert_eq!(first.page_frame(), frame);
        assert_eq!(last.page_frame(), frame);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PhysAddr(0x10).to_string(), "pa:0x10");
        assert_eq!(VirtAddr(0x10).to_string(), "va:0x10");
        assert_eq!(CacheLineAddr(0x10).to_string(), "cl:0x10");
    }
}
