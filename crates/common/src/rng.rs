//! Deterministic randomness.
//!
//! Every stochastic choice in the simulator — disturbance bit
//! sampling, PARA coin flips, randomized ACT-counter resets, workload
//! address streams — draws from a [`DetRng`] seeded from the experiment
//! configuration. The same seed therefore yields an identical
//! simulation, which the `determinism` integration test asserts.
//!
//! [`DetRng`] wraps `rand`'s small fast PRNG behind a minimal interface
//! so the dependency surface stays contained, and offers [`DetRng::fork`]
//! for handing independent streams to subcomponents without coupling
//! their draw orders.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic, seedable random number generator.
///
/// # Examples
///
/// ```
/// use hammertime_common::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> DetRng {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent generator for a subcomponent.
    ///
    /// The fork is keyed by `salt` so sibling components get unrelated
    /// streams even when forked in sequence.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let seed = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(seed)
    }

    /// Returns the next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.gen_range(0..bound)
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.inner.gen_range(lo..hi)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen_bool(p)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Captures the generator's raw state mid-stream, so a checkpoint
    /// codec can serialize it; [`DetRng::from_state`] restores a
    /// generator that continues the identical draw sequence.
    pub fn state(&self) -> [u64; 4] {
        self.inner.state()
    }

    /// Rebuilds a generator from a state captured by [`DetRng::state`].
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state (a xoshiro fixed point that
    /// [`DetRng::state`] can never produce).
    pub fn from_state(state: [u64; 4]) -> DetRng {
        DetRng {
            inner: SmallRng::from_state(state),
        }
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        // Walk down from the end, swapping each element with a uniform
        // earlier position — the classic unbiased shuffle.
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniform element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "pick from empty slice");
        &slice[self.below(slice.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should differ");
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let mut root1 = DetRng::new(9);
        let mut root2 = DetRng::new(9);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut g1 = root1.fork(2);
        // A different salt on the same parent state gives a different stream.
        let mut g2 = root2.fork(3);
        assert_ne!(g1.next_u64(), g2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
        for _ in 0..100 {
            let v = rng.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = DetRng::new(5);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(6);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = DetRng::new(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = DetRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = DetRng::new(8);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
