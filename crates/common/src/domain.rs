//! Trust domains and request provenance.
//!
//! The paper's threat model is multi-tenant: the unit of isolation is a
//! *trust domain* (a VM or process), identified here by a [`DomainId`]
//! that plays the role of the ASID tag the paper proposes the host OS
//! and memory controller share (§4.1).
//!
//! [`RequestSource`] records *who issued* a memory request — a CPU core
//! or a DMA-capable device. The distinction is load-bearing: core
//! performance counters (and therefore ANVIL-style defenses) only see
//! core traffic, which is exactly the blind spot the paper calls out
//! (§1, §4.2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A trust domain identifier (ASID): one VM, process, or tenant.
///
/// # Examples
///
/// ```
/// use hammertime_common::DomainId;
///
/// let host = DomainId::HOST;
/// let tenant = DomainId(3);
/// assert_ne!(host, tenant);
/// assert!(host.is_host());
/// assert!(!tenant.is_host());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The host OS / hypervisor domain. Domain 0 is always the host.
    pub const HOST: DomainId = DomainId(0);

    /// Returns `true` for the host domain.
    #[inline]
    pub const fn is_host(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_host() {
            write!(f, "host")
        } else {
            write!(f, "dom{}", self.0)
        }
    }
}

/// Per-domain mitigation-trigger counts: how much defense work a
/// tenant's request stream has caused.
///
/// This is the accounting substrate BreakHammer-style throttling needs
/// (score suspects by the mitigation triggers they cause, not by raw
/// bandwidth). The memory controller maintains one of these per domain;
/// a tenant's counts travel with it across checkpoint/restore and fleet
/// migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TriggerCounts {
    /// ACTs this domain fed into the in-DRAM TRR sampler.
    pub trr_samples: u64,
    /// MC mitigation throttle delays (BlockHammer/BreakHammer) imposed
    /// on this domain's requests.
    pub throttle_delays: u64,
    /// MC mitigation neighbor-refreshes (PARA/Graphene/TWiCe/Oracle
    /// reactions) provoked by this domain's ACTs.
    pub mitigations: u64,
    /// Forced refreshes (starvation-barrier REFs) attributed to this
    /// domain's traffic.
    pub forced_refs: u64,
    /// Precise ACT-counter interrupts charged to this domain (dominant
    /// contributor of the overflowed window).
    pub act_interrupts: u64,
}

impl TriggerCounts {
    /// Total triggers across all kinds (the BreakHammer suspect score
    /// input).
    pub fn total(&self) -> u64 {
        self.trr_samples
            + self.throttle_delays
            + self.mitigations
            + self.forced_refs
            + self.act_interrupts
    }

    /// Adds another set of counts into this one (migration import,
    /// fleet folds).
    pub fn merge(&mut self, other: &TriggerCounts) {
        self.trr_samples += other.trr_samples;
        self.throttle_delays += other.throttle_delays;
        self.mitigations += other.mitigations;
        self.forced_refs += other.forced_refs;
        self.act_interrupts += other.act_interrupts;
    }
}

/// Who issued a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestSource {
    /// A CPU core (index). Traffic is visible to core PMU sampling and
    /// travels through the cache hierarchy.
    Core(u32),
    /// A DMA-capable device (index). Traffic bypasses the cache
    /// hierarchy and is invisible to core performance counters.
    Dma(u32),
}

impl RequestSource {
    /// Returns `true` if this request came from a DMA device.
    ///
    /// # Examples
    ///
    /// ```
    /// use hammertime_common::RequestSource;
    ///
    /// assert!(RequestSource::Dma(0).is_dma());
    /// assert!(!RequestSource::Core(0).is_dma());
    /// ```
    #[inline]
    pub const fn is_dma(self) -> bool {
        matches!(self, RequestSource::Dma(_))
    }

    /// Returns `true` if this request came from a CPU core.
    #[inline]
    pub const fn is_core(self) -> bool {
        matches!(self, RequestSource::Core(_))
    }
}

impl fmt::Display for RequestSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestSource::Core(i) => write!(f, "core{i}"),
            RequestSource::Dma(i) => write!(f, "dma{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_is_domain_zero() {
        assert_eq!(DomainId::HOST, DomainId(0));
        assert!(DomainId::HOST.is_host());
        assert!(!DomainId(1).is_host());
    }

    #[test]
    fn source_predicates() {
        assert!(RequestSource::Dma(2).is_dma());
        assert!(!RequestSource::Dma(2).is_core());
        assert!(RequestSource::Core(1).is_core());
    }

    #[test]
    fn display_formats() {
        assert_eq!(DomainId::HOST.to_string(), "host");
        assert_eq!(DomainId(7).to_string(), "dom7");
        assert_eq!(RequestSource::Core(1).to_string(), "core1");
        assert_eq!(RequestSource::Dma(0).to_string(), "dma0");
    }
}
