//! Per-command energy constants.
//!
//! The evaluation reports an *energy proxy*: a weighted sum of DDR
//! command counts. The weights below follow the relative magnitudes of
//! published DDR4 IDD-based current profiles (activate/precharge pairs
//! dominate; refresh is expensive per command but infrequent). Absolute
//! joules are not the point — defense-induced *extra* ACT/REF energy
//! relative to baseline is, and relative weights capture that.

use serde::{Deserialize, Serialize};

/// Energy cost weights per DDR command, in picojoule-scale arbitrary
/// units.
///
/// # Examples
///
/// ```
/// use hammertime_common::energy::EnergyModel;
///
/// let m = EnergyModel::ddr4();
/// let total = m.act * 2.0 + m.rd * 10.0;
/// assert!(total > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per ACT/PRE pair (row open + close).
    pub act: f64,
    /// Energy per RD burst.
    pub rd: f64,
    /// Energy per WR burst.
    pub wr: f64,
    /// Energy per all-bank REF command.
    pub refresh: f64,
    /// Energy per targeted neighbor refresh (REF_NEIGHBORS per row).
    pub ref_neighbors_per_row: f64,
    /// Static background energy per kilocycle (standby, clocking).
    pub background_per_kcycle: f64,
}

impl EnergyModel {
    /// DDR4-flavored relative weights.
    pub fn ddr4() -> EnergyModel {
        EnergyModel {
            act: 15.0,
            rd: 5.0,
            wr: 5.5,
            refresh: 200.0,
            ref_neighbors_per_row: 18.0,
            background_per_kcycle: 2.0,
        }
    }

    /// Computes the energy proxy from command counts and elapsed time.
    pub fn total(
        &self,
        acts: u64,
        rds: u64,
        wrs: u64,
        refs: u64,
        neighbor_rows: u64,
        cycles: u64,
    ) -> f64 {
        self.act * acts as f64
            + self.rd * rds as f64
            + self.wr * wrs as f64
            + self.refresh * refs as f64
            + self.ref_neighbors_per_row * neighbor_rows as f64
            + self.background_per_kcycle * (cycles as f64 / 1000.0)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::ddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_monotone_in_each_component() {
        let m = EnergyModel::ddr4();
        let base = m.total(10, 10, 10, 1, 0, 1000);
        assert!(m.total(11, 10, 10, 1, 0, 1000) > base);
        assert!(m.total(10, 11, 10, 1, 0, 1000) > base);
        assert!(m.total(10, 10, 11, 1, 0, 1000) > base);
        assert!(m.total(10, 10, 10, 2, 0, 1000) > base);
        assert!(m.total(10, 10, 10, 1, 1, 1000) > base);
        assert!(m.total(10, 10, 10, 1, 0, 2000) > base);
    }

    #[test]
    fn zero_activity_costs_only_background() {
        let m = EnergyModel::ddr4();
        assert_eq!(m.total(0, 0, 0, 0, 0, 0), 0.0);
        assert!(m.total(0, 0, 0, 0, 0, 1000) > 0.0);
    }
}
