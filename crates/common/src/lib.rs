//! Shared foundation types for the `hammertime` workspace.
//!
//! This crate holds the vocabulary every other crate speaks:
//!
//! - [`time`]: simulation time as DRAM command-clock cycles.
//! - [`addr`]: physical/virtual/cache-line address newtypes.
//! - [`geometry`]: DRAM organization (channels, ranks, banks, subarrays,
//!   rows, columns) and coordinate decomposition.
//! - [`domain`]: trust domains (ASIDs) and request sources (core vs. DMA).
//! - [`rng`]: deterministic, seedable RNG so every simulation is
//!   reproducible bit-for-bit.
//! - [`fault`]: seeded, serializable fault-injection plans and the
//!   per-component clocks that execute them.
//! - [`energy`]: per-command energy constants for the energy proxy.
//! - [`error`]: the shared error type.
//! - [`traceformat`]: the version header shared by every serialized
//!   trace artifact (input-side op traces, output-side command traces).
//! - [`journal`]: the append-only checksummed record log durable fleet
//!   runs commit epochs to.
//!
//! Nothing here depends on the rest of the workspace; the dependency DAG
//! is `common <- dram <- memctrl <- cache/os <- core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod domain;
pub mod energy;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod journal;
pub mod rng;
pub mod time;
pub mod traceformat;

pub use addr::{CacheLineAddr, PhysAddr, VirtAddr, CACHE_LINE_BYTES, PAGE_BYTES};
pub use domain::{DomainId, RequestSource, TriggerCounts};
pub use error::{Error, Result};
pub use fault::{FaultClock, FaultKind, FaultPlan};
pub use geometry::{DramCoord, Geometry};
pub use journal::{JournalWriter, Record as JournalRecord, JOURNAL_MAGIC, JOURNAL_VERSION};
pub use rng::DetRng;
pub use time::Cycle;
pub use traceformat::{TraceHeader, TraceKind, TRACE_MAGIC, TRACE_VERSION};
