//! Property tests for the memory controller.

use hammertime_common::{CacheLineAddr, Cycle, DetRng, DomainId, Geometry, RequestSource};
use hammertime_dram::DramConfig;
use hammertime_memctrl::addrmap::{AddressMap, MappingScheme};
use hammertime_memctrl::request::{MemRequest, RequestKind};
use hammertime_memctrl::{ActCounterConfig, MemCtrl, MemCtrlConfig, Precision};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    (
        0u32..2,
        0u32..2,
        0u32..2,
        0u32..3,
        1u32..3,
        4u32..7,
        4u32..7,
    )
        .prop_map(|(ch, rk, bg, ba, sa, rows, cols)| Geometry {
            channels: 1 << ch,
            ranks: 1 << rk,
            bank_groups: 1 << bg,
            banks_per_group: 1 << ba,
            subarrays_per_bank: 1 << sa,
            rows_per_subarray: 1 << rows,
            columns: 1 << cols,
        })
}

fn schemes() -> impl Strategy<Value = MappingScheme> {
    prop_oneof![
        Just(MappingScheme::CacheLineInterleave),
        Just(MappingScheme::XorPermute),
        Just(MappingScheme::BankPartition),
        Just(MappingScheme::SubarrayIsolated),
    ]
}

proptest! {
    /// Every address map is a bijection: line → coord → line for
    /// arbitrary geometries and schemes.
    #[test]
    fn addrmap_round_trips(g in arb_geometry(), scheme in schemes(), seed in any::<u64>()) {
        let Ok(map) = AddressMap::new(scheme, g) else {
            return Ok(()); // geometry too small for this scheme: fine
        };
        let mut rng = DetRng::new(seed);
        for _ in 0..64 {
            let line = CacheLineAddr(rng.below(g.total_lines()));
            let coord = map.to_coord(line).unwrap();
            prop_assert!(coord.validate(&g).is_ok());
            prop_assert_eq!(map.to_line(&coord).unwrap(), line);
        }
    }

    /// Subarray isolation invariant: for arbitrary geometries, no page
    /// ever straddles two subarray groups.
    #[test]
    fn pages_never_straddle_groups(g in arb_geometry(), frame_seed in any::<u64>()) {
        let Ok(map) = AddressMap::new(MappingScheme::SubarrayIsolated, g) else {
            return Ok(());
        };
        let mut rng = DetRng::new(frame_seed);
        for _ in 0..16 {
            let frame = rng.below(g.total_frames());
            let group = map.group_of_frame(frame);
            for l in 0..64u64 {
                let coord = map.to_coord(CacheLineAddr(frame * 64 + l)).unwrap();
                prop_assert_eq!(coord.subarray(&g), group);
            }
        }
    }

    /// Group ranges partition the frame space exactly.
    #[test]
    fn groups_partition_frames(g in arb_geometry()) {
        let Ok(map) = AddressMap::new(MappingScheme::SubarrayIsolated, g) else {
            return Ok(());
        };
        let mut total = 0u64;
        for group in 0..map.subarray_groups() {
            let r = map.frames_of_group(group).unwrap();
            total += r.end - r.start;
        }
        prop_assert_eq!(total, g.total_frames());
    }

    /// ACT counters: overflow count is within one of
    /// `acts / (threshold - window)` and `acts / threshold` bounds.
    #[test]
    fn act_counter_overflow_bounds(
        threshold in 2u64..200,
        window_frac in 0u64..4,
        acts in 1u64..5_000,
        seed in any::<u64>(),
    ) {
        use hammertime_memctrl::act_counter::ActCounterBlock;
        let window = threshold / 4 * window_frac / 3; // 0..threshold/4ish
        let config = ActCounterConfig {
            threshold,
            randomize_reset_window: window,
            precision: Precision::AddressReporting,
        };
        let mut b = ActCounterBlock::new(config, 1, DetRng::new(seed));
        for i in 0..acts {
            b.on_act(0, CacheLineAddr(i), DomainId(1), i, Cycle(i));
        }
        let min_period = threshold - window;
        prop_assert!(b.overflows <= acts / min_period.max(1) + 1);
        prop_assert!(b.overflows >= acts / threshold);
    }

    /// A random mix of reads/writes across the whole address space
    /// always completes under the baseline controller: no request is
    /// lost or duplicated.
    #[test]
    fn all_requests_complete_exactly_once(
        ops in prop::collection::vec((any::<u64>(), any::<bool>()), 1..60),
    ) {
        let mut dram_cfg = DramConfig::test_config(1_000_000);
        dram_cfg.geometry = Geometry::small_test();
        let total_lines = dram_cfg.geometry.total_lines();
        let mut mc = MemCtrl::new(MemCtrlConfig::baseline(), dram_cfg, 3).unwrap();
        let n = ops.len();
        for (i, (line, is_write)) in ops.into_iter().enumerate() {
            mc.submit(MemRequest {
                id: i as u64,
                line: CacheLineAddr(line % total_lines),
                kind: if is_write { RequestKind::Write } else { RequestKind::Read },
                source: RequestSource::Core(0),
                domain: DomainId(1),
                arrival: mc.now(),
            })
            .unwrap();
        }
        mc.drain();
        let completions = mc.drain_completions();
        prop_assert_eq!(completions.len(), n);
        let mut ids: Vec<u64> = completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n as u64).collect::<Vec<_>>());
        // Latencies are sane: every completion at/after its arrival.
        for c in &completions {
            prop_assert!(c.done >= c.arrival);
        }
    }

    /// Functional data path: writes then reads round-trip through
    /// translation for every scheme.
    #[test]
    fn data_round_trips_through_any_scheme(scheme in schemes(), seed in any::<u64>()) {
        let mut dram_cfg = DramConfig::test_config(1_000_000);
        dram_cfg.geometry = Geometry::medium();
        let mut cfg = MemCtrlConfig::baseline();
        cfg.mapping = scheme;
        let mut mc = MemCtrl::new(cfg, dram_cfg, 3).unwrap();
        let total = mc.map().geometry().total_lines();
        let mut rng = DetRng::new(seed);
        let mut expected = std::collections::HashMap::new();
        for i in 0..32u8 {
            let line = CacheLineAddr(rng.below(total));
            mc.write_data(line, &[i; 64]).unwrap();
            expected.insert(line, i);
        }
        for (line, fill) in expected {
            let (data, poisoned) = mc.read_data(line).unwrap();
            prop_assert!(!poisoned);
            prop_assert_eq!(data, vec![fill; 64]);
        }
    }
}
