//! Differential tests: the fast-path scheduler must be observationally
//! identical to the reference linear scan.
//!
//! `MemCtrl::step` memoizes the scheduling scan over per-bank ready
//! queues; `MemCtrl::step_reference` keeps the original O(queue ×
//! device-probe) loop. These tests drive both through identical
//! request scripts and demand byte-for-byte agreement on every
//! externally observable artifact: the completion sequence, the flip
//! log (which pins down RNG draw order), controller and device stats
//! (including `sched_steps`, so the drivers take the *same number* of
//! scheduling decisions), and the final clock.

use hammertime_common::{CacheLineAddr, Cycle, DomainId, RequestSource};
use hammertime_dram::disturb::FlipEvent;
use hammertime_dram::{DramConfig, DramStats, TrrConfig};
use hammertime_memctrl::request::{Completion, MemRequest, RequestKind};
use hammertime_memctrl::{McMitigationConfig, McStats, MemCtrl, MemCtrlConfig, PagePolicy};
use proptest::prelude::*;

/// One scripted interaction with the controller: submit something,
/// then (maybe) advance time. Derived deterministically from the
/// proptest-generated `(sel, line, gap)` tuples so the fast and
/// reference runs replay the exact same script.
type Op = (u8, u64, u64);

/// Everything a caller can observe about a finished run.
#[derive(Debug, PartialEq)]
struct Observed {
    now: Cycle,
    completions: Vec<Completion>,
    flips: Vec<FlipEvent>,
    stats: McStats,
    dram_stats: DramStats,
}

fn run_script(mut mc: MemCtrl, ops: &[Op], fast: bool) -> Observed {
    let total_lines = mc.map().geometry().total_lines();
    for (i, &(sel, line, gap)) in ops.iter().enumerate() {
        // Concentrate half the traffic on a handful of lines so row
        // conflicts, hammering, and mitigations actually trigger.
        let space = if sel % 2 == 0 {
            total_lines.min(64)
        } else {
            total_lines
        };
        let line = CacheLineAddr(line % space);
        let id = i as u64;
        let arrival = mc.now();
        let kind = match sel % 10 {
            0..=4 => Some(RequestKind::Read),
            5..=7 => Some(RequestKind::Write),
            _ => None,
        };
        let result = match kind {
            Some(kind) => mc.submit(MemRequest {
                id,
                line,
                kind,
                source: RequestSource::Core(0),
                domain: DomainId(1),
                arrival,
            }),
            None if sel % 10 == 8 => mc.refresh_row(id, line, sel % 3 == 0),
            None => mc.ref_neighbors(id, line, 1 + u32::from(sel) % 2),
        };
        // Rejections (queue exhaustion etc.) are part of the observable
        // behavior too: both runs hit the same ones, so just drop them.
        drop(result);
        match sel % 3 {
            0 => {
                let target = Cycle(mc.now().raw() + gap);
                if fast {
                    mc.advance_to(target);
                } else {
                    mc.advance_to_reference(target);
                }
            }
            1 => {
                if fast {
                    mc.run_while_busy(Cycle(mc.now().raw() + gap));
                } else {
                    mc.run_while_busy_reference(Cycle(mc.now().raw() + gap));
                }
            }
            _ => {} // back-to-back submit: deeper queues for the scan
        }
    }
    if fast {
        mc.drain();
    } else {
        mc.drain_reference();
    }
    Observed {
        now: mc.now(),
        completions: mc.drain_completions(),
        flips: mc.drain_flips(),
        stats: mc.stats(),
        dram_stats: mc.dram_stats(),
    }
}

fn arb_mitigation() -> impl Strategy<Value = McMitigationConfig> {
    prop_oneof![
        Just(McMitigationConfig::None),
        (0.05f64..0.9, 1u32..3)
            .prop_map(|(prob, radius)| McMitigationConfig::Para { prob, radius }),
        (1usize..6, 2u64..24, 1u32..3).prop_map(|(table_size, threshold, radius)| {
            McMitigationConfig::Graphene {
                table_size,
                threshold,
                radius,
            }
        }),
        // delay deliberately starts at 0: the zero-delay clamp must
        // behave identically (and terminate) in both schedulers.
        (4usize..32, 1u32..3, 2u64..24, 0u64..150, 5_000u64..50_000).prop_map(
            |(cbf_counters, hashes, threshold, delay, epoch)| McMitigationConfig::BlockHammer {
                cbf_counters,
                hashes,
                threshold,
                delay,
                epoch,
            },
        ),
        (1usize..6, 2u64..24, 1u32..3, 2_000u64..20_000).prop_map(
            |(table_size, threshold, radius, prune_interval)| McMitigationConfig::TwiceLite {
                table_size,
                threshold,
                radius,
                prune_interval,
            },
        ),
    ]
}

fn make_pair(
    mitigation: McMitigationConfig,
    page_policy: PagePolicy,
    refresh_enabled: bool,
    trr: bool,
    mac: u64,
    seed: u64,
) -> Option<(MemCtrl, MemCtrl)> {
    let mut cfg = MemCtrlConfig::baseline();
    cfg.mitigation = mitigation;
    cfg.page_policy = page_policy;
    cfg.refresh_enabled = refresh_enabled;
    let mut dram_cfg = DramConfig::test_config(mac);
    if trr {
        dram_cfg.trr = Some(TrrConfig::vendor_default());
    }
    let a = MemCtrl::new(cfg.clone(), dram_cfg.clone(), seed).ok()?;
    let b = MemCtrl::new(cfg, dram_cfg, seed).ok()?;
    Some((a, b))
}

proptest! {
    /// Arbitrary request scripts over arbitrary controller
    /// configurations observe identical behavior under the fast and
    /// reference schedulers.
    #[test]
    fn fast_scheduler_matches_reference(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), 0u64..500), 1..48),
        mitigation in arb_mitigation(),
        closed_page in any::<bool>(),
        refresh_enabled in any::<bool>(),
        trr in any::<bool>(),
        mac in prop_oneof![Just(24u64), Just(1_000_000u64)],
        seed in any::<u64>(),
    ) {
        let policy = if closed_page { PagePolicy::Closed } else { PagePolicy::Open };
        let Some((fast, reference)) =
            make_pair(mitigation, policy, refresh_enabled, trr, mac, seed)
        else {
            return Ok(());
        };
        let got = run_script(fast, &ops, true);
        let want = run_script(reference, &ops, false);
        prop_assert_eq!(got, want);
    }
}

/// Builds one instrumented controller for the observability combo
/// sweep: `faults` arms an aggressive fault plan on both the device
/// and controller sides, `traced` attaches a buffering tracer to both,
/// and `shadowed` arms the live invariant checker.
fn observed_mc(
    faults: bool,
    traced: bool,
    shadowed: bool,
    seed: u64,
) -> (
    MemCtrl,
    Option<hammertime_telemetry::Tracer>,
    Option<hammertime_check::ShadowChecker>,
) {
    let mut cfg = MemCtrlConfig::baseline();
    cfg.page_policy = PagePolicy::Closed;
    let mut dram_cfg = DramConfig::test_config(24);
    if faults {
        let plan = hammertime_common::FaultPlan {
            seed: seed ^ 0x5EED,
            dropped_ref: 0.2,
            ghost_ref: 0.1,
            trr_miss: 0.3,
            dropped_interrupt: 0.2,
            delayed_interrupt: 0.2,
            stuck_act_count: 0.1,
            refresh_nack: 0.3,
            remap_corrupt: 0.1,
            disturb_saturation: 40,
            ..hammertime_common::FaultPlan::default()
        };
        cfg.faults = Some(plan);
        dram_cfg.faults = Some(plan);
    }
    let tracer = traced.then(hammertime_telemetry::Tracer::buffer);
    if let Some(t) = &tracer {
        cfg.tracer = Some(t.clone());
        dram_cfg.tracer = Some(t.clone());
    }
    let shadow = shadowed.then(hammertime_check::ShadowChecker::new);
    cfg.shadow = shadow.clone();
    let mc = MemCtrl::new(cfg, dram_cfg, seed).unwrap();
    (mc, tracer, shadow)
}

proptest! {
    /// The wheel must stay byte-identical to the reference scan under
    /// every observability combination: fault injection (which adds
    /// RNG draws on the scheduling path), event tracing (which records
    /// the full command stream), and the live shadow checker — in all
    /// eight on/off combos. Completions, flips, stats, the recorded
    /// trace, and even the shadow's violation list must agree.
    #[test]
    fn wheel_matches_reference_under_observability_combos(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), 0u64..500), 1..40),
        faults in any::<bool>(),
        traced in any::<bool>(),
        shadowed in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (fast_mc, fast_tracer, fast_shadow) =
            observed_mc(faults, traced, shadowed, seed);
        let (ref_mc, ref_tracer, ref_shadow) =
            observed_mc(faults, traced, shadowed, seed);
        let got = run_script(fast_mc, &ops, true);
        let want = run_script(ref_mc, &ops, false);
        prop_assert_eq!(got, want);
        if let (Some(a), Some(b)) = (&fast_tracer, &ref_tracer) {
            prop_assert_eq!(
                a.take_records(),
                b.take_records(),
                "stats agree but the command streams diverge"
            );
        }
        if let (Some(a), Some(b)) = (&fast_shadow, &ref_shadow) {
            prop_assert_eq!(a.violations(), b.violations());
            prop_assert_eq!(a.commands_checked(), b.commands_checked());
        }
    }
}

/// A sustained double-sided hammer past the MAC: the flip log (row,
/// cycle, and RNG-chosen bit positions) must be identical, proving the
/// fast path preserves the exact RNG draw order.
#[test]
fn hammer_flips_match_reference() {
    let script: Vec<Op> = (0..400)
        .map(|i| ((i % 2) as u8 * 5, (i % 2) as u64 * 8, 40))
        .collect();
    let (fast, reference) = make_pair(
        McMitigationConfig::None,
        PagePolicy::Closed,
        true,
        false,
        30,
        7,
    )
    .unwrap();
    let got = run_script(fast, &script, true);
    let want = run_script(reference, &script, false);
    assert!(
        !want.flips.is_empty(),
        "hammer script must actually flip bits"
    );
    assert_eq!(got, want);
}

/// Rank-level constraints under saturation: a closed-page ACT storm
/// scattered over a server-geometry rank (16 banks) with compressed
/// timing floods the tRRD/tFAW window while REF falls due every
/// `t_refi = 100` cycles. The fast and reference schedulers must agree
/// not just on the observable summary but on the *entire command
/// stream, cycle by cycle* — and that stream must satisfy the
/// independently implemented protocol-invariant catalog (bank FSM,
/// tRRD/tFAW, bus occupancy, refresh deadlines, conservation).
#[test]
fn act_storm_under_faw_and_refresh_pressure_matches_reference_and_lints_clean() {
    use hammertime_telemetry::Tracer;

    fn storm_mc(tracer: &Tracer) -> MemCtrl {
        let mut cfg = MemCtrlConfig::baseline();
        // Closed-page: every access pays a fresh ACT, maximizing the
        // ACT rate the rank rules have to ration.
        cfg.page_policy = PagePolicy::Closed;
        let mut dram_cfg = DramConfig::test_config(1_000_000);
        dram_cfg.geometry = hammertime_common::Geometry::server();
        dram_cfg.timing = hammertime_dram::TimingParams::tiny_test();
        dram_cfg.tracer = Some(tracer.clone());
        MemCtrl::new(cfg, dram_cfg, 11).unwrap()
    }

    // Phase 1 — saturation: back-to-back submits (gap 0 → deep queues
    // → the scheduler always has a legal ACT waiting). Demand ACTs
    // outprioritize REF the whole way (REF needs all banks settled),
    // so this phase genuinely postpones refresh; keep it shorter than
    // the 9×tREFI starvation limit. Phase 2 — calm: sparse submits
    // with long advances so the postponed REFs catch back up.
    let mut script: Vec<Op> = (0..440).map(|i| ((i % 2) as u8, i * 37, 0)).collect();
    script.extend((0..24).map(|i| (0u8, i, 300u64)));

    let fast_tracer = Tracer::buffer();
    let reference_tracer = Tracer::buffer();
    let got = run_script(storm_mc(&fast_tracer), &script, true);
    let want = run_script(storm_mc(&reference_tracer), &script, false);
    assert_eq!(got, want);

    let fast_records = fast_tracer.take_records();
    let reference_records = reference_tracer.take_records();
    assert_eq!(
        fast_records, reference_records,
        "schedulers agree on stats but diverge in the command stream"
    );

    // The storm must actually exercise the rank rules: plenty of ACTs
    // and real refresh pressure.
    assert!(got.dram_stats.acts >= 440, "acts: {}", got.dram_stats.acts);
    assert!(got.dram_stats.refs > 0, "storm saw no refresh pressure");

    let report = hammertime_check::lint_records(&fast_records);
    assert!(
        report.is_clean(),
        "scheduler violated protocol invariants:\n{}",
        report.to_jsonl()
    );
    assert!(report.commands > 0 && report.devices == 1);
}

/// An idle advance must cost O(refresh slots) scheduling steps, not
/// O(cycles): the memoized scan discovers the next refresh once and
/// the clock jumps straight to it.
#[test]
fn idle_advance_steps_are_bounded() {
    let mut mc = MemCtrl::new(
        MemCtrlConfig::baseline(),
        DramConfig::test_config(1_000_000),
        3,
    )
    .unwrap();
    mc.advance_to(Cycle(1_000_000));
    let s = mc.stats();
    assert!(s.refs_issued > 0, "refresh scheduler must have run");
    assert!(
        s.sched_steps <= s.refs_issued + 2,
        "idle advance took {} steps for {} REFs: the scheduler is re-probing \
         instead of jumping between refresh slots",
        s.sched_steps,
        s.refs_issued,
    );
}

/// With refresh disabled there is nothing to schedule at all: one probe
/// settles a million idle cycles.
#[test]
fn idle_advance_without_refresh_is_one_step() {
    let mut cfg = MemCtrlConfig::baseline();
    cfg.refresh_enabled = false;
    let mut mc = MemCtrl::new(cfg, DramConfig::test_config(1_000_000), 3).unwrap();
    mc.advance_to(Cycle(1_000_000));
    assert_eq!(mc.now(), Cycle(1_000_000));
    assert_eq!(mc.stats().sched_steps, 1);
}

/// Regression: a BlockHammer `delay: 0` blacklisting used to re-elect
/// the same ACT at the same cycle forever, hanging `advance_to`. The
/// throttle now clamps to at least one cycle, so the drain terminates
/// (a clamped ACT creeps forward until the filter epoch resets — keep
/// the epoch short or this test measures that creep, not termination).
#[test]
fn zero_delay_throttle_terminates() {
    let mut cfg = MemCtrlConfig::baseline();
    cfg.page_policy = PagePolicy::Closed;
    cfg.mitigation = McMitigationConfig::BlockHammer {
        cbf_counters: 16,
        hashes: 2,
        threshold: 3,
        delay: 0,
        epoch: 2_000,
    };
    let mut mc = MemCtrl::new(cfg, DramConfig::test_config(1_000_000), 3).unwrap();
    for i in 0..64 {
        mc.submit(MemRequest {
            id: i,
            line: CacheLineAddr(0),
            kind: RequestKind::Read,
            source: RequestSource::Core(0),
            domain: DomainId(1),
            arrival: mc.now(),
        })
        .unwrap();
    }
    mc.drain();
    assert_eq!(mc.drain_completions().len(), 64);
    assert!(mc.stats().throttle_events > 0, "throttle must have fired");
}
