//! Memory-controller statistics.

use hammertime_telemetry::Tracer;
use serde::{Deserialize, Serialize};

/// Counters the controller maintains across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct McStats {
    /// Demand reads completed.
    pub reads: u64,
    /// Demand writes completed.
    pub writes: u64,
    /// Accesses that hit the open row directly.
    pub row_hits: u64,
    /// Accesses that found the bank precharged (ACT needed).
    pub row_misses: u64,
    /// Accesses that found a different row open (PRE + ACT needed).
    pub row_conflicts: u64,
    /// Sum of demand-request latencies in cycles.
    pub latency_sum: u64,
    /// All-bank REF commands issued by the refresh scheduler.
    pub refs_issued: u64,
    /// REFs that issued *before* their per-rank deadline (pulled in).
    /// The normal scheduler never does this, but a host refresh
    /// instruction or a test poking the refresh clock can; counting
    /// them keeps the slack metric well-defined (slack is only
    /// observed for on-time-or-late REFs).
    pub early_refs: u64,
    /// REFs that only issued because the forced-refresh barrier cut
    /// off request traffic to their rank (postponed past
    /// `FORCED_REF_LEAD` × tREFI). Nonzero means a workload pushed the
    /// scheduler to the edge of the JEDEC pull-in window.
    pub refs_forced: u64,
    /// Maintenance operations (refresh instruction, REF_NEIGHBORS)
    /// completed.
    pub maintenance_ops: u64,
    /// ACTs postponed by throttling mitigation.
    pub throttle_events: u64,
    /// ACTs postponed specifically by BreakHammer per-tenant quota
    /// throttling (a subset of `throttle_events`). Mirrored from the
    /// mitigation engine so both stats blocks count throttle work.
    pub quota_throttles: u64,
    /// Requests rejected by the subarray-group domain check.
    pub domain_violations: u64,
    /// Scheduler step invocations. Bounds the scheduling work a run
    /// performed: an idle advance must cost O(refresh slots) steps,
    /// not O(cycles) — the regression `idle_advance_steps_are_bounded`
    /// pins this down.
    pub sched_steps: u64,
    /// Faults injected by the controller-side fault clock (dropped or
    /// delayed interrupts, stuck ACT_COUNT windows, refresh NACKs,
    /// remap corruptions).
    pub fault_injections: u64,
}

impl McStats {
    /// Demand requests completed.
    pub fn demand_completed(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean demand latency in cycles (0 when nothing completed).
    pub fn mean_latency(&self) -> f64 {
        if self.demand_completed() == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.demand_completed() as f64
        }
    }

    /// Row-buffer hit rate over classified accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Publishes the counters into `tracer`'s metrics registry under
    /// `mc.*`. Purely additive: the struct (and its serde output) is
    /// unchanged.
    pub fn register_metrics(&self, tracer: &Tracer) {
        tracer.counter_set("mc.reads", self.reads);
        tracer.counter_set("mc.writes", self.writes);
        tracer.counter_set("mc.row_hits", self.row_hits);
        tracer.counter_set("mc.row_misses", self.row_misses);
        tracer.counter_set("mc.row_conflicts", self.row_conflicts);
        tracer.counter_set("mc.latency_sum", self.latency_sum);
        tracer.counter_set("mc.refs_issued", self.refs_issued);
        tracer.counter_set("mc.early_refs", self.early_refs);
        tracer.counter_set("mc.refs_forced", self.refs_forced);
        tracer.counter_set("mc.maintenance_ops", self.maintenance_ops);
        tracer.counter_set("mc.throttle_events", self.throttle_events);
        tracer.counter_set("mc.quota_throttles", self.quota_throttles);
        tracer.counter_set("mc.domain_violations", self.domain_violations);
        tracer.counter_set("mc.sched_steps", self.sched_steps);
        tracer.counter_set("mc.fault_injections", self.fault_injections);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = McStats {
            reads: 6,
            writes: 4,
            row_hits: 5,
            row_misses: 3,
            row_conflicts: 2,
            latency_sum: 1000,
            ..Default::default()
        };
        assert_eq!(s.demand_completed(), 10);
        assert!((s.mean_latency() - 100.0).abs() < 1e-9);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = McStats::default();
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }
}
