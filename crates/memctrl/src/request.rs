//! Memory requests and completions at the controller boundary.

use hammertime_common::{CacheLineAddr, Cycle, DomainId, RequestSource};
use serde::{Deserialize, Serialize};

/// What a request asks the memory system to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestKind {
    /// Demand read of one cache line.
    Read,
    /// Demand write of one cache line.
    Write,
    /// The paper's host-privileged `refresh` instruction (§4.3): PRE,
    /// ACT of the target row, optional auto-precharge. No data moves.
    Refresh {
        /// Precharge after the activation (`ap` bit).
        auto_pre: bool,
    },
    /// The proposed REF_NEIGHBORS command (§4.3): device-side refresh
    /// of all rows within `radius` of the target row.
    RefNeighbors {
        /// Blast radius to cover.
        radius: u32,
    },
}

impl RequestKind {
    /// Returns `true` for the maintenance kinds that carry no data.
    pub fn is_maintenance(self) -> bool {
        matches!(
            self,
            RequestKind::Refresh { .. } | RequestKind::RefNeighbors { .. }
        )
    }
}

/// One request submitted to the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Caller-chosen identifier echoed in the completion.
    pub id: u64,
    /// Target cache line.
    pub line: CacheLineAddr,
    /// Operation.
    pub kind: RequestKind,
    /// Issuing agent (core or DMA device).
    pub source: RequestSource,
    /// Trust domain on whose behalf the request runs (the ASID tag the
    /// paper's subarray-isolated interleaving checks, §4.1).
    pub domain: DomainId,
    /// When the request reaches the controller.
    pub arrival: Cycle,
}

/// A finished request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// Identifier from the originating request.
    pub id: u64,
    /// Target cache line.
    pub line: CacheLineAddr,
    /// Operation that completed.
    pub kind: RequestKind,
    /// When the data burst (or maintenance operation) finished.
    pub done: Cycle,
    /// When the request arrived (for latency accounting).
    pub arrival: Cycle,
    /// Whether the access hit the open row buffer directly.
    pub row_hit: bool,
}

impl Completion {
    /// Request latency in cycles.
    pub fn latency(&self) -> u64 {
        self.done.delta(self.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maintenance_predicate() {
        assert!(RequestKind::Refresh { auto_pre: true }.is_maintenance());
        assert!(RequestKind::RefNeighbors { radius: 2 }.is_maintenance());
        assert!(!RequestKind::Read.is_maintenance());
        assert!(!RequestKind::Write.is_maintenance());
    }

    #[test]
    fn completion_latency() {
        let c = Completion {
            id: 1,
            line: CacheLineAddr(0),
            kind: RequestKind::Read,
            done: Cycle(150),
            arrival: Cycle(100),
            row_hit: false,
        };
        assert_eq!(c.latency(), 50);
    }
}
