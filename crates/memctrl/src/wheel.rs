//! Calendar scheduler for the fast command path.
//!
//! The controller's scheduling problem is event-driven: between
//! command issues nothing about the candidate set changes, and each
//! issue perturbs only a small, statically-known neighborhood (the
//! bank it touched, or every bank of a rank for ACT/REF timing
//! windows). [`EventWheel`] exploits that structure:
//!
//! - every bank with queued work posts its best [`Candidate`] — the
//!   next timed obligation for that bank (tRCD/tRAS/tRP expiry, tFAW
//!   and tRRD windows, throttle release, data-bus occupancy) collapses
//!   into the candidate's `issue_at` — into a time-ordered calendar;
//! - mutations mark the affected banks dirty instead of discarding the
//!   whole scan, and only dirty banks are repriced on the next query;
//! - the scheduler jumps straight to the earliest posted event with a
//!   heap peek instead of rescanning every bank.
//!
//! Rank refresh timers stay outside the calendar: the per-rank
//! `next_ref` deadline array in the controller *is* their (coarse)
//! wheel ring, and their candidates depend on every bank of the rank,
//! so they are repriced fresh on each query — there are at most
//! `channels x ranks` of them.
//!
//! Stale entries are handled by lazy deletion: an entry is trusted
//! only if it still matches its bank's slot byte-for-byte and the slot
//! is clean; otherwise it is popped and (if the bank is still live)
//! repriced. The calendar is rebuilt from the slots when stale entries
//! outnumber live ones, bounding memory at O(banks).
//!
//! Correctness contract (enforced by the differential suites): with
//! the dirty rules in `controller.rs`, a clean slot whose entry passes
//! the floor checks is exactly what repricing the bank would produce,
//! so the wheel's winner is byte-identical to a full scan — and
//! therefore to [`MemCtrl::step_reference`].
//!
//! [`MemCtrl::step_reference`]: crate::controller::MemCtrl::step_reference

use hammertime_common::Cycle;
use hammertime_dram::DdrCommand;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One schedulable command candidate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    pub issue_at: Cycle,
    /// Lower is better: 0 = refresh scheduler, 1 = CAS (row hit) and
    /// maintenance, 2 = ACT/PRE for misses.
    pub priority: u8,
    pub seq: u64,
    pub kind: CandidateKind,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum CandidateKind {
    /// Periodic refresh for (channel, rank): precharge-all then REF.
    RankRefresh {
        channel: u32,
        rank: u32,
        need_pre: bool,
    },
    /// Next command for queued request at `queue` index.
    Request { index: usize, cmd: DdrCommand },
}

/// FR-FCFS comparison: earliest issue first, then priority class, then
/// age. Strict, so equal tuples keep the earlier-scanned candidate —
/// the tie rule both scheduler implementations must share.
pub(crate) fn better(a: &Candidate, b: &Candidate) -> bool {
    key_of(a) < key_of(b)
}

/// The calendar ordering key of a candidate. Total order: request
/// candidates carry unique `seq`, and refresh candidates (seq 0,
/// priority 0) are never stored in the calendar.
pub(crate) fn key_of(c: &Candidate) -> SlotKey {
    (c.issue_at, c.priority, c.seq)
}

/// Calendar entry key: `(issue_at, priority, seq)` — the exact
/// comparison tuple of [`better`], so heap order is scan order.
pub(crate) type SlotKey = (Cycle, u8, u64);

/// Per-bank candidate slots plus a time-ordered calendar over them.
#[derive(Debug, Clone)]
pub(crate) struct EventWheel {
    /// Best candidate per flat bank, `None` when the bank has no
    /// issuable work. Trustworthy only when the bank is clean.
    slots: Vec<Option<Candidate>>,
    /// Banks whose slot no longer reflects controller state.
    dirty: Vec<bool>,
    /// Work list of dirty banks (each bank appears at most once).
    dirty_stack: Vec<u32>,
    /// The calendar: min-heap of `(key, bank)` entries. Entries whose
    /// key no longer matches the bank's slot are stale and lazily
    /// discarded.
    calendar: BinaryHeap<Reverse<(SlotKey, u32)>>,
    /// Calendar entries consumed (popped or repriced) over the run.
    pub events_processed: u64,
    /// High-water mark of live calendar entries.
    pub occupancy_peak: u64,
}

impl EventWheel {
    /// A wheel for `banks` flat banks, all slots empty and clean (a
    /// fresh controller has no queued work; submissions dirty banks).
    pub fn new(banks: usize) -> EventWheel {
        EventWheel {
            slots: vec![None; banks],
            dirty: vec![false; banks],
            dirty_stack: Vec::new(),
            calendar: BinaryHeap::new(),
            events_processed: 0,
            occupancy_peak: 0,
        }
    }

    /// Marks one bank's slot as out of date.
    pub fn mark_bank(&mut self, b: usize) {
        if !self.dirty[b] {
            self.dirty[b] = true;
            self.dirty_stack.push(b as u32);
        }
    }

    /// Marks a contiguous flat-bank range (one rank) out of date.
    pub fn mark_rank_range(&mut self, start: usize, len: usize) {
        for b in start..start + len {
            self.mark_bank(b);
        }
    }

    /// Marks every bank out of date (white-box device mutation, map
    /// reconfiguration, wedge).
    pub fn mark_all(&mut self) {
        self.dirty_stack.clear();
        self.calendar.clear();
        for (b, d) in self.dirty.iter_mut().enumerate() {
            *d = true;
            self.dirty_stack.push(b as u32);
        }
    }

    /// Next bank awaiting repricing, if any.
    pub fn pop_dirty(&mut self) -> Option<usize> {
        self.dirty_stack.pop().map(|b| b as usize)
    }

    /// Stores a freshly priced slot for `b`, posting it to the
    /// calendar, and marks the bank clean.
    pub fn store(&mut self, b: usize, c: Option<Candidate>) {
        self.events_processed += 1;
        self.dirty[b] = false;
        self.slots[b] = c;
        if let Some(c) = &c {
            self.calendar.push(Reverse((key_of(c), b as u32)));
            self.occupancy_peak = self.occupancy_peak.max(self.calendar.len() as u64);
        }
        // Lazy deletion bound: when stale entries dominate, rebuild
        // the calendar from the slots (at most one live entry each).
        if self.calendar.len() > (4 * self.slots.len()).max(64) {
            self.rebuild();
        }
    }

    /// The stored candidate for `b` (meaningful only when clean).
    pub fn slot(&self, b: usize) -> Option<Candidate> {
        self.slots[b]
    }

    /// Whether `b` awaits repricing.
    pub fn is_dirty(&self, b: usize) -> bool {
        self.dirty[b]
    }

    /// The earliest calendar entry, stale or not.
    pub fn peek(&self) -> Option<(SlotKey, usize)> {
        self.calendar
            .peek()
            .map(|Reverse((key, b))| (*key, *b as usize))
    }

    /// Discards the top calendar entry (stale, or invalidated by a
    /// floor that moved past it).
    pub fn pop(&mut self) {
        self.events_processed += 1;
        self.calendar.pop();
    }

    /// Live calendar entries (including not-yet-collected stale ones).
    pub fn occupancy(&self) -> u64 {
        self.calendar.len() as u64
    }

    fn rebuild(&mut self) {
        self.calendar.clear();
        for (b, slot) in self.slots.iter().enumerate() {
            if self.dirty[b] {
                continue;
            }
            if let Some(c) = slot {
                self.calendar.push(Reverse((key_of(c), b as u32)));
            }
        }
    }
}
