//! Physical-address → DRAM-coordinate mapping.
//!
//! The memory controller converts CPU physical addresses into DDR
//! logical coordinates according to a fixed mapping (paper §2.1). The
//! choice of mapping is where the paper's isolation-centric primitive
//! lives:
//!
//! - [`MappingScheme::CacheLineInterleave`] — production default:
//!   consecutive cache lines spread across channels and banks for
//!   bank-level parallelism, mixing all tenants in every bank.
//! - [`MappingScheme::XorPermute`] — interleave plus an XOR bank
//!   permutation (Zhang et al., MICRO'00) to spread row-conflict
//!   streaks.
//! - [`MappingScheme::BankPartition`] — interleaving disabled (the
//!   BIOS option the paper deems an undesirable fix, §4.1): each page
//!   lives in a single bank, enabling bank-aware allocation at the
//!   cost of parallelism.
//! - [`MappingScheme::SubarrayIsolated`] — the paper's proposal:
//!   interleaving stays fully enabled across channels/banks, but the
//!   *subarray* bits sit at the top of the address, partitioning the
//!   physical address space into per-subarray-group regions the host
//!   allocator can hand to distinct trust domains (§4.1, Fig. 2).
//! - [`MappingScheme::RubixScramble`] — Rubix-style randomized
//!   line-to-row mapping: the interleaved layout plus a seeded
//!   bijective permutation of the row index, so physically adjacent
//!   rows hold logically unrelated frames. An attacker who knows its
//!   own addresses no longer knows which *victim* frames are blast-
//!   radius neighbors; the cost is row-buffer locality for workloads
//!   that stream across row boundaries.
//!
//! Every scheme is a bijection between [`CacheLineAddr`] and
//! [`DramCoord`]; property tests verify the round trip for arbitrary
//! geometries (including arbitrary Rubix seeds).

use hammertime_common::addr::LINES_PER_PAGE;
use hammertime_common::geometry::BankId;
use hammertime_common::{CacheLineAddr, DramCoord, Error, Geometry, Result};
use serde::{Deserialize, Serialize};

/// Which address-mapping scheme the controller uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingScheme {
    /// Consecutive lines interleave across channels, then banks.
    CacheLineInterleave,
    /// Interleave plus XOR bank permutation keyed by row bits.
    XorPermute,
    /// No interleaving: a page occupies a single bank.
    BankPartition,
    /// Subarray-isolated interleaving (the paper's primitive).
    SubarrayIsolated,
    /// Interleave plus a seeded bijective permutation of the row index
    /// (Rubix-style randomized line-to-row mapping).
    RubixScramble {
        /// Key for the row permutation; two maps with equal seeds
        /// translate identically.
        seed: u64,
    },
}

/// A field of the line-address bit layout, LSB-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Channel,
    Rank,
    BankGroup,
    Bank,
    Col,
    Row,
    RowInSub,
    Subarray,
}

/// One round of the Rubix row permutation: multiply by an odd
/// constant (with its precomputed modular inverse), xorshift, xor a
/// key. Each step is bijective on `w`-bit integers, so the composition
/// is too.
#[derive(Debug, Clone, Copy)]
struct RubixRound {
    mul: u64,
    inv: u64,
    xor: u64,
}

/// The keyed row permutation for [`MappingScheme::RubixScramble`].
#[derive(Debug, Clone, Copy)]
struct RubixKeys {
    /// Row-field width in bits (0 = single row, identity).
    width: u32,
    rounds: [RubixRound; 3],
}

/// SplitMix64 step (the key-derivation stream).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Multiplicative inverse of odd `a` modulo 2^64 (Newton iteration;
/// masking the product reduces it to the inverse modulo any 2^w).
fn odd_inverse(a: u64) -> u64 {
    let mut inv = a; // correct to 3 bits
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(inv)));
    }
    inv
}

impl RubixKeys {
    fn derive(seed: u64, width: u32) -> RubixKeys {
        let mut state = seed;
        let rounds = std::array::from_fn(|_| {
            let mul = splitmix(&mut state) | 1; // odd → invertible
            RubixRound {
                mul,
                inv: odd_inverse(mul),
                xor: splitmix(&mut state),
            }
        });
        RubixKeys { width, rounds }
    }

    fn shift(&self) -> u32 {
        (self.width / 2).max(1)
    }

    /// The forward row permutation.
    fn permute(&self, row: u32) -> u32 {
        if self.width == 0 {
            return row;
        }
        let mask = (1u64 << self.width) - 1;
        let s = self.shift();
        let mut x = row as u64;
        for r in &self.rounds {
            x = x.wrapping_mul(r.mul) & mask;
            x ^= x >> s;
            x = (x ^ r.xor) & mask;
        }
        x as u32
    }

    /// The inverse row permutation.
    fn invert(&self, row: u32) -> u32 {
        if self.width == 0 {
            return row;
        }
        let mask = (1u64 << self.width) - 1;
        let s = self.shift();
        let mut x = row as u64;
        for r in self.rounds.iter().rev() {
            x = (x ^ r.xor) & mask;
            // Invert y = x ^ (x >> s) by fixpoint iteration: each pass
            // corrects `s` more bits, and width ≤ 32.
            let y = x;
            for _ in 0..32 {
                x = y ^ (x >> s);
            }
            x = x.wrapping_mul(r.inv) & mask;
        }
        x as u32
    }
}

/// The concrete mapping for one geometry.
#[derive(Debug, Clone)]
pub struct AddressMap {
    scheme: MappingScheme,
    geometry: Geometry,
    /// (field, bit width), lowest-order field first.
    layout: Vec<(Field, u32)>,
    /// The seeded row permutation (RubixScramble only).
    rubix: Option<RubixKeys>,
    /// Bumped by every [`AddressMap::reconfigure`]. Caches keyed on
    /// translation results (e.g. the machine's frames-of-row memo)
    /// compare this to detect that their entries went stale.
    generation: u64,
}

/// Bit width of a power-of-two field count, as a typed error rather
/// than a debug assertion: a non-power-of-two count coming in through a
/// config must surface as [`Error::Config`], never as a silently wrong
/// layout in release builds.
fn log2(what: &str, v: u32) -> Result<u32> {
    if !v.is_power_of_two() {
        return Err(Error::Config(format!(
            "{what} must be a power of two, got {v}"
        )));
    }
    Ok(v.trailing_zeros())
}

impl AddressMap {
    /// Builds the mapping for `geometry` under `scheme`.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if the geometry is invalid or too small for
    /// the scheme's page-granularity guarantees (a 4 KiB page must fit
    /// within one subarray group for [`MappingScheme::SubarrayIsolated`]
    /// and within one bank for [`MappingScheme::BankPartition`]).
    pub fn new(scheme: MappingScheme, geometry: Geometry) -> Result<AddressMap> {
        geometry.validate()?;
        let g = &geometry;
        let ch = log2("channels", g.channels)?;
        let rk = log2("ranks", g.ranks)?;
        let bg = log2("bank groups", g.bank_groups)?;
        let ba = log2("banks per group", g.banks_per_group)?;
        let co = log2("columns", g.columns)?;
        let ro = log2("rows per bank", g.rows_per_bank())?;
        let rs = log2("rows per subarray", g.rows_per_subarray)?;
        let sa = log2("subarrays per bank", g.subarrays_per_bank)?;
        let page_bits = LINES_PER_PAGE.trailing_zeros();

        let layout: Vec<(Field, u32)> = match scheme {
            MappingScheme::CacheLineInterleave
            | MappingScheme::XorPermute
            | MappingScheme::RubixScramble { .. } => vec![
                (Field::Channel, ch),
                (Field::BankGroup, bg),
                (Field::Bank, ba),
                (Field::Col, co),
                (Field::Rank, rk),
                (Field::Row, ro),
            ],
            MappingScheme::BankPartition => {
                if co + ro < page_bits {
                    return Err(Error::Config(format!(
                        "bank partition needs col+row bits >= {page_bits} to keep a page in one bank"
                    )));
                }
                vec![
                    (Field::Col, co),
                    (Field::Row, ro),
                    (Field::Bank, ba),
                    (Field::BankGroup, bg),
                    (Field::Rank, rk),
                    (Field::Channel, ch),
                ]
            }
            MappingScheme::SubarrayIsolated => {
                if ch + bg + ba + co + rk + rs < page_bits {
                    return Err(Error::Config(format!(
                        "subarray isolation needs >= {page_bits} bits below the subarray field"
                    )));
                }
                vec![
                    (Field::Channel, ch),
                    (Field::BankGroup, bg),
                    (Field::Bank, ba),
                    (Field::Col, co),
                    (Field::Rank, rk),
                    (Field::RowInSub, rs),
                    (Field::Subarray, sa),
                ]
            }
        };
        let rubix = match scheme {
            MappingScheme::RubixScramble { seed } => Some(RubixKeys::derive(seed, ro)),
            _ => None,
        };
        Ok(AddressMap {
            scheme,
            geometry,
            layout,
            rubix,
            generation: 0,
        })
    }

    /// Switches the map to a different scheme in place (host BIOS-style
    /// reconfiguration), preserving the geometry and bumping
    /// [`AddressMap::generation`] so translation caches invalidate.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if the geometry cannot support `scheme`; the
    /// map is left unchanged (and the generation unbumped) on error.
    pub fn reconfigure(&mut self, scheme: MappingScheme) -> Result<()> {
        let fresh = AddressMap::new(scheme, self.geometry)?;
        self.scheme = fresh.scheme;
        self.layout = fresh.layout;
        self.rubix = fresh.rubix;
        self.generation += 1;
        Ok(())
    }

    /// Monotone configuration counter: 0 at construction, +1 per
    /// [`AddressMap::reconfigure`]. Two maps with equal generation and
    /// provenance translate identically, so caches of translation
    /// results key on it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The scheme this map implements.
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    /// The geometry this map covers.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    fn xor_bank(&self, mut bank: u32, mut bank_group: u32, row: u32) -> (u32, u32) {
        // Involutive permutation: XOR bank bits with the low row bits,
        // bank-group bits with the next row bits.
        let g = &self.geometry;
        // Validated power-of-two at construction.
        bank ^= row & (g.banks_per_group - 1);
        bank_group ^= (row >> g.banks_per_group.trailing_zeros()) & (g.bank_groups - 1);
        (bank, bank_group)
    }

    /// Maps a cache line to its DRAM coordinate.
    ///
    /// # Errors
    ///
    /// [`Error::Translation`] if the line is beyond the installed
    /// capacity.
    pub fn to_coord(&self, line: CacheLineAddr) -> Result<DramCoord> {
        let mut v = line.line_index();
        if v >= self.geometry.total_lines() {
            return Err(Error::Translation(format!(
                "{line} beyond capacity ({} lines)",
                self.geometry.total_lines()
            )));
        }
        let (mut channel, mut rank, mut bank_group, mut bank) = (0u32, 0u32, 0u32, 0u32);
        let (mut col, mut row, mut row_in_sub, mut subarray) = (0u32, 0u32, 0u32, 0u32);
        for &(field, bits) in &self.layout {
            let part = (v & ((1u64 << bits) - 1)) as u32;
            v >>= bits;
            match field {
                Field::Channel => channel = part,
                Field::Rank => rank = part,
                Field::BankGroup => bank_group = part,
                Field::Bank => bank = part,
                Field::Col => col = part,
                Field::Row => row = part,
                Field::RowInSub => row_in_sub = part,
                Field::Subarray => subarray = part,
            }
        }
        if self.scheme == MappingScheme::SubarrayIsolated {
            row = subarray * self.geometry.rows_per_subarray + row_in_sub;
        }
        if self.scheme == MappingScheme::XorPermute {
            let (b, bg) = self.xor_bank(bank, bank_group, row);
            bank = b;
            bank_group = bg;
        }
        if let Some(rubix) = &self.rubix {
            row = rubix.permute(row);
        }
        Ok(DramCoord {
            channel,
            rank,
            bank_group,
            bank,
            row,
            col,
        })
    }

    /// Maps a DRAM coordinate back to its cache line (inverse of
    /// [`AddressMap::to_coord`]).
    pub fn to_line(&self, coord: &DramCoord) -> Result<CacheLineAddr> {
        coord.validate(&self.geometry)?;
        let (mut bank, mut bank_group) = (coord.bank, coord.bank_group);
        if self.scheme == MappingScheme::XorPermute {
            // XOR permutation is involutive: applying it again undoes it.
            let (b, bg) = self.xor_bank(bank, bank_group, coord.row);
            bank = b;
            bank_group = bg;
        }
        // Under Rubix the coordinate's row is the scrambled one; pack
        // the unscrambled index back into the line.
        let row = match &self.rubix {
            Some(rubix) => rubix.invert(coord.row),
            None => coord.row,
        };
        let row_in_sub = coord.row % self.geometry.rows_per_subarray;
        let subarray = coord.row / self.geometry.rows_per_subarray;
        let mut v = 0u64;
        let mut shift = 0u32;
        for &(field, bits) in &self.layout {
            let part = match field {
                Field::Channel => coord.channel,
                Field::Rank => coord.rank,
                Field::BankGroup => bank_group,
                Field::Bank => bank,
                Field::Col => coord.col,
                Field::Row => row,
                Field::RowInSub => row_in_sub,
                Field::Subarray => subarray,
            };
            debug_assert!(part < (1 << bits) || bits == 0);
            v |= (part as u64) << shift;
            shift += bits;
        }
        Ok(CacheLineAddr(v))
    }

    /// Number of subarray groups the scheme exposes (1 for schemes
    /// without subarray isolation).
    pub fn subarray_groups(&self) -> u32 {
        match self.scheme {
            MappingScheme::SubarrayIsolated => self.geometry.subarrays_per_bank,
            _ => 1,
        }
    }

    /// The subarray group a page frame belongs to under subarray-
    /// isolated interleaving (`0` under other schemes).
    pub fn group_of_frame(&self, frame: u64) -> u32 {
        if self.scheme != MappingScheme::SubarrayIsolated {
            return 0;
        }
        let frames_per_group = self.frames_per_group();
        (frame / frames_per_group) as u32
    }

    /// Frames per subarray group (the allocation granule the host
    /// allocator partitions among trust domains).
    pub fn frames_per_group(&self) -> u64 {
        self.geometry.total_frames() / self.subarray_groups() as u64
    }

    /// The contiguous frame range forming subarray group `group`.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if `group` is out of range.
    pub fn frames_of_group(&self, group: u32) -> Result<std::ops::Range<u64>> {
        if group >= self.subarray_groups() {
            return Err(Error::Config(format!(
                "group {group} out of range ({} groups)",
                self.subarray_groups()
            )));
        }
        let per = self.frames_per_group();
        Ok(group as u64 * per..(group as u64 + 1) * per)
    }

    /// The flat bank a frame occupies under [`MappingScheme::BankPartition`].
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for other schemes (frames span many banks);
    /// [`Error::Translation`] if out of range.
    pub fn bank_of_frame(&self, frame: u64) -> Result<BankId> {
        if self.scheme != MappingScheme::BankPartition {
            return Err(Error::Config(
                "bank_of_frame only meaningful under BankPartition".into(),
            ));
        }
        let line = CacheLineAddr(frame * LINES_PER_PAGE);
        let coord = self.to_coord(line)?;
        Ok(BankId::of(&coord))
    }

    /// The row-stripe index of a frame: the in-bank row its lines map
    /// to. Meaningful for interleaved schemes where a frame's lines all
    /// share one row index across banks; used by guard-row placement.
    ///
    /// # Errors
    ///
    /// [`Error::Translation`] if the frame is out of range, or
    /// [`Error::Config`] if the frame's lines straddle two rows (the
    /// scheme does not form row stripes).
    pub fn row_stripe_of_frame(&self, frame: u64) -> Result<u32> {
        let first = self.to_coord(CacheLineAddr(frame * LINES_PER_PAGE))?;
        let last = self.to_coord(CacheLineAddr((frame + 1) * LINES_PER_PAGE - 1))?;
        if first.row != last.row {
            return Err(Error::Config(format!(
                "frame {frame} straddles rows {} and {}",
                first.row, last.row
            )));
        }
        Ok(first.row)
    }

    /// All frames whose lines map to in-bank row `row` (the inverse of
    /// [`AddressMap::row_stripe_of_frame`] for stripe-forming schemes).
    pub fn frames_of_row_stripe(&self, row: u32) -> Vec<u64> {
        (0..self.geometry.total_frames())
            .filter(|&f| {
                self.row_stripe_of_frame(f)
                    .map(|r| r == row)
                    .unwrap_or(false)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemes() -> [MappingScheme; 5] {
        [
            MappingScheme::CacheLineInterleave,
            MappingScheme::XorPermute,
            MappingScheme::BankPartition,
            MappingScheme::SubarrayIsolated,
            MappingScheme::RubixScramble { seed: 0xA5A5 },
        ]
    }

    #[test]
    fn round_trip_all_schemes_medium_geometry() {
        let g = Geometry::medium();
        for scheme in schemes() {
            let map = AddressMap::new(scheme, g).unwrap();
            for idx in 0..g.total_lines() {
                let line = CacheLineAddr(idx);
                let coord = map.to_coord(line).unwrap();
                coord.validate(&g).unwrap();
                assert_eq!(map.to_line(&coord).unwrap(), line, "{scheme:?} at {idx}");
            }
        }
    }

    #[test]
    fn out_of_range_line_rejected() {
        let g = Geometry::small_test();
        let map = AddressMap::new(MappingScheme::CacheLineInterleave, g).unwrap();
        assert!(map.to_coord(CacheLineAddr(g.total_lines())).is_err());
    }

    #[test]
    fn interleave_spreads_consecutive_lines_across_banks() {
        let g = Geometry::medium(); // 1 channel, 4 banks
        let map = AddressMap::new(MappingScheme::CacheLineInterleave, g).unwrap();
        let banks: std::collections::HashSet<usize> = (0..4)
            .map(|i| map.to_coord(CacheLineAddr(i)).unwrap().flat_bank(&g))
            .collect();
        assert_eq!(banks.len(), 4, "4 consecutive lines should hit 4 banks");
    }

    #[test]
    fn bank_partition_keeps_page_in_one_bank() {
        let g = Geometry::medium();
        let map = AddressMap::new(MappingScheme::BankPartition, g).unwrap();
        for frame in 0..g.total_frames() {
            let banks: std::collections::HashSet<usize> = (0..LINES_PER_PAGE)
                .map(|i| {
                    map.to_coord(CacheLineAddr(frame * LINES_PER_PAGE + i))
                        .unwrap()
                        .flat_bank(&g)
                })
                .collect();
            assert_eq!(banks.len(), 1, "frame {frame} spans banks");
            assert_eq!(
                map.bank_of_frame(frame).unwrap().flat(&g),
                *banks.iter().next().unwrap()
            );
        }
    }

    #[test]
    fn subarray_isolated_keeps_page_in_one_group_but_spreads_banks() {
        let g = Geometry::medium(); // 4 subarrays
        let map = AddressMap::new(MappingScheme::SubarrayIsolated, g).unwrap();
        assert_eq!(map.subarray_groups(), 4);
        for frame in 0..g.total_frames() {
            let group = map.group_of_frame(frame);
            let mut banks = std::collections::HashSet::new();
            for i in 0..LINES_PER_PAGE {
                let coord = map
                    .to_coord(CacheLineAddr(frame * LINES_PER_PAGE + i))
                    .unwrap();
                assert_eq!(
                    coord.subarray(&g),
                    group,
                    "frame {frame} line {i} left its group"
                );
                banks.insert(coord.flat_bank(&g));
            }
            assert!(
                banks.len() > 1,
                "subarray isolation must preserve bank-level interleaving"
            );
        }
    }

    #[test]
    fn frames_of_group_partition_the_frame_space() {
        let g = Geometry::medium();
        let map = AddressMap::new(MappingScheme::SubarrayIsolated, g).unwrap();
        let mut covered = 0;
        for group in 0..map.subarray_groups() {
            let range = map.frames_of_group(group).unwrap();
            for f in range.clone() {
                assert_eq!(map.group_of_frame(f), group);
            }
            covered += range.end - range.start;
        }
        assert_eq!(covered, g.total_frames());
        assert!(map.frames_of_group(map.subarray_groups()).is_err());
    }

    #[test]
    fn xor_permute_differs_from_plain_interleave_but_round_trips() {
        let g = Geometry::medium();
        let plain = AddressMap::new(MappingScheme::CacheLineInterleave, g).unwrap();
        let xored = AddressMap::new(MappingScheme::XorPermute, g).unwrap();
        let mut differs = false;
        for idx in 0..g.total_lines() {
            let a = plain.to_coord(CacheLineAddr(idx)).unwrap();
            let b = xored.to_coord(CacheLineAddr(idx)).unwrap();
            assert_eq!(a.row, b.row);
            assert_eq!(a.col, b.col);
            if (a.bank, a.bank_group) != (b.bank, b.bank_group) {
                differs = true;
            }
        }
        assert!(differs, "XOR permutation should move some banks");
    }

    #[test]
    fn row_stripes_are_consistent_for_interleaved_schemes() {
        let g = Geometry::medium();
        for scheme in [
            MappingScheme::CacheLineInterleave,
            MappingScheme::SubarrayIsolated,
            MappingScheme::RubixScramble { seed: 17 },
        ] {
            let map = AddressMap::new(scheme, g).unwrap();
            for frame in 0..g.total_frames() {
                let row = map.row_stripe_of_frame(frame).unwrap();
                assert!(map.frames_of_row_stripe(row).contains(&frame));
            }
        }
    }

    #[test]
    fn bank_of_frame_rejected_for_interleaved_scheme() {
        let g = Geometry::medium();
        let map = AddressMap::new(MappingScheme::CacheLineInterleave, g).unwrap();
        assert!(map.bank_of_frame(0).is_err());
    }

    #[test]
    fn non_power_of_two_geometry_is_a_typed_config_error() {
        let mut g = Geometry::medium();
        g.columns = 3;
        let err = AddressMap::new(MappingScheme::CacheLineInterleave, g).unwrap_err();
        assert!(matches!(err, Error::Config(_)), "got {err:?}");
    }

    #[test]
    fn rubix_scrambles_rows_but_permutes_the_stripe_space() {
        let g = Geometry::medium();
        let plain = AddressMap::new(MappingScheme::CacheLineInterleave, g).unwrap();
        let rubix = AddressMap::new(MappingScheme::RubixScramble { seed: 0xDEAD }, g).unwrap();
        let rows = g.rows_per_bank();
        let mut plain_stripes = Vec::new();
        let mut rubix_stripes = Vec::new();
        let frames_per_stripe = g.total_frames() / rows as u64;
        for frame in 0..g.total_frames() {
            plain_stripes.push(plain.row_stripe_of_frame(frame).unwrap());
            rubix_stripes.push(rubix.row_stripe_of_frame(frame).unwrap());
        }
        assert_ne!(plain_stripes, rubix_stripes, "scramble must move rows");
        // Still a permutation of the stripe space: every row hosts the
        // same number of frames as under the identity layout.
        let mut counts = vec![0u64; rows as usize];
        for &s in &rubix_stripes {
            counts[s as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == frames_per_stripe));
        // Blast-radius dilution: logically consecutive stripes land on
        // physically non-adjacent rows for most frames.
        let adjacent = rubix_stripes
            .windows(2)
            .filter(|w| w[0] != w[1])
            .filter(|w| w[0].abs_diff(w[1]) == 1)
            .count();
        let moved = rubix_stripes.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            adjacent * 4 < moved,
            "scrambled neighbors should rarely stay adjacent ({adjacent}/{moved})"
        );
    }

    #[test]
    fn rubix_seed_selects_the_permutation() {
        let g = Geometry::medium();
        let a = AddressMap::new(MappingScheme::RubixScramble { seed: 1 }, g).unwrap();
        let b = AddressMap::new(MappingScheme::RubixScramble { seed: 2 }, g).unwrap();
        let c = AddressMap::new(MappingScheme::RubixScramble { seed: 1 }, g).unwrap();
        let rows_a: Vec<u32> = (0..g.total_frames())
            .map(|f| a.row_stripe_of_frame(f).unwrap())
            .collect();
        let rows_b: Vec<u32> = (0..g.total_frames())
            .map(|f| b.row_stripe_of_frame(f).unwrap())
            .collect();
        let rows_c: Vec<u32> = (0..g.total_frames())
            .map(|f| c.row_stripe_of_frame(f).unwrap())
            .collect();
        assert_ne!(rows_a, rows_b, "different seeds, different scrambles");
        assert_eq!(rows_a, rows_c, "equal seeds translate identically");
    }

    #[test]
    fn reconfigure_to_rubix_bumps_generation_and_round_trips() {
        let g = Geometry::medium();
        let mut map = AddressMap::new(MappingScheme::CacheLineInterleave, g).unwrap();
        assert_eq!(map.generation(), 0);
        map.reconfigure(MappingScheme::RubixScramble { seed: 99 })
            .unwrap();
        assert_eq!(map.generation(), 1);
        for idx in 0..g.total_lines() {
            let line = CacheLineAddr(idx);
            let coord = map.to_coord(line).unwrap();
            coord.validate(&g).unwrap();
            assert_eq!(map.to_line(&coord).unwrap(), line);
        }
    }

    #[test]
    fn too_small_geometry_rejected_for_subarray_isolation() {
        // Only 2 bits (1 col + 1 row-in-sub) below the subarray field —
        // cannot hold a 64-line page within one subarray group.
        let g = Geometry {
            channels: 1,
            ranks: 1,
            bank_groups: 1,
            banks_per_group: 1,
            subarrays_per_bank: 8,
            rows_per_subarray: 2,
            columns: 2,
        };
        assert!(AddressMap::new(MappingScheme::SubarrayIsolated, g).is_err());
    }

    mod rubix_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The raw row permutation is a bijection over the row
            /// space for arbitrary seeds and field widths, and
            /// `invert` is its exact inverse.
            #[test]
            fn row_permutation_bijects(seed in any::<u64>(), width in 0u32..13) {
                let keys = RubixKeys::derive(seed, width);
                let rows = 1u64 << width;
                let mut seen = vec![false; rows as usize];
                for r in 0..rows as u32 {
                    let p = keys.permute(r);
                    prop_assert!((p as u64) < rows, "out of range");
                    prop_assert!(!seen[p as usize], "collision at {r}");
                    seen[p as usize] = true;
                    prop_assert_eq!(keys.invert(p), r);
                }
            }

            /// The full line→coordinate map stays a bijection over the
            /// line space for arbitrary seeds and geometries.
            #[test]
            fn line_space_bijects(
                seed in any::<u64>(),
                channels_log in 0u32..2,
                banks_log in 0u32..2,
                subarrays_log in 1u32..3,
                rows_log in 1u32..4,
                cols_log in 2u32..5,
            ) {
                let g = Geometry {
                    channels: 1 << channels_log,
                    ranks: 1,
                    bank_groups: 1,
                    banks_per_group: 1 << banks_log,
                    subarrays_per_bank: 1 << subarrays_log,
                    rows_per_subarray: 1 << rows_log,
                    columns: 1 << cols_log,
                };
                let map = AddressMap::new(MappingScheme::RubixScramble { seed }, g).unwrap();
                let mut seen = std::collections::HashSet::new();
                for idx in 0..g.total_lines() {
                    let line = CacheLineAddr(idx);
                    let coord = map.to_coord(line).unwrap();
                    coord.validate(&g).unwrap();
                    prop_assert!(seen.insert((coord.channel, coord.rank, coord.bank_group, coord.bank, coord.row, coord.col)), "coordinate collision");
                    prop_assert_eq!(map.to_line(&coord).unwrap(), line);
                }
                prop_assert_eq!(seen.len() as u64, g.total_lines());
            }
        }
    }
}
