//! ACT counters and the paper's precise ACT interrupt primitive.
//!
//! Modern Intel memory controllers already count activations per
//! channel and can interrupt after a configurable number of ACTs, but
//! report *no address*, leaving software "powerless to determine which
//! address(es) to take action on" (paper §4.2). The paper's primitive
//! augments the existing ACT_COUNT overflow event to report the
//! physical (cache-line) address of the RD/WR that triggered the most
//! recent ACT.
//!
//! [`ActCounterBlock`] implements both variants behind one switch:
//! with [`Precision::AddressReporting`] the interrupt carries the
//! triggering line; with [`Precision::CountOnly`] (status quo) it does
//! not. The host OS programs the overflow threshold and the *reset
//! value* written back after each overflow; a randomized reset window
//! prevents attackers pacing their ACTs to dodge sampling (§4.2).

use hammertime_common::{CacheLineAddr, Cycle, DetRng, DomainId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Whether overflow interrupts carry the triggering address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// Status quo: a count overflowed somewhere on the channel.
    CountOnly,
    /// The paper's primitive: report the physical cache-line address
    /// of the RD/WR that caused the latest ACT.
    AddressReporting,
}

/// An ACT_COUNT overflow interrupt delivered to the host OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActInterrupt {
    /// Channel whose counter overflowed.
    pub channel: u32,
    /// When the overflow occurred.
    pub time: Cycle,
    /// Triggering cache line — `Some` only with
    /// [`Precision::AddressReporting`].
    pub addr: Option<CacheLineAddr>,
    /// Trust domain charged with the overflow: the domain with the
    /// highest single-row ACT concentration in the overflowed window
    /// (ties broken toward the lower domain id, then the lower row).
    /// `None` for a *diffuse* window — one where no domain
    /// re-activated any single row often enough to look like
    /// hammering — or when the window recorded no attributable ACTs.
    pub domain: Option<DomainId>,
}

/// Host-programmable counter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActCounterConfig {
    /// Counts from the reset value up; overflow at this many ACTs.
    pub threshold: u64,
    /// Reset values are drawn uniformly from
    /// `[0, randomize_reset_window]` after each overflow; `0` means a
    /// deterministic reset to zero (predictable, dodgeable).
    pub randomize_reset_window: u64,
    /// Interrupt precision.
    pub precision: Precision,
}

impl ActCounterConfig {
    /// The paper's recommended setup: precise interrupts with a
    /// randomized reset so attackers cannot pace around sampling.
    pub fn precise(threshold: u64) -> ActCounterConfig {
        ActCounterConfig {
            threshold,
            randomize_reset_window: (threshold / 4).max(1),
            precision: Precision::AddressReporting,
        }
    }

    /// The status-quo counter: same threshold, no address,
    /// deterministic reset.
    pub fn legacy(threshold: u64) -> ActCounterConfig {
        ActCounterConfig {
            threshold,
            randomize_reset_window: 0,
            precision: Precision::CountOnly,
        }
    }
}

/// Per-channel ACT counters with an interrupt queue.
#[derive(Debug, Clone)]
pub struct ActCounterBlock {
    config: ActCounterConfig,
    counts: Vec<u64>,
    /// Per-channel `(domain, row)` ACT counts within the current
    /// overflow window; cleared at each overflow. The counter itself
    /// is *shared* across the channel, so attribution must not blame
    /// whoever happens to dominate raw volume: a sequential streamer
    /// can overflow the channel total alone without ever re-activating
    /// a row. Charging instead keys on single-row concentration — the
    /// signature of actual hammering.
    window_rows: Vec<BTreeMap<(u32, u64), u64>>,
    pending: Vec<ActInterrupt>,
    rng: DetRng,
    /// Total overflows raised (stats).
    pub overflows: u64,
}

impl ActCounterBlock {
    /// Creates counters for `channels` channels.
    pub fn new(config: ActCounterConfig, channels: u32, rng: DetRng) -> ActCounterBlock {
        ActCounterBlock {
            config,
            counts: vec![0; channels as usize],
            window_rows: vec![BTreeMap::new(); channels as usize],
            pending: Vec::new(),
            rng,
            overflows: 0,
        }
    }

    /// Reconfigures the counters (host OS MSR write).
    pub fn reconfigure(&mut self, config: ActCounterConfig) {
        self.config = config;
        for c in &mut self.counts {
            *c = 0;
        }
        for w in &mut self.window_rows {
            w.clear();
        }
    }

    /// Current configuration.
    pub fn config(&self) -> ActCounterConfig {
        self.config
    }

    /// Records an ACT on `channel` triggered by a RD/WR to `line`
    /// issued by `domain` against the channel-unique row key `row`,
    /// raising an interrupt on overflow. Returns the domain charged
    /// with the overflow when one fires.
    pub fn on_act(
        &mut self,
        channel: u32,
        line: CacheLineAddr,
        domain: DomainId,
        row: u64,
        now: Cycle,
    ) -> Option<DomainId> {
        if self.config.threshold == 0 {
            return None; // counters disabled
        }
        let ch = channel as usize;
        *self.window_rows[ch].entry((domain.0, row)).or_insert(0) += 1;
        let c = &mut self.counts[ch];
        *c += 1;
        if *c >= self.config.threshold {
            self.overflows += 1;
            let reset = if self.config.randomize_reset_window == 0 {
                0
            } else {
                self.rng.below(self.config.randomize_reset_window + 1)
            };
            *c = reset;
            // Charge the window's most row-concentrated contributor,
            // and only when that concentration itself looks like
            // hammering: at least `threshold / 4` (min 2) ACTs to a
            // single row. A diffuse window — a streamer tripping the
            // shared channel total one row at a time — charges nobody.
            // BTreeMap iterates ascending, so a strict `>` keeps the
            // lower (domain, row) on ties.
            let floor = (self.config.threshold / 4).max(2);
            let mut top: Option<((u32, u64), u64)> = None;
            for (&k, &n) in &self.window_rows[ch] {
                if top.is_none_or(|(_, best)| n > best) {
                    top = Some((k, n));
                }
            }
            self.window_rows[ch].clear();
            let charged = top.and_then(|((d, _), n)| (n >= floor).then_some(DomainId(d)));
            self.pending.push(ActInterrupt {
                channel,
                time: now,
                addr: match self.config.precision {
                    Precision::AddressReporting => Some(line),
                    Precision::CountOnly => None,
                },
                domain: charged,
            });
            charged
        } else {
            None
        }
    }

    /// Drains pending interrupts (the host OS handler runs on these).
    pub fn drain(&mut self) -> Vec<ActInterrupt> {
        std::mem::take(&mut self.pending)
    }

    /// Current counter value on `channel` (host-readable MSR).
    pub fn count(&self, channel: u32) -> u64 {
        self.counts[channel as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(config: ActCounterConfig) -> ActCounterBlock {
        ActCounterBlock::new(config, 2, DetRng::new(1))
    }

    #[test]
    fn precise_interrupt_reports_triggering_address() {
        let mut b = block(ActCounterConfig {
            threshold: 3,
            randomize_reset_window: 0,
            precision: Precision::AddressReporting,
        });
        for i in 0..3 {
            b.on_act(0, CacheLineAddr(100 + i), DomainId(1), 0, Cycle(i));
        }
        let ints = b.drain();
        assert_eq!(ints.len(), 1);
        assert_eq!(
            ints[0].addr,
            Some(CacheLineAddr(102)),
            "latest RD/WR address"
        );
        assert_eq!(ints[0].channel, 0);
        assert_eq!(ints[0].time, Cycle(2));
        assert!(b.drain().is_empty());
    }

    #[test]
    fn legacy_interrupt_reports_no_address() {
        let mut b = block(ActCounterConfig::legacy(2));
        b.on_act(1, CacheLineAddr(7), DomainId(1), 0, Cycle(0));
        b.on_act(1, CacheLineAddr(8), DomainId(1), 0, Cycle(1));
        let ints = b.drain();
        assert_eq!(ints.len(), 1);
        assert_eq!(ints[0].addr, None, "status quo is address-blind");
    }

    #[test]
    fn channels_count_independently() {
        let mut b = block(ActCounterConfig::legacy(3));
        b.on_act(0, CacheLineAddr(0), DomainId(1), 0, Cycle(0));
        b.on_act(0, CacheLineAddr(0), DomainId(1), 0, Cycle(1));
        b.on_act(1, CacheLineAddr(0), DomainId(1), 0, Cycle(2));
        assert_eq!(b.count(0), 2);
        assert_eq!(b.count(1), 1);
        assert!(b.drain().is_empty());
    }

    #[test]
    fn deterministic_reset_restarts_from_zero() {
        let mut b = block(ActCounterConfig::legacy(2));
        for i in 0..6 {
            b.on_act(0, CacheLineAddr(0), DomainId(1), 0, Cycle(i));
        }
        assert_eq!(b.overflows, 3);
        assert_eq!(b.count(0), 0);
    }

    #[test]
    fn randomized_reset_varies_overflow_spacing() {
        let mut b = block(ActCounterConfig {
            threshold: 100,
            randomize_reset_window: 90,
            precision: Precision::AddressReporting,
        });
        let mut spacings = Vec::new();
        let mut last = 0u64;
        for i in 0..5_000u64 {
            b.on_act(0, CacheLineAddr(0), DomainId(1), 0, Cycle(i));
            let n = b.overflows;
            if n > 0 && b.count(0) != last {
                // record at overflow boundaries
            }
            last = b.count(0);
            if last == b.count(0) && b.count(0) < 100 {
                // no-op: spacing measured below via overflow count deltas
            }
            if i % 1000 == 999 {
                spacings.push(n);
            }
        }
        // With randomized resets the counter starts anywhere in [0,90],
        // so per-1000-ACT overflow counts vary around 1000/(100-45).
        assert!(b.overflows > 5_000 / 100, "randomization shortens periods");
    }

    #[test]
    fn zero_threshold_disables_counters() {
        let mut b = block(ActCounterConfig {
            threshold: 0,
            randomize_reset_window: 0,
            precision: Precision::AddressReporting,
        });
        for i in 0..100 {
            b.on_act(0, CacheLineAddr(0), DomainId(1), 0, Cycle(i));
        }
        assert!(b.drain().is_empty());
        assert_eq!(b.overflows, 0);
    }

    #[test]
    fn reconfigure_clears_counts() {
        let mut b = block(ActCounterConfig::legacy(10));
        for i in 0..5 {
            b.on_act(0, CacheLineAddr(0), DomainId(1), 0, Cycle(i));
        }
        assert_eq!(b.count(0), 5);
        b.reconfigure(ActCounterConfig::precise(4));
        assert_eq!(b.count(0), 0);
        assert_eq!(b.config().precision, Precision::AddressReporting);
    }

    #[test]
    fn interrupt_charges_dominant_window_domain() {
        let mut b = block(ActCounterConfig::legacy(5));
        // Domain 7 issues 3 of the 5 ACTs in the window, domain 2 two.
        for i in 0..3 {
            b.on_act(0, CacheLineAddr(0), DomainId(7), 0, Cycle(i));
        }
        b.on_act(0, CacheLineAddr(0), DomainId(2), 0, Cycle(3));
        let fired = b.on_act(0, CacheLineAddr(0), DomainId(2), 0, Cycle(4));
        assert_eq!(fired, Some(DomainId(7)));
        let ints = b.drain();
        assert_eq!(ints.len(), 1);
        assert_eq!(ints[0].domain, Some(DomainId(7)));
    }

    #[test]
    fn attribution_ties_break_toward_lower_domain_id() {
        let mut b = block(ActCounterConfig::legacy(4));
        b.on_act(0, CacheLineAddr(0), DomainId(9), 0, Cycle(0));
        b.on_act(0, CacheLineAddr(0), DomainId(3), 0, Cycle(1));
        b.on_act(0, CacheLineAddr(0), DomainId(9), 0, Cycle(2));
        let fired = b.on_act(0, CacheLineAddr(0), DomainId(3), 0, Cycle(3));
        assert_eq!(fired, Some(DomainId(3)), "2 vs 2 tie goes to lower id");
    }

    #[test]
    fn diffuse_windows_are_unattributed() {
        let mut b = block(ActCounterConfig::legacy(8));
        // A streamer touching eight distinct rows overflows the shared
        // channel total without re-activating any one of them: nobody
        // is hammering, so the interrupt fires but charges nobody.
        for i in 0..7 {
            b.on_act(0, CacheLineAddr(i), DomainId(4), i, Cycle(i));
        }
        let fired = b.on_act(0, CacheLineAddr(7), DomainId(4), 7, Cycle(7));
        assert_eq!(fired, None, "diffuse window must not charge anyone");
        let ints = b.drain();
        assert_eq!(ints.len(), 1, "the interrupt itself still fires");
        assert_eq!(ints[0].domain, None);
    }

    #[test]
    fn row_concentration_beats_raw_volume() {
        let mut b = block(ActCounterConfig::legacy(8));
        // Domain 9 issues five diffuse ACTs (more volume); domain 2
        // re-activates one row three times (the hammer signature).
        for i in 0..5 {
            b.on_act(0, CacheLineAddr(i), DomainId(9), 100 + i, Cycle(i));
        }
        b.on_act(0, CacheLineAddr(50), DomainId(2), 7, Cycle(5));
        b.on_act(0, CacheLineAddr(50), DomainId(2), 7, Cycle(6));
        let fired = b.on_act(0, CacheLineAddr(50), DomainId(2), 7, Cycle(7));
        assert_eq!(fired, Some(DomainId(2)), "concentration outranks volume");
    }

    #[test]
    fn attribution_window_resets_at_each_overflow() {
        let mut b = block(ActCounterConfig::legacy(2));
        // First window: all domain 5.
        b.on_act(0, CacheLineAddr(0), DomainId(5), 0, Cycle(0));
        assert_eq!(
            b.on_act(0, CacheLineAddr(0), DomainId(5), 0, Cycle(1)),
            Some(DomainId(5))
        );
        // Second window: all domain 6 — history from window one must
        // not leak into the new window's attribution.
        b.on_act(0, CacheLineAddr(0), DomainId(6), 0, Cycle(2));
        assert_eq!(
            b.on_act(0, CacheLineAddr(0), DomainId(6), 0, Cycle(3)),
            Some(DomainId(6))
        );
    }
}
