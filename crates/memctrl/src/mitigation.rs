//! Hardware mitigation baselines in the memory controller.
//!
//! The paper positions its software primitives against the
//! state-of-the-art *hardware* trackers (§3): they either fail to
//! protect comprehensively or need ever more SRAM/CAM as MACs shrink.
//! To measure that claim (experiment E6) this module implements the
//! canonical designs at the MC level:
//!
//! - [`McMitigationConfig::Para`] — probabilistic adjacent row
//!   activation (Kim et al., ISCA'14): every ACT refreshes its
//!   neighbors with probability `p`. Stateless, but `p` must grow as
//!   MAC shrinks, costing bandwidth.
//! - [`McMitigationConfig::Graphene`] — Misra-Gries frequent-element
//!   tracking (Park et al., MICRO'20): exact heavy-hitter guarantees,
//!   SRAM grows ~1/MAC.
//! - [`McMitigationConfig::BlockHammer`] — counting-Bloom-filter
//!   blacklisting with ACT throttling (Yağlıkçı et al., HPCA'21):
//!   area-efficient but pays latency under attack and false-positive
//!   throttling under benign pressure.
//! - [`McMitigationConfig::TwiceLite`] — a time-window counter table
//!   in the spirit of TWiCe (Lee et al., ISCA'19) with periodic
//!   pruning.
//! - [`McMitigationConfig::Oracle`] — a white-box upper bound that
//!   reads the device's true hammer pressure; no real hardware can do
//!   this, it bounds what any refresh-centric defense could achieve.
//! - [`McMitigationConfig::BreakHammer`] — per-tenant trigger
//!   accounting (Canpolat et al.): instead of tracking rows, score
//!   each *trust domain* by the mitigation triggers its requests
//!   cause (TRR samples, neighbor refreshes, forced REFs, ACT
//!   interrupts — fed in via [`McMitigation::charge_trigger`]) and
//!   throttle the request quota of suspects. State is O(tenants), not
//!   O(rows) — the scalability argument for attribution.
//!
//! The controller consults [`McMitigation::on_act`] before issuing an
//! ACT (throttling) and [`McMitigation::after_act`] afterwards
//! (neighbor-refresh decisions).

use hammertime_common::{Cycle, DetRng, DomainId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which in-controller mitigation is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum McMitigationConfig {
    /// No mitigation (the vulnerable baseline).
    None,
    /// PARA: refresh neighbors of every ACT with probability `prob`.
    Para {
        /// Per-ACT neighbor refresh probability.
        prob: f64,
        /// Radius to refresh.
        radius: u32,
    },
    /// Graphene-style Misra-Gries tracker.
    Graphene {
        /// Tracker entries per bank.
        table_size: usize,
        /// Estimated-count threshold triggering a neighbor refresh.
        threshold: u64,
        /// Radius to refresh.
        radius: u32,
    },
    /// BlockHammer-style counting-Bloom-filter throttling.
    BlockHammer {
        /// Counters per bank filter.
        cbf_counters: usize,
        /// Hash functions.
        hashes: u32,
        /// Estimated ACT count at which a row is blacklisted.
        threshold: u64,
        /// Delay (cycles) imposed on each blacklisted ACT.
        delay: u64,
        /// Filter epoch (cycles); the filter resets each epoch, like
        /// BlockHammer's dual-filter rotation.
        epoch: u64,
    },
    /// TWiCe-style pruned counter table.
    TwiceLite {
        /// Maximum live entries per bank.
        table_size: usize,
        /// Count threshold triggering a neighbor refresh.
        threshold: u64,
        /// Radius to refresh.
        radius: u32,
        /// Pruning period (cycles): entries below the prune line drop.
        prune_interval: u64,
    },
    /// White-box oracle: refresh neighbors when true pressure exceeds
    /// `fraction` of the MAC. Implemented with controller-visible
    /// per-row counts in this model.
    Oracle {
        /// Fraction of the MAC at which to refresh (e.g. 0.8).
        fraction: f64,
        /// The MAC the oracle protects against.
        mac: u64,
        /// Radius to refresh.
        radius: u32,
    },
    /// BreakHammer-style per-tenant throttling: domains whose requests
    /// cause at least `score_threshold` mitigation triggers become
    /// suspects; a suspect's demand ACTs beyond `quota` per epoch are
    /// delayed. Scores halve each epoch (decay), so a tenant that
    /// stops hammering is rehabilitated.
    BreakHammer {
        /// Trigger count at which a domain becomes a suspect.
        score_threshold: u64,
        /// Demand ACTs a suspect may issue per epoch before throttling.
        quota: u64,
        /// Delay (cycles) imposed on each over-quota suspect ACT.
        delay: u64,
        /// Scoring epoch (cycles): scores halve and quota windows
        /// reopen at each boundary.
        epoch: u64,
    },
}

impl McMitigationConfig {
    /// SRAM/CAM area proxy in bits for a system of `banks` banks with
    /// `rows_per_bank` rows — the scalability axis of experiment E6.
    pub fn sram_bits(&self, banks: u64, rows_per_bank: u32) -> u64 {
        let row_bits = 32 - (rows_per_bank.max(2) - 1).leading_zeros() as u64;
        let count_bits = 16u64;
        match *self {
            McMitigationConfig::None | McMitigationConfig::Para { .. } => 0,
            McMitigationConfig::Graphene { table_size, .. } => {
                banks * table_size as u64 * (row_bits + count_bits)
            }
            McMitigationConfig::BlockHammer { cbf_counters, .. } => {
                // Dual filters, count_bits per counter.
                banks * cbf_counters as u64 * count_bits * 2
            }
            McMitigationConfig::TwiceLite { table_size, .. } => {
                // Valid + row + act count + life count.
                banks * table_size as u64 * (1 + row_bits + 2 * count_bits)
            }
            McMitigationConfig::Oracle { .. } => {
                // A true per-row counter table: the unscalable ideal.
                banks * rows_per_bank as u64 * count_bits
            }
            McMitigationConfig::BreakHammer { .. } => {
                // O(tenants), independent of banks and rows: 64 tracked
                // domains x (16-bit ASID tag + 32-bit score + 16-bit
                // quota window).
                64 * (16 + 32 + 16)
            }
        }
    }
}

/// Decision returned before an ACT issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActAction {
    /// Issue as scheduled.
    Proceed,
    /// Postpone the ACT by this many cycles (throttling).
    Delay(u64),
}

#[derive(Debug, Clone)]
struct CountingBloom {
    counters: Vec<u32>,
    hashes: u32,
    last_reset: Cycle,
}

impl CountingBloom {
    fn new(counters: usize, hashes: u32) -> CountingBloom {
        CountingBloom {
            counters: vec![0; counters.max(1)],
            hashes: hashes.max(1),
            last_reset: Cycle::ZERO,
        }
    }

    fn idx(&self, row: u32, i: u32) -> usize {
        // Mix row and hash index; SplitMix64-style finalizer.
        let mut x = (row as u64) ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        (x % self.counters.len() as u64) as usize
    }

    fn insert(&mut self, row: u32) {
        for i in 0..self.hashes {
            let idx = self.idx(row, i);
            self.counters[idx] = self.counters[idx].saturating_add(1);
        }
    }

    fn estimate(&self, row: u32) -> u64 {
        (0..self.hashes)
            .map(|i| self.counters[self.idx(row, i)])
            .min()
            .unwrap_or(0) as u64
    }

    fn reset(&mut self, now: Cycle) {
        self.counters.fill(0);
        self.last_reset = now;
    }
}

#[derive(Debug, Clone, Default)]
struct CounterTable {
    /// (row, count) pairs, Misra-Gries maintained.
    entries: Vec<(u32, u64)>,
}

impl CounterTable {
    fn observe(&mut self, row: u32, cap: usize) -> u64 {
        if let Some(e) = self.entries.iter_mut().find(|(r, _)| *r == row) {
            e.1 += 1;
            return e.1;
        }
        if self.entries.len() < cap {
            self.entries.push((row, 1));
            return 1;
        }
        for e in self.entries.iter_mut() {
            e.1 -= 1;
        }
        self.entries.retain(|(_, c)| *c > 0);
        0
    }

    fn reset_row(&mut self, row: u32) {
        self.entries.retain(|(r, _)| *r != row);
    }

    fn prune_below(&mut self, line: u64) {
        self.entries.retain(|(_, c)| *c >= line);
    }
}

/// Per-bank mitigation state.
#[derive(Debug, Clone)]
enum BankState {
    Stateless,
    Table(CounterTable),
    Bloom(CountingBloom),
    PerRow(Vec<u64>),
}

/// Per-domain BreakHammer suspect state.
#[derive(Debug, Clone, Copy, Default)]
struct SuspectState {
    /// Accumulated mitigation-trigger score (decays each epoch).
    score: u64,
    /// Demand ACTs issued this epoch while suspect.
    window_reqs: u64,
}

/// The controller-side mitigation engine.
#[derive(Debug, Clone)]
pub struct McMitigation {
    config: McMitigationConfig,
    banks: Vec<BankState>,
    /// BreakHammer suspect scores by domain id (empty for other
    /// configs). BTreeMap for deterministic iteration.
    suspects: BTreeMap<u32, SuspectState>,
    epoch_start: Cycle,
    rng: DetRng,
    last_prune: Cycle,
    /// Total throttle delay imposed (cycles).
    pub throttle_cycles: u64,
    /// Neighbor-refresh operations requested.
    pub neighbor_refreshes: u64,
    /// BreakHammer quota throttle events (over-quota suspect ACTs
    /// delayed).
    pub quota_throttles: u64,
}

impl McMitigation {
    /// Creates the engine for `banks` banks of `rows_per_bank` rows.
    pub fn new(
        config: McMitigationConfig,
        banks: usize,
        rows_per_bank: u32,
        rng: DetRng,
    ) -> McMitigation {
        let mk = || match config {
            McMitigationConfig::None
            | McMitigationConfig::Para { .. }
            | McMitigationConfig::BreakHammer { .. } => BankState::Stateless,
            McMitigationConfig::Graphene { .. } | McMitigationConfig::TwiceLite { .. } => {
                BankState::Table(CounterTable::default())
            }
            McMitigationConfig::BlockHammer {
                cbf_counters,
                hashes,
                ..
            } => BankState::Bloom(CountingBloom::new(cbf_counters, hashes)),
            McMitigationConfig::Oracle { .. } => BankState::PerRow(vec![0; rows_per_bank as usize]),
        };
        McMitigation {
            config,
            banks: (0..banks).map(|_| mk()).collect(),
            suspects: BTreeMap::new(),
            epoch_start: Cycle::ZERO,
            rng,
            last_prune: Cycle::ZERO,
            throttle_cycles: 0,
            neighbor_refreshes: 0,
            quota_throttles: 0,
        }
    }

    /// Active configuration.
    pub fn config(&self) -> McMitigationConfig {
        self.config
    }

    /// Feeds one mitigation trigger caused by `domain`'s traffic into
    /// the suspect scoring (a BreakHammer no-op for other configs).
    /// The controller calls this for every TRR sample, neighbor
    /// refresh, forced REF, and ACT interrupt it attributes.
    pub fn charge_trigger(&mut self, domain: DomainId, weight: u64) {
        if weight == 0 {
            return;
        }
        if let McMitigationConfig::BreakHammer { .. } = self.config {
            // The host issues defense traffic (neighbor refreshes,
            // probes); throttling it would fight the mitigation itself.
            if domain.is_host() {
                return;
            }
            self.suspects.entry(domain.0).or_default().score += weight;
        }
    }

    /// Current BreakHammer suspect score for `domain` (0 for other
    /// configs or unknown domains).
    pub fn suspect_score(&self, domain: DomainId) -> u64 {
        self.suspects.get(&domain.0).map_or(0, |s| s.score)
    }

    /// Removes and returns `domain`'s suspect score (tenant detach):
    /// suspicion must travel with the tenant, not linger on the
    /// machine's domain slot.
    pub fn take_suspect(&mut self, domain: DomainId) -> u64 {
        self.suspects.remove(&domain.0).map_or(0, |s| s.score)
    }

    /// Seeds `domain`'s suspect score (tenant admit after migration).
    pub fn seed_suspect(&mut self, domain: DomainId, score: u64) {
        if score == 0 {
            return;
        }
        if let McMitigationConfig::BreakHammer { .. } = self.config {
            self.suspects.entry(domain.0).or_default().score += score;
        }
    }

    /// Consulted before an ACT issues: may demand throttling.
    pub fn on_act(
        &mut self,
        flat_bank: usize,
        row: u32,
        domain: DomainId,
        now: Cycle,
    ) -> ActAction {
        match self.config {
            McMitigationConfig::BlockHammer {
                threshold,
                delay,
                epoch,
                ..
            } => {
                let BankState::Bloom(bloom) = &mut self.banks[flat_bank] else {
                    unreachable!("BlockHammer uses bloom state");
                };
                if epoch > 0 && now.delta(bloom.last_reset) >= epoch {
                    bloom.reset(now);
                }
                if bloom.estimate(row) >= threshold {
                    self.throttle_cycles += delay;
                    ActAction::Delay(delay)
                } else {
                    ActAction::Proceed
                }
            }
            McMitigationConfig::BreakHammer {
                score_threshold,
                quota,
                delay,
                epoch,
            } => {
                if epoch > 0 && now.delta(self.epoch_start) >= epoch {
                    self.epoch_start = now;
                    // Decay: halve scores, reopen quota windows, drop
                    // rehabilitated domains.
                    self.suspects.retain(|_, s| {
                        s.score /= 2;
                        s.window_reqs = 0;
                        s.score > 0
                    });
                }
                if domain.is_host() {
                    return ActAction::Proceed;
                }
                let Some(s) = self.suspects.get_mut(&domain.0) else {
                    return ActAction::Proceed;
                };
                if s.score >= score_threshold {
                    s.window_reqs += 1;
                    if s.window_reqs > quota {
                        self.throttle_cycles += delay;
                        self.quota_throttles += 1;
                        return ActAction::Delay(delay);
                    }
                }
                ActAction::Proceed
            }
            _ => ActAction::Proceed,
        }
    }

    /// Called after an ACT issues. Returns `Some(radius)` when the
    /// controller must refresh the row's neighbors now.
    pub fn after_act(&mut self, flat_bank: usize, row: u32, now: Cycle) -> Option<u32> {
        match self.config {
            McMitigationConfig::None => None,
            McMitigationConfig::Para { prob, radius } => {
                if self.rng.chance(prob) {
                    self.neighbor_refreshes += 1;
                    Some(radius)
                } else {
                    None
                }
            }
            McMitigationConfig::Graphene {
                table_size,
                threshold,
                radius,
            } => {
                let BankState::Table(table) = &mut self.banks[flat_bank] else {
                    unreachable!("Graphene uses table state");
                };
                let count = table.observe(row, table_size);
                if count >= threshold {
                    table.reset_row(row);
                    self.neighbor_refreshes += 1;
                    Some(radius)
                } else {
                    None
                }
            }
            McMitigationConfig::BlockHammer { .. } => {
                let BankState::Bloom(bloom) = &mut self.banks[flat_bank] else {
                    unreachable!("BlockHammer uses bloom state");
                };
                bloom.insert(row);
                None // BlockHammer throttles; it does not refresh.
            }
            // BreakHammer throttles request quotas; it never refreshes.
            McMitigationConfig::BreakHammer { .. } => None,
            McMitigationConfig::TwiceLite {
                table_size,
                threshold,
                radius,
                prune_interval,
            } => {
                if prune_interval > 0 && now.delta(self.last_prune) >= prune_interval {
                    self.last_prune = now;
                    let line = threshold / 4;
                    for b in &mut self.banks {
                        if let BankState::Table(t) = b {
                            t.prune_below(line);
                        }
                    }
                }
                let BankState::Table(table) = &mut self.banks[flat_bank] else {
                    unreachable!("TwiceLite uses table state");
                };
                let count = table.observe(row, table_size);
                if count >= threshold {
                    table.reset_row(row);
                    self.neighbor_refreshes += 1;
                    Some(radius)
                } else {
                    None
                }
            }
            McMitigationConfig::Oracle {
                fraction,
                mac,
                radius,
            } => {
                let BankState::PerRow(counts) = &mut self.banks[flat_bank] else {
                    unreachable!("Oracle uses per-row state");
                };
                let c = &mut counts[row as usize];
                *c += 1;
                if (*c as f64) >= fraction * mac as f64 {
                    *c = 0;
                    self.neighbor_refreshes += 1;
                    Some(radius)
                } else {
                    None
                }
            }
        }
    }

    /// Notifies the engine that `row`'s neighborhood was refreshed by
    /// other means (REF coverage), letting stateful trackers clear.
    pub fn on_rows_refreshed(&mut self, flat_bank: usize, rows: &[u32]) {
        match &mut self.banks[flat_bank] {
            BankState::Table(t) => {
                for &r in rows {
                    t.reset_row(r);
                }
            }
            BankState::PerRow(counts) => {
                for &r in rows {
                    if let Some(c) = counts.get_mut(r as usize) {
                        *c = 0;
                    }
                }
            }
            BankState::Bloom(_) | BankState::Stateless => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(config: McMitigationConfig) -> McMitigation {
        McMitigation::new(config, 2, 64, DetRng::new(3))
    }

    #[test]
    fn none_never_acts() {
        let mut e = engine(McMitigationConfig::None);
        for i in 0..1000 {
            assert_eq!(e.on_act(0, 5, DomainId(1), Cycle(i)), ActAction::Proceed);
            assert_eq!(e.after_act(0, 5, Cycle(i)), None);
        }
        assert_eq!(e.neighbor_refreshes, 0);
    }

    #[test]
    fn para_refreshes_probabilistically() {
        let mut e = engine(McMitigationConfig::Para {
            prob: 0.3,
            radius: 2,
        });
        let mut hits = 0;
        for i in 0..10_000 {
            if let Some(r) = e.after_act(0, 1, Cycle(i)) {
                assert_eq!(r, 2);
                hits += 1;
            }
        }
        assert!((2_500..3_500).contains(&hits), "PARA rate off: {hits}");
        assert_eq!(e.neighbor_refreshes, hits);
    }

    #[test]
    fn graphene_fires_at_threshold_and_resets() {
        let mut e = engine(McMitigationConfig::Graphene {
            table_size: 4,
            threshold: 10,
            radius: 1,
        });
        let mut fired_at = Vec::new();
        for i in 0..30 {
            if e.after_act(0, 7, Cycle(i)).is_some() {
                fired_at.push(i);
            }
        }
        assert_eq!(fired_at, vec![9, 19, 29], "fires every `threshold` ACTs");
    }

    #[test]
    fn graphene_heavy_hitter_guarantee_under_noise() {
        // Misra-Gries with k entries never misses a row whose count
        // exceeds total/(k+1); hammer one row 2x as often as noise rows.
        let mut e = engine(McMitigationConfig::Graphene {
            table_size: 8,
            threshold: 50,
            radius: 1,
        });
        let mut fired = false;
        let mut noise = 0u32;
        for i in 0..2_000u64 {
            if e.after_act(0, 42, Cycle(i)).is_some() {
                fired = true;
            }
            // Rotating noise across 64 rows.
            noise = (noise + 1) % 64;
            e.after_act(0, 100 + noise, Cycle(i));
        }
        assert!(fired, "heavy hitter must be caught despite noise");
    }

    #[test]
    fn blockhammer_throttles_hot_rows_only() {
        let mut e = engine(McMitigationConfig::BlockHammer {
            cbf_counters: 1024,
            hashes: 3,
            threshold: 20,
            delay: 100,
            epoch: 1_000_000,
        });
        // Cold row: never throttled.
        for i in 0..10 {
            assert_eq!(e.on_act(0, 3, DomainId(1), Cycle(i)), ActAction::Proceed);
            e.after_act(0, 3, Cycle(i));
        }
        // Hot row: throttled once the estimate crosses the threshold.
        let mut throttled = false;
        for i in 0..50 {
            if let ActAction::Delay(d) = e.on_act(0, 9, DomainId(1), Cycle(100 + i)) {
                assert_eq!(d, 100);
                throttled = true;
            }
            e.after_act(0, 9, Cycle(100 + i));
        }
        assert!(throttled);
        assert!(e.throttle_cycles >= 100);
        // The cold row may suffer false positives only via hash
        // collisions; with 1024 counters and 60 inserts it must not.
        assert_eq!(
            e.on_act(0, 500, DomainId(1), Cycle(999)),
            ActAction::Proceed
        );
    }

    #[test]
    fn blockhammer_epoch_reset_unblacklists() {
        let mut e = engine(McMitigationConfig::BlockHammer {
            cbf_counters: 256,
            hashes: 2,
            threshold: 5,
            delay: 50,
            epoch: 1_000,
        });
        for i in 0..10 {
            e.on_act(0, 4, DomainId(1), Cycle(i));
            e.after_act(0, 4, Cycle(i));
        }
        assert!(matches!(
            e.on_act(0, 4, DomainId(1), Cycle(20)),
            ActAction::Delay(_)
        ));
        // After the epoch rolls, the filter clears.
        assert_eq!(
            e.on_act(0, 4, DomainId(1), Cycle(2_000)),
            ActAction::Proceed
        );
    }

    #[test]
    fn twice_prunes_cold_entries() {
        let mut e = engine(McMitigationConfig::TwiceLite {
            table_size: 4,
            threshold: 40,
            radius: 1,
            prune_interval: 100,
        });
        // Fill the table with 4 cold rows (1 ACT each).
        for r in 0..4 {
            e.after_act(0, r, Cycle(0));
        }
        // Advance past the prune interval with a hot row; cold entries
        // (count 1 < threshold/4 = 10) are dropped, making room.
        for i in 0..60 {
            e.after_act(0, 50, Cycle(101 + i));
        }
        // The hot row reaches the threshold despite the once-full table.
        let mut fired = false;
        for i in 0..60 {
            if e.after_act(0, 50, Cycle(200 + i)).is_some() {
                fired = true;
            }
        }
        assert!(fired);
    }

    #[test]
    fn oracle_fires_at_fraction_of_mac() {
        let mut e = engine(McMitigationConfig::Oracle {
            fraction: 0.5,
            mac: 100,
            radius: 2,
        });
        let mut fired_at = None;
        for i in 0..100 {
            if e.after_act(1, 8, Cycle(i)).is_some() {
                fired_at = Some(i);
                break;
            }
        }
        assert_eq!(fired_at, Some(49), "fires at 50 ACTs (0.5 x 100)");
    }

    #[test]
    fn external_refresh_resets_trackers() {
        let mut e = engine(McMitigationConfig::Graphene {
            table_size: 4,
            threshold: 10,
            radius: 1,
        });
        for i in 0..8 {
            e.after_act(0, 7, Cycle(i));
        }
        e.on_rows_refreshed(0, &[7]);
        // Counter restarted: 9 more ACTs don't fire, the 10th does.
        let mut fires = 0;
        for i in 0..10 {
            if e.after_act(0, 7, Cycle(100 + i)).is_some() {
                fires += 1;
            }
        }
        assert_eq!(fires, 1);
    }

    #[test]
    fn sram_area_ordering_matches_paper_claims() {
        let banks = 32;
        let rows = 65_536;
        let para = McMitigationConfig::Para {
            prob: 0.001,
            radius: 2,
        }
        .sram_bits(banks, rows);
        let graphene = McMitigationConfig::Graphene {
            table_size: 128,
            threshold: 1000,
            radius: 2,
        }
        .sram_bits(banks, rows);
        let oracle = McMitigationConfig::Oracle {
            fraction: 0.8,
            mac: 1000,
            radius: 2,
        }
        .sram_bits(banks, rows);
        assert_eq!(para, 0);
        assert!(graphene > 0);
        assert!(oracle > graphene, "per-row counters dwarf trackers");
        let breakhammer = McMitigationConfig::BreakHammer {
            score_threshold: 4,
            quota: 64,
            delay: 500,
            epoch: 10_000,
        }
        .sram_bits(banks, rows);
        assert!(breakhammer > 0);
        assert!(
            breakhammer < graphene,
            "per-tenant state must undercut per-row trackers"
        );
        assert_eq!(
            breakhammer,
            McMitigationConfig::BreakHammer {
                score_threshold: 4,
                quota: 64,
                delay: 500,
                epoch: 10_000,
            }
            .sram_bits(banks * 8, rows * 4),
            "BreakHammer area is independent of geometry"
        );
    }

    fn breakhammer() -> McMitigation {
        engine(McMitigationConfig::BreakHammer {
            score_threshold: 4,
            quota: 10,
            delay: 200,
            epoch: 100_000,
        })
    }

    #[test]
    fn breakhammer_throttles_suspects_beyond_quota() {
        let mut e = breakhammer();
        let suspect = DomainId(3);
        let innocent = DomainId(4);
        for _ in 0..4 {
            e.charge_trigger(suspect, 1);
        }
        assert_eq!(e.suspect_score(suspect), 4);
        // First `quota` ACTs pass, then every ACT is delayed.
        let mut delays = 0;
        for i in 0..30u64 {
            if let ActAction::Delay(d) = e.on_act(0, 5, suspect, Cycle(i)) {
                assert_eq!(d, 200);
                delays += 1;
            }
        }
        assert_eq!(delays, 20, "10-quota window passes, 20 over-quota delay");
        assert_eq!(e.quota_throttles, 20);
        assert_eq!(e.throttle_cycles, 20 * 200);
        // The innocent co-tenant is never throttled.
        for i in 0..30u64 {
            assert_eq!(e.on_act(0, 5, innocent, Cycle(i)), ActAction::Proceed);
        }
    }

    #[test]
    fn breakhammer_below_score_threshold_never_throttles() {
        let mut e = breakhammer();
        e.charge_trigger(DomainId(3), 3); // threshold is 4
        for i in 0..1_000u64 {
            assert_eq!(e.on_act(0, 5, DomainId(3), Cycle(i)), ActAction::Proceed);
        }
        assert_eq!(e.quota_throttles, 0);
    }

    #[test]
    fn breakhammer_epoch_decay_rehabilitates() {
        let mut e = breakhammer();
        e.charge_trigger(DomainId(3), 5);
        // Burn the quota so the domain is actively throttled.
        for i in 0..20u64 {
            e.on_act(0, 5, DomainId(3), Cycle(i));
        }
        assert!(e.quota_throttles > 0);
        // One epoch: score 5 -> 2, below threshold; window reopens.
        assert_eq!(
            e.on_act(0, 5, DomainId(3), Cycle(100_001)),
            ActAction::Proceed
        );
        assert_eq!(e.suspect_score(DomainId(3)), 2);
        // Two more epochs: score decays to zero and the entry drops.
        e.on_act(0, 5, DomainId(3), Cycle(200_002));
        e.on_act(0, 5, DomainId(3), Cycle(300_003));
        assert_eq!(e.suspect_score(DomainId(3)), 0);
    }

    #[test]
    fn breakhammer_host_is_exempt() {
        let mut e = breakhammer();
        e.charge_trigger(DomainId::HOST, 100);
        assert_eq!(e.suspect_score(DomainId::HOST), 0, "host never scored");
        for i in 0..100u64 {
            assert_eq!(e.on_act(0, 5, DomainId::HOST, Cycle(i)), ActAction::Proceed);
        }
    }

    #[test]
    fn suspect_score_travels_on_take_and_seed() {
        let mut src = breakhammer();
        src.charge_trigger(DomainId(9), 7);
        let score = src.take_suspect(DomainId(9));
        assert_eq!(score, 7);
        assert_eq!(
            src.suspect_score(DomainId(9)),
            0,
            "no stale-domain attribution on the source"
        );
        let mut dst = breakhammer();
        dst.seed_suspect(DomainId(9), score);
        assert_eq!(dst.suspect_score(DomainId(9)), 7);
        // Non-BreakHammer engines drop seeds silently.
        let mut none = engine(McMitigationConfig::None);
        none.seed_suspect(DomainId(9), score);
        assert_eq!(none.suspect_score(DomainId(9)), 0);
    }

    #[test]
    fn charging_other_configs_is_inert() {
        let mut e = engine(McMitigationConfig::BlockHammer {
            cbf_counters: 256,
            hashes: 2,
            threshold: 5,
            delay: 50,
            epoch: 1_000,
        });
        e.charge_trigger(DomainId(2), 50);
        assert_eq!(e.suspect_score(DomainId(2)), 0);
        assert_eq!(e.on_act(0, 5, DomainId(2), Cycle(0)), ActAction::Proceed);
    }
}
