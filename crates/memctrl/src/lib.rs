//! Integrated memory controller model for the `hammertime` workspace.
//!
//! Implements the controller the paper proposes extending (§4):
//! address mapping with subarray-isolated interleaving, FR-FCFS
//! scheduling over the DRAM device model, periodic refresh, ACT
//! counters with precise interrupts, the host-privileged refresh
//! instruction, REF_NEIGHBORS submission, and the hardware mitigation
//! baselines the paper compares against.
//!
//! # Examples
//!
//! ```
//! use hammertime_memctrl::controller::{MemCtrl, MemCtrlConfig};
//! use hammertime_memctrl::request::{MemRequest, RequestKind};
//! use hammertime_dram::DramConfig;
//! use hammertime_common::{CacheLineAddr, Cycle, DomainId, RequestSource};
//!
//! let mut mc = MemCtrl::new(
//!     MemCtrlConfig::baseline(),
//!     DramConfig::test_config(1_000_000),
//!     42,
//! ).unwrap();
//! mc.submit(MemRequest {
//!     id: 1,
//!     line: CacheLineAddr(0),
//!     kind: RequestKind::Read,
//!     source: RequestSource::Core(0),
//!     domain: DomainId(1),
//!     arrival: Cycle::ZERO,
//! }).unwrap();
//! mc.drain();
//! let done = mc.drain_completions();
//! assert_eq!(done.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod act_counter;
pub mod addrmap;
pub mod controller;
pub mod mitigation;
pub mod request;
pub mod stats;
mod wheel;

pub use act_counter::{ActCounterConfig, ActInterrupt, Precision};
pub use addrmap::{AddressMap, MappingScheme};
pub use controller::{MemCtrl, MemCtrlConfig, PagePolicy};
pub use mitigation::{ActAction, McMitigation, McMitigationConfig};
pub use request::{Completion, MemRequest, RequestKind};
pub use stats::McStats;
