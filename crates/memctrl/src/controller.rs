//! The integrated memory controller.
//!
//! [`MemCtrl`] owns the [`DramModule`] and drives it with DDR commands
//! under an FR-FCFS scheduler: row-buffer hits are served before
//! misses, oldest first within a class, overlapped across banks and
//! channels. It also houses everything the paper proposes adding to
//! the MC:
//!
//! - the address map, including subarray-isolated interleaving with
//!   per-domain group ownership enforcement (§4.1);
//! - the ACT counter block with precise interrupts (§4.2);
//! - the host-privileged refresh instruction and REF_NEIGHBORS
//!   submission paths (§4.3);
//! - hardware mitigation baselines consulted around each demand ACT
//!   ([`crate::mitigation`]).
//!
//! Simulated time advances as commands issue; [`MemCtrl::advance_to`]
//! processes queued work up to a target cycle and parks. Each command
//! occupies the channel command bus for one cycle; RD/WR bursts occupy
//! the channel data bus for `tBL`.

use crate::act_counter::{ActCounterBlock, ActCounterConfig, ActInterrupt};
use crate::addrmap::{AddressMap, MappingScheme};
use crate::mitigation::{ActAction, McMitigation, McMitigationConfig};
use crate::request::{Completion, MemRequest, RequestKind};
use crate::stats::McStats;
use crate::wheel::{better, key_of, Candidate, CandidateKind, EventWheel};
use hammertime_check::ShadowChecker;
use hammertime_common::geometry::BankId;
use hammertime_common::{
    CacheLineAddr, Cycle, DetRng, DomainId, DramCoord, Error, FaultClock, FaultKind, FaultPlan,
    Result, TriggerCounts,
};
use hammertime_dram::{BankTiming, DdrCommand, DramConfig, DramModule, DramStats, FlipEvent};
use hammertime_telemetry::{Event, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Open-page: rows stay open after CAS, betting on locality
    /// (production default; what makes bank conflicts — and therefore
    /// flush+conflict hammers — possible).
    Open,
    /// Closed-page: every CAS auto-precharges. Locality is lost, but
    /// each access costs a full row cycle, which *reduces* the
    /// achievable hammer rate — the E11 ablation measures the trade.
    Closed,
}

/// Controller configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemCtrlConfig {
    /// Address-mapping scheme.
    pub mapping: MappingScheme,
    /// Hardware mitigation baseline.
    pub mitigation: McMitigationConfig,
    /// ACT counter block configuration.
    pub act_counters: ActCounterConfig,
    /// Whether the periodic REF scheduler runs (disable only for
    /// refresh-starvation failure injection).
    pub refresh_enabled: bool,
    /// Enforce that requests touch only subarray groups owned by their
    /// domain (requires [`MappingScheme::SubarrayIsolated`]).
    pub enforce_domain_groups: bool,
    /// Maximum queued requests before `submit` reports exhaustion.
    pub queue_capacity: usize,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Fault-injection plan for controller-side faults (dropped or
    /// delayed ACT-interrupts, stuck ACT_COUNT, refresh-instruction
    /// NACK, transient remap corruption). `None` — the default — is
    /// byte-identical to a faultless controller.
    pub faults: Option<FaultPlan>,
    /// Cycle-stamped event tracer for controller-level events (refresh
    /// instructions, injected faults, scheduler wedges) and scheduler
    /// metrics. `None` — the default — adds no work to the scheduling
    /// path. Serializes as `null` either way.
    pub tracer: Option<Tracer>,
    /// Opt-in protocol-invariant shadow checker: every successfully
    /// issued DDR command is replayed through the same invariant
    /// catalog `trace lint` enforces offline, catching scheduler bugs
    /// at the moment they reach the bus. `None` — the default — costs
    /// one branch per issued command. Serializes as `null` either way.
    pub shadow: Option<ShadowChecker>,
}

impl MemCtrlConfig {
    /// A production-flavored default: interleaved mapping, no
    /// mitigation, legacy counters, refresh on.
    pub fn baseline() -> MemCtrlConfig {
        MemCtrlConfig {
            mapping: MappingScheme::CacheLineInterleave,
            mitigation: McMitigationConfig::None,
            act_counters: ActCounterConfig::legacy(0),
            refresh_enabled: true,
            enforce_domain_groups: false,
            queue_capacity: 4096,
            page_policy: PagePolicy::Open,
            faults: None,
            tracer: None,
            shadow: None,
        }
    }
}

/// Per-request progress for multi-command kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Nothing issued yet (or still opening the row).
    Init,
    /// Refresh instruction: the ACT has been performed.
    Acted,
}

#[derive(Debug, Clone)]
struct Pending {
    req: MemRequest,
    seq: u64,
    coord: DramCoord,
    bank: BankId,
    phase: Phase,
    /// Set once the request needed an ACT/PRE (so completion can report
    /// whether it was a pure row-buffer hit).
    had_miss: bool,
    /// Internal maintenance spawned by a mitigation (not reported as a
    /// completion to the submitter).
    internal: bool,
}

/// The integrated memory controller.
#[derive(Debug, Clone)]
pub struct MemCtrl {
    config: MemCtrlConfig,
    map: AddressMap,
    dram: DramModule,
    now: Cycle,
    queue: Vec<Pending>,
    completions: Vec<Completion>,
    counters: ActCounterBlock,
    mitigation: McMitigation,
    group_owner: Vec<Option<DomainId>>,
    /// Per-rank next scheduled REF.
    next_ref: Vec<Cycle>,
    /// Per-channel command-bus free time.
    cmd_bus_free: Vec<Cycle>,
    /// Per-channel data-bus free time.
    data_bus_free: Vec<Cycle>,
    /// Throttled (bank, row) pairs: no ACT before the stored cycle.
    throttle: HashMap<(usize, u32), Cycle>,
    /// Per-bank ready queues: indices into `queue`, keyed by flat bank.
    /// The fast scheduler prices each bank's requests against a single
    /// timing snapshot instead of probing the device per request.
    by_bank: Vec<Vec<usize>>,
    /// Memoized winner of the last scheduling query. Between mutations
    /// (submit/issue/complete/throttle) the candidate set is a pure
    /// function of controller state, and the clock only ever parks
    /// strictly before the cached winner's issue time — so the result
    /// stays exact and repeated `step` calls across an idle stretch
    /// cost O(1) without touching the wheel.
    sched_cache: Option<Option<Candidate>>,
    /// The calendar scheduler: per-bank candidate slots posted into a
    /// time-ordered heap. Mutations mark only the banks they perturb
    /// (see the dirty rules at each issue/complete site); a scheduling
    /// query reprices dirty banks and peeks the earliest live entry
    /// instead of rescanning every bank.
    wheel: EventWheel,
    /// Queue index of a `Refresh { auto_pre: false }` whose ACT has
    /// issued; it completes on the next step, before any other command.
    acted_refresh: Option<usize>,
    /// Controller-side fault clock ([`MemCtrlConfig::faults`]).
    faults: Option<FaultClock>,
    /// ACT-interrupts held back by the delayed-delivery fault, released
    /// by [`MemCtrl::drain_interrupts`] once their (delayed) time has
    /// passed.
    delayed_interrupts: Vec<ActInterrupt>,
    /// Per-channel count of remaining ACTs the stuck-ACT_COUNT fault
    /// swallows.
    stuck_acts: Vec<u64>,
    /// Per-domain mitigation-trigger ledger: every trigger (TRR
    /// sample, throttle delay, neighbor refresh, forced REF, ACT
    /// interrupt) is charged to the domain whose traffic caused it.
    /// BTreeMap for deterministic iteration; travels with tenants via
    /// [`MemCtrl::export_triggers`] / [`MemCtrl::import_triggers`].
    triggers: BTreeMap<u32, TriggerCounts>,
    /// Per-channel domain of the most recent demand ACT: forced REFs
    /// have no request context of their own, so the starvation that
    /// forced them is attributed to the channel's latest activator.
    last_act_domain: Vec<Option<DomainId>>,
    /// Set when the scheduler computed a command the device rejected —
    /// the controller wedges (no further commands issue) instead of
    /// panicking, and submitters see the error.
    wedged: Option<Error>,
    /// Demand misses completed since the last row-buffer hit; feeds the
    /// `mc.row_hit_distance` histogram. Only maintained when tracing.
    completions_since_hit: u64,
    stats: McStats,
    seq: u64,
}

/// Component salt separating the controller's fault-decision streams
/// from the DRAM module's under one [`FaultPlan`].
const MC_FAULT_SALT: u64 = 0xAC7C;

/// How many tREFI a rank's REF may be postponed past its due cycle
/// before the scheduler stops feeding that rank request commands and
/// forces the refresh through. Seven postponements plus the bank-drain
/// tail (tRAS + tRP ≪ tREFI) keeps every REF-to-REF gap inside the
/// 9×tREFI starvation bound the protocol checker enforces, while still
/// letting FR-FCFS exploit most of the JEDEC pull-in window.
const FORCED_REF_LEAD: u64 = 7;

impl MemCtrl {
    /// Builds a controller over a fresh DRAM module.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the address map or device.
    pub fn new(config: MemCtrlConfig, dram_config: DramConfig, seed: u64) -> Result<MemCtrl> {
        let map = AddressMap::new(config.mapping, dram_config.geometry)?;
        if config.enforce_domain_groups && config.mapping != MappingScheme::SubarrayIsolated {
            return Err(Error::Config(
                "domain-group enforcement requires subarray-isolated interleaving".into(),
            ));
        }
        let g = dram_config.geometry;
        let t = dram_config.timing;
        if let Some(shadow) = &config.shadow {
            // Mirror the DeviceReset record a tracer would see, arming
            // the shadow engine with this device's geometry and timing.
            shadow.on_device_reset(&dram_config);
        }
        let dram = DramModule::new(dram_config)?;
        let mut rng = DetRng::new(seed ^ 0xC0FF_EE00);
        let counters = ActCounterBlock::new(config.act_counters, g.channels, rng.fork(1));
        let mitigation = McMitigation::new(
            config.mitigation,
            g.total_banks() as usize,
            g.rows_per_bank(),
            rng.fork(2),
        );
        let ranks = (g.channels * g.ranks) as usize;
        let next_ref = (0..ranks)
            .map(|r| {
                if config.refresh_enabled {
                    // Stagger ranks across the interval.
                    Cycle(t.t_refi * (r as u64 + 1) / ranks as u64 + 1)
                } else {
                    Cycle::MAX
                }
            })
            .collect();
        Ok(MemCtrl {
            group_owner: vec![None; map.subarray_groups() as usize],
            map,
            dram,
            now: Cycle::ZERO,
            queue: Vec::new(),
            completions: Vec::new(),
            counters,
            mitigation,
            next_ref,
            cmd_bus_free: vec![Cycle::ZERO; g.channels as usize],
            data_bus_free: vec![Cycle::ZERO; g.channels as usize],
            throttle: HashMap::new(),
            by_bank: vec![Vec::new(); g.total_banks() as usize],
            sched_cache: None,
            wheel: EventWheel::new(g.total_banks() as usize),
            acted_refresh: None,
            faults: config.faults.map(|p| FaultClock::new(p, MC_FAULT_SALT)),
            delayed_interrupts: Vec::new(),
            stuck_acts: vec![0; g.channels as usize],
            triggers: BTreeMap::new(),
            last_act_domain: vec![None; g.channels as usize],
            wedged: None,
            completions_since_hit: 0,
            stats: McStats::default(),
            seq: 0,
            config,
        })
    }

    /// Current controller time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The address map in force.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// Reconfigures the address-mapping scheme in place (host
    /// BIOS-style switch). Bumps the map's generation so downstream
    /// translation caches invalidate, and reprices the whole calendar:
    /// queued coordinates would be stale under the new map, so the
    /// queue must be empty.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if requests are still queued or the geometry
    /// cannot support `scheme`; the map is unchanged on error.
    pub fn set_mapping(&mut self, scheme: MappingScheme) -> Result<()> {
        if !self.queue.is_empty() {
            return Err(Error::Config(format!(
                "cannot reconfigure the address map with {} queued requests",
                self.queue.len()
            )));
        }
        self.map.reconfigure(scheme)?;
        self.group_owner = vec![None; self.map.subarray_groups() as usize];
        self.sched_cache = None;
        self.wheel.mark_all();
        Ok(())
    }

    /// Controller statistics, with the live fault-injection tally and
    /// the mitigation engine's quota-throttle count folded in.
    pub fn stats(&self) -> McStats {
        let mut s = self.stats;
        s.fault_injections = self.fault_injections();
        s.quota_throttles = self.mitigation.quota_throttles;
        s
    }

    /// The per-domain mitigation-trigger ledger (domain id →
    /// accumulated trigger counts).
    pub fn trigger_ledger(&self) -> &BTreeMap<u32, TriggerCounts> {
        &self.triggers
    }

    /// Trigger counts charged to `domain` so far (zero if none).
    pub fn trigger_counts(&self, domain: DomainId) -> TriggerCounts {
        self.triggers.get(&domain.0).copied().unwrap_or_default()
    }

    /// Removes and returns `domain`'s trigger counts (tenant detach).
    /// Also clears the domain's suspect score and any stale
    /// last-activator attribution so triggers cannot stick to the
    /// source machine's domain slot after the tenant leaves.
    pub fn export_triggers(&mut self, domain: DomainId) -> TriggerCounts {
        self.mitigation.take_suspect(domain);
        for slot in &mut self.last_act_domain {
            if *slot == Some(domain) {
                *slot = None;
            }
        }
        self.triggers.remove(&domain.0).unwrap_or_default()
    }

    /// Merges migrated trigger counts into `domain`'s ledger entry
    /// (tenant admit) and re-seeds the mitigation engine's suspect
    /// score from their total, so suspicion follows the tenant.
    pub fn import_triggers(&mut self, domain: DomainId, counts: TriggerCounts) {
        if counts == TriggerCounts::default() {
            return;
        }
        self.triggers.entry(domain.0).or_default().merge(&counts);
        self.mitigation.seed_suspect(domain, counts.total());
    }

    /// Charges `weight` triggers of the ledger field selected by
    /// `slot` to `domain`, and feeds the mitigation engine's suspect
    /// scoring (BreakHammer).
    fn charge(&mut self, domain: DomainId, weight: u64, slot: fn(&mut TriggerCounts) -> &mut u64) {
        if weight == 0 {
            return;
        }
        *slot(self.triggers.entry(domain.0).or_default()) += weight;
        self.mitigation.charge_trigger(domain, weight);
    }

    /// Total controller-side faults injected so far.
    pub fn fault_injections(&self) -> u64 {
        self.faults.as_ref().map_or(0, FaultClock::total_injected)
    }

    /// The error that wedged the scheduler, if any. A wedged controller
    /// issues no further commands; submissions return the error.
    pub fn fault_state(&self) -> Option<&Error> {
        self.wedged.as_ref()
    }

    /// Wedges the scheduler with a fault: no further commands issue and
    /// every subsequent submission returns [`Error::Fault`]. Called
    /// internally when the device rejects a scheduled command (instead
    /// of panicking); public so hosts and tests can model an external
    /// controller failure.
    pub fn record_fault(&mut self, msg: String) {
        self.sched_cache = None;
        self.wheel.mark_all();
        if self.wedged.is_none() {
            if let Some(tracer) = &self.config.tracer {
                tracer.emit(
                    self.now,
                    Event::SchedulerWedge {
                        message: msg.clone(),
                    },
                );
            }
            self.wedged = Some(Error::Fault(msg));
        }
    }

    /// Device statistics.
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// White-box access to the device (oracle defenses, tests).
    pub fn dram(&self) -> &DramModule {
        &self.dram
    }

    /// Mutable white-box access to the device's functional data path.
    pub fn dram_mut(&mut self) -> &mut DramModule {
        // The caller may mutate device state behind the scheduler's
        // back; drop the memoized winner and reprice every bank.
        self.sched_cache = None;
        self.wheel.mark_all();
        &mut self.dram
    }

    /// Queue depth (pending requests, including internal maintenance).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Drains disturbance flip events recorded by the device.
    pub fn drain_flips(&mut self) -> Vec<FlipEvent> {
        self.dram.drain_flips()
    }

    /// Drains finished requests.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Drains pending ACT-counter interrupts (host OS handler input).
    ///
    /// Fault hooks: each freshly raised interrupt may be dropped
    /// outright or delivered late; delayed interrupts are held here and
    /// released (timestamped with their delayed delivery time) once the
    /// controller clock passes it.
    pub fn drain_interrupts(&mut self) -> Vec<ActInterrupt> {
        let raised = self.counters.drain();
        let Some(fc) = &mut self.faults else {
            return raised;
        };
        let mut out = Vec::new();
        for intr in raised {
            if fc.fire(FaultKind::DroppedActInterrupt) {
                if let Some(tracer) = &self.config.tracer {
                    tracer.emit(
                        intr.time,
                        Event::FaultInjected {
                            kind: FaultKind::DroppedActInterrupt.name().into(),
                        },
                    );
                }
                continue;
            }
            if fc.fire(FaultKind::DelayedActInterrupt) {
                if let Some(tracer) = &self.config.tracer {
                    tracer.emit(
                        intr.time,
                        Event::FaultInjected {
                            kind: FaultKind::DelayedActInterrupt.name().into(),
                        },
                    );
                }
                self.delayed_interrupts.push(ActInterrupt {
                    time: intr.time + fc.plan().interrupt_delay,
                    ..intr
                });
                continue;
            }
            out.push(intr);
        }
        if !self.delayed_interrupts.is_empty() {
            let now = self.now;
            let mut i = 0;
            while i < self.delayed_interrupts.len() {
                if self.delayed_interrupts[i].time <= now {
                    out.push(self.delayed_interrupts.remove(i));
                } else {
                    i += 1;
                }
            }
        }
        out
    }

    /// Reprograms the ACT counter block (host MSR write).
    pub fn configure_act_counters(&mut self, config: ActCounterConfig) {
        self.counters.reconfigure(config);
    }

    /// Mitigation bookkeeping (throttle totals etc.).
    pub fn mitigation(&self) -> &McMitigation {
        &self.mitigation
    }

    /// Assigns subarray `group` to `domain` (host ↔ MC coordination of
    /// the paper's ASID tags, §4.1).
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if the group is out of range.
    pub fn assign_group(&mut self, group: u32, domain: Option<DomainId>) -> Result<()> {
        let slot = self
            .group_owner
            .get_mut(group as usize)
            .ok_or_else(|| Error::Config(format!("subarray group {group} out of range")))?;
        *slot = domain;
        Ok(())
    }

    /// The domain owning subarray `group`, if assigned.
    pub fn group_owner(&self, group: u32) -> Option<DomainId> {
        self.group_owner.get(group as usize).copied().flatten()
    }

    /// Translates a cache line to its bank and in-bank row.
    ///
    /// # Errors
    ///
    /// [`Error::Translation`] for out-of-range lines.
    pub fn locate(&self, line: CacheLineAddr) -> Result<(BankId, u32)> {
        let coord = self.map.to_coord(line)?;
        Ok((BankId::of(&coord), coord.row))
    }

    /// Submits a demand or maintenance request.
    ///
    /// # Errors
    ///
    /// - [`Error::Exhausted`] when the queue is full.
    /// - [`Error::Privilege`] when a non-host domain submits a
    ///   maintenance request, or touches a subarray group owned by a
    ///   different domain under enforcement.
    /// - [`Error::Translation`] for unmapped lines.
    /// - [`Error::Fault`] when the controller is wedged
    ///   ([`MemCtrl::fault_state`]) or the refresh-NACK fault fires on
    ///   a `refresh`-instruction submission.
    pub fn submit(&mut self, req: MemRequest) -> Result<()> {
        if let Some(e) = &self.wedged {
            return Err(e.clone());
        }
        if self.queue.len() >= self.config.queue_capacity {
            return Err(Error::Exhausted(format!(
                "request queue full ({} entries)",
                self.config.queue_capacity
            )));
        }
        if req.kind.is_maintenance() && !req.domain.is_host() {
            return Err(Error::Privilege(format!(
                "{} attempted host-privileged maintenance",
                req.domain
            )));
        }
        // Fault hook: the refresh instruction is NACKed — the submitter
        // sees a typed fault and must cope (retry, fall back, or report
        // a missed mitigation).
        if matches!(req.kind, RequestKind::Refresh { .. }) {
            let nacked = self
                .faults
                .as_mut()
                .is_some_and(|fc| fc.fire(FaultKind::RefreshNack));
            if let Some(tracer) = &self.config.tracer {
                tracer.emit(
                    self.now,
                    Event::RefreshInstr {
                        line: req.line.0,
                        nacked,
                    },
                );
                if nacked {
                    tracer.emit(
                        self.now,
                        Event::FaultInjected {
                            kind: FaultKind::RefreshNack.name().into(),
                        },
                    );
                }
            }
            if nacked {
                return Err(Error::Fault(format!(
                    "refresh instruction for {} NACKed by the memory controller",
                    req.line
                )));
            }
        }
        let mut coord = self.map.to_coord(req.line)?;
        // Fault hook: a transient remap-table disturbance sends this
        // one request to a bit-flipped (but in-range) row; the table
        // self-corrects afterwards.
        if self
            .faults
            .as_mut()
            .is_some_and(|fc| fc.fire(FaultKind::RemapCorruption))
            && self.map.geometry().rows_per_bank() > 1
        {
            coord.row ^= 1;
            if let Some(tracer) = &self.config.tracer {
                tracer.emit(
                    self.now,
                    Event::FaultInjected {
                        kind: FaultKind::RemapCorruption.name().into(),
                    },
                );
            }
        }
        if self.config.enforce_domain_groups && !req.domain.is_host() {
            let group = self.map.group_of_frame(req.line.page_frame());
            if self.group_owner(group) != Some(req.domain) {
                self.stats.domain_violations += 1;
                return Err(Error::Privilege(format!(
                    "{} touched subarray group {group} it does not own",
                    req.domain
                )));
            }
        }
        self.push_pending(req, coord, false);
        Ok(())
    }

    fn push_pending(&mut self, req: MemRequest, coord: DramCoord, internal: bool) {
        let seq = self.seq;
        self.seq += 1;
        let bank = BankId::of(&coord);
        self.sched_cache = None;
        let flat = bank.flat(self.map.geometry());
        self.wheel.mark_bank(flat);
        self.by_bank[flat].push(self.queue.len());
        self.queue.push(Pending {
            bank,
            req,
            seq,
            coord,
            phase: Phase::Init,
            had_miss: false,
            internal,
        });
    }

    /// Host-privileged refresh instruction (§4.3): refresh the row
    /// containing `line`, optionally auto-precharging. Queued with
    /// maintenance priority; completes like any request.
    ///
    /// # Errors
    ///
    /// See [`MemCtrl::submit`].
    pub fn refresh_row(&mut self, id: u64, line: CacheLineAddr, auto_pre: bool) -> Result<()> {
        self.submit(MemRequest {
            id,
            line,
            kind: RequestKind::Refresh { auto_pre },
            source: hammertime_common::RequestSource::Core(0),
            domain: DomainId::HOST,
            arrival: self.now,
        })
    }

    /// Submits a REF_NEIGHBORS maintenance operation around `line`.
    ///
    /// # Errors
    ///
    /// See [`MemCtrl::submit`].
    pub fn ref_neighbors(&mut self, id: u64, line: CacheLineAddr, radius: u32) -> Result<()> {
        self.submit(MemRequest {
            id,
            line,
            kind: RequestKind::RefNeighbors { radius },
            source: hammertime_common::RequestSource::Core(0),
            domain: DomainId::HOST,
            arrival: self.now,
        })
    }

    /// Functional data write of one cache line.
    pub fn write_data(&mut self, line: CacheLineAddr, data: &[u8]) -> Result<()> {
        let coord = self.map.to_coord(line)?;
        self.dram
            .write_line(&BankId::of(&coord), coord.row, coord.col, data);
        Ok(())
    }

    /// Functional data read of one cache line; the flag reports
    /// software-visible corruption (after ECC, if configured).
    pub fn read_data(&self, line: CacheLineAddr) -> Result<(Vec<u8>, bool)> {
        let coord = self.map.to_coord(line)?;
        Ok(self
            .dram
            .read_line(&BankId::of(&coord), coord.row, coord.col))
    }

    /// Functional data read with the full ECC classification of the
    /// underlying damage (E10 ablation).
    pub fn read_data_detailed(
        &self,
        line: CacheLineAddr,
    ) -> Result<(Vec<u8>, hammertime_dram::data::EccOutcome)> {
        let coord = self.map.to_coord(line)?;
        Ok(self
            .dram
            .read_line_detailed(&BankId::of(&coord), coord.row, coord.col))
    }

    /// Advances simulated time to `target`, issuing all commands that
    /// can legally issue before it. Queued work that cannot issue by
    /// `target` stays queued.
    pub fn advance_to(&mut self, target: Cycle) {
        while self.step(target) {}
        if self.now < target {
            self.now = target;
        }
    }

    /// Advances time only as far as needed to drain the request queue,
    /// capped at `target`. Unlike [`MemCtrl::advance_to`], the clock
    /// stops at the last issued command when the queue empties early,
    /// so callers observe precise completion times instead of
    /// quantized ones. If work remains that cannot issue by `target`,
    /// the clock lands exactly on `target`.
    pub fn run_while_busy(&mut self, target: Cycle) -> Cycle {
        while !self.queue.is_empty() {
            if !self.step(target) {
                break;
            }
        }
        if !self.queue.is_empty() && self.now < target {
            self.now = target;
        }
        self.now
    }

    /// Runs until the queue drains completely, then returns the time
    /// of the last command. Refresh continues to be scheduled while
    /// demand work remains.
    pub fn drain(&mut self) -> Cycle {
        while !self.queue.is_empty() {
            if !self.step(Cycle::MAX) {
                break;
            }
        }
        self.now
    }

    /// [`MemCtrl::advance_to`] driven by the reference scheduler
    /// ([`MemCtrl::step_reference`]); differential tests and benches.
    pub fn advance_to_reference(&mut self, target: Cycle) {
        while self.step_reference(target) {}
        if self.now < target {
            self.now = target;
        }
    }

    /// [`MemCtrl::run_while_busy`] driven by the reference scheduler.
    pub fn run_while_busy_reference(&mut self, target: Cycle) -> Cycle {
        while !self.queue.is_empty() {
            if !self.step_reference(target) {
                break;
            }
        }
        if !self.queue.is_empty() && self.now < target {
            self.now = target;
        }
        self.now
    }

    /// [`MemCtrl::drain`] driven by the reference scheduler.
    pub fn drain_reference(&mut self) -> Cycle {
        while !self.queue.is_empty() {
            if !self.step_reference(Cycle::MAX) {
                break;
            }
        }
        self.now
    }

    fn rank_index(&self, channel: u32, rank: u32) -> usize {
        (channel * self.map.geometry().ranks + rank) as usize
    }

    /// Marks every bank of a rank for repricing. Flat bank indices are
    /// rank-contiguous ([`BankId::flat`]), so a rank is one range.
    fn mark_rank(&mut self, channel: u32, rank: u32) {
        let per_rank = self.map.geometry().banks_per_rank() as usize;
        let start = self.rank_index(channel, rank) * per_rank;
        self.wheel.mark_rank_range(start, per_rank);
    }

    /// Calendar-scheduler telemetry: `(events_processed, occupancy,
    /// occupancy_peak)`. Events count calendar entries consumed —
    /// repricings plus stale/invalid pops; occupancy counts posted
    /// entries (including stale ones awaiting lazy deletion). Kept out
    /// of [`McStats`] because the reference scheduler never touches
    /// the wheel and the differential suites compare full stats
    /// structs; hosts flush these into the tracer's metrics registry
    /// at report time.
    pub fn wheel_counters(&self) -> (u64, u64, u64) {
        (
            self.wheel.events_processed,
            self.wheel.occupancy(),
            self.wheel.occupancy_peak,
        )
    }

    /// Computes the next command a pending request needs.
    fn next_cmd(&self, p: &Pending) -> Option<DdrCommand> {
        self.next_cmd_given(p, self.dram.open_row(&p.bank))
    }

    /// [`MemCtrl::next_cmd`] with the bank's open row supplied by the
    /// caller (the fast path reuses one snapshot per bank).
    fn next_cmd_given(&self, p: &Pending, open: Option<u32>) -> Option<DdrCommand> {
        match p.req.kind {
            RequestKind::Read | RequestKind::Write => {
                let is_write = matches!(p.req.kind, RequestKind::Write);
                let auto_pre = self.config.page_policy == PagePolicy::Closed;
                match open {
                    Some(r) if r == p.coord.row => Some(if is_write {
                        DdrCommand::Wr {
                            bank: p.bank,
                            col: p.coord.col,
                            auto_pre,
                        }
                    } else {
                        DdrCommand::Rd {
                            bank: p.bank,
                            col: p.coord.col,
                            auto_pre,
                        }
                    }),
                    Some(_) => Some(DdrCommand::Pre { bank: p.bank }),
                    None => Some(DdrCommand::Act {
                        bank: p.bank,
                        row: p.coord.row,
                    }),
                }
            }
            RequestKind::Refresh { auto_pre } => match p.phase {
                Phase::Init => match open {
                    Some(_) => Some(DdrCommand::Pre { bank: p.bank }),
                    None => Some(DdrCommand::Act {
                        bank: p.bank,
                        row: p.coord.row,
                    }),
                },
                Phase::Acted => {
                    if auto_pre {
                        Some(DdrCommand::Pre { bank: p.bank })
                    } else {
                        None // complete immediately
                    }
                }
            },
            RequestKind::RefNeighbors { radius } => match open {
                Some(_) => Some(DdrCommand::Pre { bank: p.bank }),
                None => Some(DdrCommand::RefNeighbors {
                    bank: p.bank,
                    row: p.coord.row,
                    radius,
                }),
            },
        }
    }

    fn candidate_for(&self, index: usize) -> Option<Candidate> {
        let p = &self.queue[index];
        let cmd = self.next_cmd(p)?;
        let ch = cmd.channel() as usize;
        let at = self
            .dram
            .earliest(&cmd)
            .max(p.req.arrival)
            .max(self.cmd_bus_free[ch])
            .max(self.now);
        self.finish_candidate(index, cmd, at)
    }

    /// [`MemCtrl::candidate_for`] with the device probe replaced by a
    /// per-bank timing snapshot: `bt` carries the earliest legal cycle
    /// of every command class for this request's bank, so pricing a
    /// whole bank's ready queue costs one probe total.
    fn candidate_from_snapshot(&self, index: usize, bt: &BankTiming) -> Option<Candidate> {
        let p = &self.queue[index];
        let cmd = self.next_cmd_given(p, bt.open_row)?;
        let class_at = match cmd {
            DdrCommand::Act { .. } => bt.act,
            DdrCommand::Pre { .. } => bt.pre,
            DdrCommand::Rd { .. } | DdrCommand::Wr { .. } => bt.rdwr,
            DdrCommand::RefNeighbors { .. } => bt.act_local,
            DdrCommand::PreAll { .. } | DdrCommand::Ref { .. } => {
                unreachable!("requests never need rank-scope commands")
            }
        };
        let ch = cmd.channel() as usize;
        let at = class_at
            .max(p.req.arrival)
            .max(self.cmd_bus_free[ch])
            .max(self.now);
        self.finish_candidate(index, cmd, at)
    }

    /// Shared tail of candidate pricing: throttle blacklist, data-bus
    /// occupancy, and priority class.
    fn finish_candidate(&self, index: usize, cmd: DdrCommand, mut at: Cycle) -> Option<Candidate> {
        if at == Cycle::MAX {
            return None;
        }
        let p = &self.queue[index];
        let timing = self.dram.config().timing;
        let ch = cmd.channel() as usize;
        // Throttle map: blacklisted ACTs wait.
        if let DdrCommand::Act { bank, row } = cmd {
            let g = self.map.geometry();
            if let Some(&until) = self.throttle.get(&(bank.flat(g), row)) {
                at = at.max(until);
            }
        }
        // Data-bus occupancy for CAS commands.
        let priority = match cmd {
            DdrCommand::Rd { .. } | DdrCommand::Wr { .. } => {
                let lead = if matches!(cmd, DdrCommand::Rd { .. }) {
                    timing.cl
                } else {
                    timing.cwl
                };
                let bus_free = self.data_bus_free[ch];
                if at + lead < bus_free {
                    at = Cycle(bus_free.raw().saturating_sub(lead));
                }
                1
            }
            _ if p.req.kind.is_maintenance() => 1,
            _ => 2,
        };
        // Forced refresh: once a rank's pending REF has been postponed
        // to the edge of its pull-in window, the rank stops accepting
        // request commands. Its banks then drain (tRAS + tRP, well
        // under one tREFI), the refresh candidate is the only one
        // left, and the REF lands inside the JEDEC 9×tREFI bound that
        // `hammertime-check` enforces. Without this barrier a
        // saturating workload starves REF indefinitely under FR-FCFS,
        // because a demand candidate's issue slot is always earlier
        // than a REF that must first settle every bank.
        let due = self.next_ref[self.rank_index(p.bank.channel, p.bank.rank)];
        if due != Cycle::MAX && timing.t_refi > 0 && at >= due + FORCED_REF_LEAD * timing.t_refi {
            return None;
        }
        Some(Candidate {
            issue_at: at,
            priority,
            seq: p.seq,
            kind: CandidateKind::Request { index, cmd },
        })
    }

    fn refresh_candidate(&self, channel: u32, rank: u32) -> Option<Candidate> {
        let due = self.next_ref[self.rank_index(channel, rank)];
        if due == Cycle::MAX {
            return None;
        }
        // If any bank in the rank is open we must precharge-all first.
        let ref_cmd = DdrCommand::Ref { channel, rank };
        let (cmd, need_pre) = if self.dram.earliest(&ref_cmd) == Cycle::MAX {
            (DdrCommand::PreAll { channel, rank }, true)
        } else {
            (ref_cmd, false)
        };
        let at = self
            .dram
            .earliest(&cmd)
            .max(due)
            .max(self.cmd_bus_free[channel as usize])
            .max(self.now);
        if at == Cycle::MAX {
            return None;
        }
        Some(Candidate {
            issue_at: at,
            priority: 0,
            seq: 0,
            kind: CandidateKind::RankRefresh {
                channel,
                rank,
                need_pre,
            },
        })
    }

    /// Issues at most one command at or before `target`. Returns `true`
    /// if it made progress (issued, or resolved a throttle decision).
    /// Thin wrapper over [`MemCtrl::run_until`] — as are `advance_to`,
    /// `run_while_busy`, and `drain`, which just loop it.
    fn step(&mut self, target: Cycle) -> bool {
        self.run_until(target)
    }

    /// Advances to the next posted event at or before `target` and
    /// processes it.
    ///
    /// Fast path: the winning candidate from the last query is
    /// memoized, so repeated calls across an idle stretch (quantum
    /// polling, the gaps between refresh slots) cost O(1) until a
    /// command actually issues. Queries themselves go through the
    /// calendar scheduler ([`EventWheel`]): only banks dirtied since
    /// the last query are repriced — one timing snapshot each — and
    /// the winner is the earliest live calendar entry, compared
    /// against the freshly priced rank refresh timers. Byte-identical
    /// to [`MemCtrl::step_reference`] by construction; the
    /// differential suites in `tests/` enforce it.
    fn run_until(&mut self, target: Cycle) -> bool {
        if self.wedged.is_some() {
            return false;
        }
        self.stats.sched_steps += 1;
        // A refresh instruction without auto-precharge completes as
        // soon as its ACT has issued, before any further command.
        if let Some(index) = self.acted_refresh.take() {
            self.complete(index, self.now);
            return true;
        }
        let best = match self.sched_cache {
            Some(cached) => cached,
            None => {
                let b = self.compute_best();
                self.sched_cache = Some(b);
                b
            }
        };
        let Some(c) = best else {
            return false;
        };
        if c.issue_at > target {
            return false;
        }
        self.issue_candidate(c)
    }

    /// One scheduling query: the earliest actionable event across the
    /// rank refresh timers and the calendar of per-bank candidates.
    fn compute_best(&mut self) -> Option<Candidate> {
        let g = *self.map.geometry();
        // Rank refresh timers first, in (channel, rank) order: equal
        // tuples keep the earlier scan position, exactly as in the
        // reference scan. `due.max(bus).max(now)` lower-bounds the full
        // candidate, so ranks that cannot win (`>=`: ties lose to the
        // earlier position) skip the device probe entirely. Refresh
        // candidates depend on every bank of their rank, so they are
        // repriced fresh here instead of living in the calendar.
        let mut refresh_best: Option<Candidate> = None;
        for ch in 0..g.channels {
            for rk in 0..g.ranks {
                let due = self.next_ref[self.rank_index(ch, rk)];
                if due == Cycle::MAX {
                    continue;
                }
                let lb = due.max(self.cmd_bus_free[ch as usize]).max(self.now);
                if refresh_best.as_ref().is_some_and(|b| lb >= b.issue_at) {
                    continue;
                }
                if let Some(c) = self.refresh_candidate(ch, rk) {
                    if refresh_best.as_ref().is_none_or(|b| better(&c, b)) {
                        refresh_best = Some(c);
                    }
                }
            }
        }
        // Reprice every bank the last mutation dirtied and post the
        // results to the calendar.
        while let Some(b) = self.wheel.pop_dirty() {
            let c = self.bank_candidate(b);
            self.wheel.store(b, c);
        }
        // Pop down to the earliest live entry. An entry is live when it
        // still matches its (clean) slot and no floor has moved past
        // it; anything else is repriced on the spot. Once the top is
        // live it is the bank-side minimum: deeper entries order after
        // it, and repricing can only move them later (every mutation
        // that could move a candidate *earlier* dirties its bank).
        let bank_best = loop {
            let Some((key, b)) = self.wheel.peek() else {
                break None;
            };
            let slot = self.wheel.slot(b).filter(|c| key_of(c) == key);
            let (Some(c), false) = (slot, self.wheel.is_dirty(b)) else {
                self.wheel.pop();
                continue;
            };
            let CandidateKind::Request { cmd, .. } = c.kind else {
                unreachable!("refresh candidates are never posted to the calendar");
            };
            let ch = cmd.channel() as usize;
            // Floors the cached issue time folded in when it was
            // priced: the command bus and the clock (both monotone),
            // and for CAS the data bus (a CAS slot was lifted so that
            // `at + lead >= data_bus_free`; a later CAS on the channel
            // may have pushed the bus past that again).
            let floor = self.cmd_bus_free[ch].max(self.now);
            let cas_lead = match cmd {
                DdrCommand::Rd { .. } => Some(self.dram.config().timing.cl),
                DdrCommand::Wr { .. } => Some(self.dram.config().timing.cwl),
                _ => None,
            };
            let stale_floor = c.issue_at < floor
                || cas_lead.is_some_and(|lead| c.issue_at + lead < self.data_bus_free[ch]);
            if stale_floor {
                self.wheel.pop();
                let fresh = self.bank_candidate(b);
                self.wheel.store(b, fresh);
                continue;
            }
            break Some(c);
        };
        // Request tuples can never exactly tie a refresh candidate
        // (priority 0 vs >= 1), so combination order cannot change the
        // winner.
        match (refresh_best, bank_best) {
            (Some(r), Some(q)) => Some(if better(&q, &r) { q } else { r }),
            (r, q) => r.or(q),
        }
    }

    /// Prices one bank's ready queue against a single timing snapshot:
    /// the bank's best candidate, or `None` when it has no issuable
    /// work (empty, or parked behind a forced refresh of its rank).
    fn bank_candidate(&self, b: usize) -> Option<Candidate> {
        let list = &self.by_bank[b];
        let &first = list.first()?;
        let bank_id = self.queue[first].bank;
        let floor = self.cmd_bus_free[bank_id.channel as usize].max(self.now);
        let bt = self.dram.bank_timing(&bank_id);
        let mut best: Option<Candidate> = None;
        for &i in list {
            // Per-request pruning must be strict (`>`): an equal-time
            // candidate can still win on priority.
            let lb = floor.max(self.queue[i].req.arrival);
            if best.as_ref().is_some_and(|b| lb > b.issue_at) {
                continue;
            }
            // `None` here is a request parked behind a forced refresh
            // of its rank (the acted-refresh completion case is
            // intercepted in `run_until` before the query).
            let Some(c) = self.candidate_from_snapshot(i, &bt) else {
                continue;
            };
            if best.as_ref().is_none_or(|b| better(&c, b)) {
                best = Some(c);
            }
        }
        best
    }

    /// The pre-optimization scheduler: one linear FR-FCFS scan over
    /// every refresh scheduler and queued request, re-probing timing
    /// legality per request per step. Kept verbatim as the differential
    /// oracle for [`MemCtrl::step`] and as the benchmark baseline.
    pub fn step_reference(&mut self, target: Cycle) -> bool {
        if self.wedged.is_some() {
            return false;
        }
        self.stats.sched_steps += 1;
        let g = *self.map.geometry();
        let mut best: Option<Candidate> = None;
        for ch in 0..g.channels {
            for rk in 0..g.ranks {
                if let Some(c) = self.refresh_candidate(ch, rk) {
                    if best.as_ref().is_none_or(|b| better(&c, b)) {
                        best = Some(c);
                    }
                }
            }
        }
        for i in 0..self.queue.len() {
            if let Some(c) = self.candidate_for(i) {
                if best.as_ref().is_none_or(|b| better(&c, b)) {
                    best = Some(c);
                }
            } else if matches!(
                self.queue[i].req.kind,
                RequestKind::Refresh { auto_pre: false }
            ) && self.queue[i].phase == Phase::Acted
            {
                // Refresh instruction without auto-precharge completes
                // as soon as its ACT has issued.
                self.complete(i, self.now);
                return true;
            }
        }
        let Some(c) = best else {
            return false;
        };
        if c.issue_at > target {
            return false;
        }
        self.issue_candidate(c)
    }

    fn issue_candidate(&mut self, c: Candidate) -> bool {
        // Issuing mutates device, bus, clock, and mitigation state.
        self.sched_cache = None;
        match c.kind {
            CandidateKind::RankRefresh {
                channel,
                rank,
                need_pre,
            } => {
                let cmd = if need_pre {
                    DdrCommand::PreAll { channel, rank }
                } else {
                    DdrCommand::Ref { channel, rank }
                };
                let outcome = match self.dram.issue(&cmd, c.issue_at) {
                    Ok(o) => o,
                    Err(e) => {
                        // A scheduler/device disagreement is a wedge,
                        // not a panic: record it and stop issuing.
                        self.record_fault(format!(
                            "scheduler issued illegal {cmd} at {}: {e}",
                            c.issue_at
                        ));
                        return false;
                    }
                };
                if let Some(shadow) = &self.config.shadow {
                    shadow.on_command(c.issue_at, &(&cmd).into());
                }
                self.now = c.issue_at;
                self.cmd_bus_free[channel as usize] = c.issue_at + 1;
                // PRE_ALL and REF settle every bank of the rank, and a
                // REF moves the rank's deadline (the forced-refresh
                // barrier in every bank's pricing).
                self.mark_rank(channel, rank);
                if !need_pre {
                    let idx = self.rank_index(channel, rank);
                    let due = self.next_ref[idx];
                    if c.issue_at < due {
                        // Pulled-in REF (issued before its deadline,
                        // e.g. via the JEDEC postpone/pull-in window or
                        // a host refresh instruction racing the
                        // scheduler). `delta` would underflow here, so
                        // it gets its own counter and metric.
                        self.stats.early_refs += 1;
                        if let Some(tracer) = &self.config.tracer {
                            tracer.observe("mc.refresh_pull_in", due.delta(c.issue_at));
                        }
                    } else if let Some(tracer) = &self.config.tracer {
                        // Slack between when the REF was due and when
                        // the scheduler actually got it onto the bus —
                        // the margin an attack must exhaust to starve
                        // refresh.
                        tracer.observe("mc.refresh_slack", c.issue_at.delta(due));
                    }
                    let t_refi = self.dram.config().timing.t_refi;
                    if t_refi > 0 && c.issue_at >= due + FORCED_REF_LEAD * t_refi {
                        // This REF only got through because the forced-
                        // refresh barrier stopped feeding the rank. The
                        // starvation is charged to the channel's most
                        // recent activator — the traffic that kept the
                        // rank busy.
                        self.stats.refs_forced += 1;
                        if let Some(d) = self.last_act_domain[channel as usize] {
                            self.charge(d, 1, |t| &mut t.forced_refs);
                        }
                    }
                    self.next_ref[idx] += t_refi;
                    self.stats.refs_issued += 1;
                    let _ = outcome;
                }
                true
            }
            CandidateKind::Request { index, cmd } => self.issue_request_cmd(index, cmd, c.issue_at),
        }
    }

    fn issue_request_cmd(&mut self, index: usize, cmd: DdrCommand, at: Cycle) -> bool {
        let g = *self.map.geometry();
        // Throttling decision happens at the moment an ACT would issue.
        if let DdrCommand::Act { bank, row } = cmd {
            let is_demand = !self.queue[index].req.kind.is_maintenance();
            if is_demand {
                let flat = bank.flat(&g);
                let domain = self.queue[index].req.domain;
                match self.mitigation.on_act(flat, row, domain, at) {
                    ActAction::Proceed => {
                        self.throttle.remove(&(flat, row));
                    }
                    ActAction::Delay(d) => {
                        self.stats.throttle_events += 1;
                        self.charge(domain, 1, |t| &mut t.throttle_delays);
                        // A zero-cycle delay would re-elect the same
                        // candidate at the same time forever, spinning
                        // `advance_to`; postpone by at least one cycle.
                        self.throttle.insert((flat, row), at + d.max(1));
                        self.wheel.mark_bank(flat);
                        return true; // decision made; retry later
                    }
                }
            }
        }
        let trr_before = self.dram.trr_samples();
        let outcome = match self.dram.issue(&cmd, at) {
            Ok(o) => o,
            Err(e) => {
                // A scheduler/device disagreement is a wedge, not a
                // panic: record it and stop issuing.
                self.record_fault(format!("scheduler issued illegal {cmd} at {at}: {e}"));
                return false;
            }
        };
        if let Some(shadow) = &self.config.shadow {
            shadow.on_command(at, &(&cmd).into());
        }
        self.now = at;
        let ch = cmd.channel() as usize;
        self.cmd_bus_free[ch] = at + 1;
        // Dirty rules: an ACT opens tRRD/tFAW windows across its whole
        // rank; PRE/CAS/REF_NEIGHBORS perturb only their own bank. A
        // CAS also moves the channel data bus, which other banks' CAS
        // slots pick up through floor revalidation at the next query.
        let issued_bank = self.queue[index].bank;
        match cmd {
            DdrCommand::Act { .. } => self.mark_rank(issued_bank.channel, issued_bank.rank),
            _ => self.wheel.mark_bank(issued_bank.flat(&g)),
        }

        let p = &mut self.queue[index];
        match cmd {
            DdrCommand::Act { bank, row } => {
                p.had_miss = true;
                if let RequestKind::Refresh { auto_pre } = p.req.kind {
                    p.phase = Phase::Acted;
                    if !auto_pre {
                        // Completes on the next step, before any other
                        // command (see `step`).
                        self.acted_refresh = Some(index);
                    }
                }
                let is_demand = !p.req.kind.is_maintenance();
                let line = p.req.line;
                let domain = p.req.domain;
                if is_demand {
                    // Demand ACTs feed the counters and trackers; ACTs
                    // performed *by* defenses do not, preventing
                    // defense-induced interrupt feedback loops.
                    let ch_idx = bank.channel as usize;
                    self.last_act_domain[ch_idx] = Some(domain);
                    // The in-DRAM TRR sampler just consumed this ACT
                    // (if present); charge the sample to its issuer.
                    let trr_delta = self.dram.trr_samples() - trr_before;
                    self.charge(domain, trr_delta, |t| &mut t.trr_samples);
                    let mut counted = true;
                    if self.stuck_acts[ch_idx] > 0 {
                        // A stuck ACT_COUNT window swallows this ACT.
                        self.stuck_acts[ch_idx] -= 1;
                        counted = false;
                    } else if let Some(fc) = &mut self.faults {
                        if fc.fire(FaultKind::StuckActCount) {
                            self.stuck_acts[ch_idx] = fc.plan().stuck_window;
                            counted = false;
                            if let Some(tracer) = &self.config.tracer {
                                tracer.emit(
                                    at,
                                    Event::FaultInjected {
                                        kind: FaultKind::StuckActCount.name().into(),
                                    },
                                );
                            }
                        }
                    }
                    if counted {
                        // The swallowed window also skips attribution:
                        // a saturated shared counter must not inflate
                        // any tenant's ledger (let alone an innocent
                        // one's suspect score).
                        let row_key = ((bank.flat(&g) as u64) << 32) | u64::from(row);
                        if let Some(charged) =
                            self.counters
                                .on_act(bank.channel, line, domain, row_key, at)
                        {
                            self.charge(charged, 1, |t| &mut t.act_interrupts);
                        }
                    }
                    let flat = bank.flat(&g);
                    if let Some(radius) = self.mitigation.after_act(flat, row, at) {
                        self.charge(domain, 1, |t| &mut t.mitigations);
                        self.spawn_neighbor_refresh(line, radius);
                    }
                }
                true
            }
            DdrCommand::Pre { .. } => {
                let was_refresh_tail =
                    matches!(p.req.kind, RequestKind::Refresh { .. }) && p.phase == Phase::Acted;
                if p.phase == Phase::Init {
                    p.had_miss = true;
                }
                if was_refresh_tail {
                    self.complete(index, at);
                }
                true
            }
            DdrCommand::Rd { .. } | DdrCommand::Wr { .. } => {
                self.data_bus_free[ch] = outcome.done;
                self.complete(index, outcome.done);
                true
            }
            DdrCommand::RefNeighbors { bank, row, .. } => {
                // Tell stateful trackers these rows are clean now.
                let flat = bank.flat(&g);
                let radius = match cmd {
                    DdrCommand::RefNeighbors { radius, .. } => radius,
                    _ => unreachable!(),
                };
                let rows: Vec<u32> = (1..=radius)
                    .flat_map(|d| [row.checked_sub(d), row.checked_add(d)])
                    .flatten()
                    .collect();
                self.mitigation.on_rows_refreshed(flat, &rows);
                self.complete(index, outcome.done);
                true
            }
            DdrCommand::PreAll { .. } | DdrCommand::Ref { .. } => {
                unreachable!("rank refresh handled separately")
            }
        }
    }

    fn spawn_neighbor_refresh(&mut self, line: CacheLineAddr, radius: u32) {
        let coord = match self.map.to_coord(line) {
            Ok(c) => c,
            Err(_) => return,
        };
        let req = MemRequest {
            id: u64::MAX,
            line,
            kind: RequestKind::RefNeighbors { radius },
            source: hammertime_common::RequestSource::Core(0),
            domain: DomainId::HOST,
            arrival: self.now,
        };
        self.push_pending(req, coord, true);
    }

    fn complete(&mut self, index: usize, done: Cycle) {
        self.sched_cache = None;
        let g = *self.map.geometry();
        let last = self.queue.len() - 1;
        // Keep the per-bank lists and the acted-refresh pointer in sync
        // with the swap_remove below: `index` leaves, `last` moves to
        // `index`.
        let flat = self.queue[index].bank.flat(&g);
        self.wheel.mark_bank(flat);
        let list = &mut self.by_bank[flat];
        let pos = list
            .iter()
            .position(|&i| i == index)
            .expect("queued request tracked in its bank list");
        list.swap_remove(pos);
        if index != last {
            // The moved request's queue index changes, invalidating any
            // cached candidate that captured it.
            let moved_flat = self.queue[last].bank.flat(&g);
            self.wheel.mark_bank(moved_flat);
            for slot in &mut self.by_bank[moved_flat] {
                if *slot == last {
                    *slot = index;
                }
            }
        }
        match self.acted_refresh {
            Some(i) if i == index => self.acted_refresh = None,
            Some(i) if i == last => self.acted_refresh = Some(index),
            _ => {}
        }
        let p = self.queue.swap_remove(index);
        match p.req.kind {
            RequestKind::Read => {
                self.stats.reads += 1;
                self.stats.latency_sum += done.delta(p.req.arrival);
            }
            RequestKind::Write => {
                self.stats.writes += 1;
                self.stats.latency_sum += done.delta(p.req.arrival);
            }
            _ => self.stats.maintenance_ops += 1,
        }
        if !p.req.kind.is_maintenance() {
            if p.had_miss {
                // Classify: conflict if another row was open when the
                // request was first considered — approximated as a miss
                // here; precise conflict classification is kept simple.
                self.stats.row_misses += 1;
                self.completions_since_hit += 1;
            } else {
                self.stats.row_hits += 1;
                if let Some(tracer) = &self.config.tracer {
                    // Row-buffer hit distance: demand misses completed
                    // since the previous hit (0 = back-to-back hits).
                    tracer.observe("mc.row_hit_distance", self.completions_since_hit);
                }
                self.completions_since_hit = 0;
            }
        }
        if !p.internal {
            self.completions.push(Completion {
                id: p.req.id,
                line: p.req.line,
                kind: p.req.kind,
                done,
                arrival: p.req.arrival,
                row_hit: !p.had_miss,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime_common::RequestSource;

    fn dram_cfg(mac: u64) -> DramConfig {
        DramConfig::test_config(mac)
    }

    fn mc(config: MemCtrlConfig, mac: u64) -> MemCtrl {
        MemCtrl::new(config, dram_cfg(mac), 7).unwrap()
    }

    fn read(id: u64, line: u64, at: u64) -> MemRequest {
        MemRequest {
            id,
            line: CacheLineAddr(line),
            kind: RequestKind::Read,
            source: RequestSource::Core(0),
            domain: DomainId(1),
            arrival: Cycle(at),
        }
    }

    #[test]
    fn single_read_completes_with_miss_latency() {
        let mut m = mc(MemCtrlConfig::baseline(), 1_000_000);
        m.submit(read(1, 0, 0)).unwrap();
        m.drain();
        let c = m.drain_completions();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].id, 1);
        assert!(!c[0].row_hit);
        let t = m.dram().config().timing;
        // ACT at arrival, RD after tRCD, data CL + tBL later.
        assert_eq!(c[0].done, Cycle(t.t_rcd + t.cl + t.t_bl));
        assert_eq!(m.stats().reads, 1);
        assert_eq!(m.stats().row_misses, 1);
    }

    #[test]
    fn second_read_same_row_is_a_hit() {
        let mut m = mc(MemCtrlConfig::baseline(), 1_000_000);
        m.submit(read(1, 0, 0)).unwrap();
        m.submit(read(2, 1, 0)).unwrap(); // next line: same row, next col? depends on map
        m.drain();
        let c = m.drain_completions();
        assert_eq!(c.len(), 2);
        // With small_test geometry (2 banks), line 1 maps to the other
        // bank; line 2 maps back to bank 0 same row. Use stats instead.
        assert!(m.stats().row_hits + m.stats().row_misses == 2);
    }

    #[test]
    fn reads_to_same_row_hit_row_buffer() {
        let mut m = mc(MemCtrlConfig::baseline(), 1_000_000);
        // small_test: interleave layout [ch0][bg0][bank1][col3][rank0][row...]
        // lines 0 and 2 share bank 0; col differs, same row 0.
        m.submit(read(1, 0, 0)).unwrap();
        m.submit(read(2, 2, 0)).unwrap();
        m.drain();
        let c = m.drain_completions();
        assert_eq!(c.len(), 2);
        let hit = c.iter().find(|c| c.id == 2).unwrap();
        assert!(hit.row_hit, "same-row follow-up must be a row-buffer hit");
        assert_eq!(m.stats().row_hits, 1);
    }

    #[test]
    fn conflicting_rows_force_precharge() {
        let mut m = mc(MemCtrlConfig::baseline(), 1_000_000);
        let g = *m.map().geometry();
        // Two lines in the same bank, different rows: line 0 and the
        // line one full row-stripe away.
        let lines_per_row_stripe = g.total_lines() / g.rows_per_bank() as u64;
        m.submit(read(1, 0, 0)).unwrap();
        m.submit(read(2, lines_per_row_stripe, 0)).unwrap();
        m.drain();
        let c = m.drain_completions();
        assert_eq!(c.len(), 2);
        let second = c.iter().find(|c| c.id == 2).unwrap();
        let t = m.dram().config().timing;
        assert!(
            second.latency() >= t.t_ras + t.t_rp + t.t_rcd,
            "conflict pays full row cycle: {}",
            second.latency()
        );
    }

    #[test]
    fn banks_overlap_for_parallel_requests() {
        let mut m = mc(MemCtrlConfig::baseline(), 1_000_000);
        // Lines 0 and 1 hit different banks under interleaving: their
        // ACTs overlap, so total time is far less than 2x serial.
        m.submit(read(1, 0, 0)).unwrap();
        m.submit(read(2, 1, 0)).unwrap();
        let end = m.drain();
        let t = m.dram().config().timing;
        let serial = 2 * (t.t_rcd + t.cl + t.t_bl);
        assert!(
            end.raw() < serial,
            "parallel banks should beat serial: {end} vs {serial}"
        );
    }

    #[test]
    fn refresh_scheduler_issues_refs() {
        let mut m = mc(MemCtrlConfig::baseline(), 1_000_000);
        let t = m.dram().config().timing;
        m.advance_to(Cycle(t.t_refi * 10));
        assert!(
            m.stats().refs_issued >= 8,
            "expected ~10 REFs, got {}",
            m.stats().refs_issued
        );
        assert_eq!(m.dram_stats().refs, m.stats().refs_issued);
    }

    #[test]
    fn refresh_disabled_issues_none() {
        let mut cfg = MemCtrlConfig::baseline();
        cfg.refresh_enabled = false;
        let mut m = mc(cfg, 1_000_000);
        let t = m.dram().config().timing;
        m.advance_to(Cycle(t.t_refi * 10));
        assert_eq!(m.stats().refs_issued, 0);
    }

    #[test]
    fn early_ref_under_tracing_counts_pull_in_instead_of_underflowing() {
        // Regression: `mc.refresh_slack` was computed as
        // `issue_at.delta(next_ref)` unconditionally, which underflows
        // (debug-asserts) when a REF lands *before* its deadline. The
        // scheduler itself never pulls a REF in, so forge the race a
        // host refresh instruction can create: issue the REF candidate
        // while the rank's deadline sits in the future.
        let mut cfg = MemCtrlConfig::baseline();
        cfg.tracer = Some(Tracer::buffer());
        let mut m = mc(cfg, 1_000_000);
        let at = m.dram.earliest(&DdrCommand::Ref {
            channel: 0,
            rank: 0,
        });
        m.next_ref[0] = at + 1_000; // deadline far in the future
        let issued = m.issue_candidate(Candidate {
            issue_at: at,
            priority: 0,
            seq: 0,
            kind: CandidateKind::RankRefresh {
                channel: 0,
                rank: 0,
                need_pre: false,
            },
        });
        assert!(issued);
        assert_eq!(m.stats().refs_issued, 1);
        assert_eq!(m.stats().early_refs, 1);
        // An on-time REF afterwards records slack, not pull-in.
        let at2 = m
            .dram
            .earliest(&DdrCommand::Ref {
                channel: 0,
                rank: 0,
            })
            .max(m.next_ref[0]);
        let issued = m.issue_candidate(Candidate {
            issue_at: at2,
            priority: 0,
            seq: 1,
            kind: CandidateKind::RankRefresh {
                channel: 0,
                rank: 0,
                need_pre: false,
            },
        });
        assert!(issued);
        assert_eq!(m.stats().early_refs, 1);
        assert_eq!(m.stats().refs_issued, 2);
    }

    #[test]
    fn refresh_instruction_executes_pre_act_pre() {
        let mut m = mc(MemCtrlConfig::baseline(), 1_000_000);
        // Open a row first so the refresh has to precharge.
        m.submit(read(1, 0, 0)).unwrap();
        m.drain();
        m.drain_completions();
        m.refresh_row(99, CacheLineAddr(0), true).unwrap();
        m.drain();
        let c = m.drain_completions();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].id, 99);
        assert!(matches!(c[0].kind, RequestKind::Refresh { auto_pre: true }));
        assert_eq!(m.stats().maintenance_ops, 1);
        // The ACT refreshed the row and the auto-precharge closed it.
        let (bank, row) = m.locate(CacheLineAddr(0)).unwrap();
        assert_eq!(m.dram().row_pressure(&bank, row), 0.0);
        assert_eq!(m.dram().open_row(&bank), None);
        // One demand ACT plus the refresh ACT reached the device.
        assert_eq!(m.dram_stats().acts, 2);
    }

    #[test]
    fn refresh_instruction_without_auto_pre_leaves_row_open() {
        let mut m = mc(MemCtrlConfig::baseline(), 1_000_000);
        m.refresh_row(5, CacheLineAddr(0), false).unwrap();
        m.drain();
        let c = m.drain_completions();
        assert_eq!(c.len(), 1);
        let (bank, row) = m.locate(CacheLineAddr(0)).unwrap();
        assert_eq!(m.dram().open_row(&bank), Some(row));
    }

    #[test]
    fn guest_cannot_issue_maintenance() {
        let mut m = mc(MemCtrlConfig::baseline(), 1_000_000);
        let bad = MemRequest {
            id: 1,
            line: CacheLineAddr(0),
            kind: RequestKind::Refresh { auto_pre: true },
            source: RequestSource::Core(1),
            domain: DomainId(2),
            arrival: Cycle::ZERO,
        };
        assert!(matches!(m.submit(bad), Err(Error::Privilege(_))));
    }

    #[test]
    fn ref_neighbors_clears_victim_pressure() {
        let mut m = mc(MemCtrlConfig::baseline(), 1_000_000);
        // Hammer line 0's row via repeated conflicting reads.
        let g = *m.map().geometry();
        let stripe = g.total_lines() / g.rows_per_bank() as u64;
        for i in 0..20 {
            m.submit(read(i, 0, 0)).unwrap();
            m.submit(read(100 + i, stripe, 0)).unwrap();
            m.drain();
        }
        let (bank, row) = m.locate(CacheLineAddr(0)).unwrap();
        let neighbor = row + 1;
        assert!(m.dram().row_pressure(&bank, neighbor) > 0.0);
        m.ref_neighbors(7, CacheLineAddr(0), 2).unwrap();
        m.drain();
        assert_eq!(m.dram().row_pressure(&bank, neighbor), 0.0);
        assert!(m.drain_completions().iter().any(|c| c.id == 7));
    }

    #[test]
    fn act_counters_fire_with_addresses() {
        let mut cfg = MemCtrlConfig::baseline();
        cfg.act_counters = ActCounterConfig::precise(4);
        cfg.act_counters.randomize_reset_window = 0;
        let mut m = mc(cfg, 1_000_000);
        let g = *m.map().geometry();
        let stripe = g.total_lines() / g.rows_per_bank() as u64;
        // Alternate two rows in one bank: every access ACTs.
        for i in 0..6 {
            m.submit(read(2 * i, 0, 0)).unwrap();
            m.submit(read(2 * i + 1, stripe, 0)).unwrap();
            m.drain();
        }
        let ints = m.drain_interrupts();
        assert!(!ints.is_empty());
        for int in &ints {
            assert!(int.addr.is_some(), "precise mode must carry addresses");
            let line = int.addr.unwrap();
            assert!(line == CacheLineAddr(0) || line == CacheLineAddr(stripe));
        }
    }

    #[test]
    fn para_mitigation_spawns_neighbor_refreshes() {
        let mut cfg = MemCtrlConfig::baseline();
        cfg.mitigation = McMitigationConfig::Para {
            prob: 1.0,
            radius: 1,
        };
        let mut m = mc(cfg, 1_000_000);
        let g = *m.map().geometry();
        let stripe = g.total_lines() / g.rows_per_bank() as u64;
        for i in 0..5 {
            m.submit(read(2 * i, 0, 0)).unwrap();
            m.submit(read(2 * i + 1, stripe, 0)).unwrap();
        }
        m.drain();
        assert!(
            m.dram_stats().ref_neighbor_rows > 0,
            "PARA at p=1 must refresh"
        );
        // Internal maintenance does not surface as completions.
        assert!(m
            .drain_completions()
            .iter()
            .all(|c| !c.kind.is_maintenance()));
    }

    #[test]
    fn blockhammer_throttles_hammer_stream() {
        let mut cfg = MemCtrlConfig::baseline();
        cfg.mitigation = McMitigationConfig::BlockHammer {
            cbf_counters: 64,
            hashes: 2,
            threshold: 5,
            delay: 500,
            epoch: 1_000_000,
        };
        let mut m = mc(cfg, 1_000_000);
        let g = *m.map().geometry();
        let stripe = g.total_lines() / g.rows_per_bank() as u64;
        for i in 0..15 {
            m.submit(read(2 * i, 0, 0)).unwrap();
            m.submit(read(2 * i + 1, stripe, 0)).unwrap();
            m.drain();
        }
        assert!(m.stats().throttle_events > 0, "hot rows must be throttled");
        assert!(m.mitigation().throttle_cycles > 0);
    }

    #[test]
    fn domain_enforcement_blocks_foreign_groups() {
        let mut cfg = MemCtrlConfig::baseline();
        cfg.mapping = MappingScheme::SubarrayIsolated;
        cfg.enforce_domain_groups = true;
        let mut dc = dram_cfg(1_000_000);
        dc.geometry = hammertime_common::Geometry::medium();
        let mut m = MemCtrl::new(cfg, dc, 7).unwrap();
        m.assign_group(0, Some(DomainId(1))).unwrap();
        m.assign_group(1, Some(DomainId(2))).unwrap();
        // Domain 1 may touch group 0.
        let group0_line = 0;
        assert!(m.submit(read(1, group0_line, 0)).is_ok());
        // Domain 1 may not touch group 1.
        let group1_first_frame = m.map().frames_of_group(1).unwrap().start;
        let line_in_group1 = group1_first_frame * 64;
        let mut bad = read(2, line_in_group1, 0);
        bad.domain = DomainId(1);
        assert!(matches!(m.submit(bad), Err(Error::Privilege(_))));
        assert_eq!(m.stats().domain_violations, 1);
        // Host can touch anything.
        let mut host = read(3, line_in_group1, 0);
        host.domain = DomainId::HOST;
        assert!(m.submit(host).is_ok());
    }

    #[test]
    fn enforcement_requires_subarray_mapping() {
        let mut cfg = MemCtrlConfig::baseline();
        cfg.enforce_domain_groups = true;
        assert!(MemCtrl::new(cfg, dram_cfg(100), 7).is_err());
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut cfg = MemCtrlConfig::baseline();
        cfg.queue_capacity = 2;
        let mut m = mc(cfg, 1_000_000);
        m.submit(read(1, 0, 0)).unwrap();
        m.submit(read(2, 1, 0)).unwrap();
        assert!(matches!(m.submit(read(3, 2, 0)), Err(Error::Exhausted(_))));
    }

    #[test]
    fn data_path_round_trips_through_translation() {
        let mut m = mc(MemCtrlConfig::baseline(), 1_000_000);
        let data = vec![0x3C; 64];
        m.write_data(CacheLineAddr(5), &data).unwrap();
        let (read_back, poisoned) = m.read_data(CacheLineAddr(5)).unwrap();
        assert_eq!(read_back, data);
        assert!(!poisoned);
    }

    #[test]
    fn advance_to_does_not_overrun_target() {
        let mut m = mc(MemCtrlConfig::baseline(), 1_000_000);
        m.submit(read(1, 0, 1_000)).unwrap();
        m.advance_to(Cycle(500));
        assert_eq!(m.now(), Cycle(500));
        assert!(m.drain_completions().is_empty(), "arrival in the future");
        m.advance_to(Cycle(2_000));
        assert_eq!(m.drain_completions().len(), 1);
    }

    fn fault_cfg(plan: FaultPlan) -> MemCtrlConfig {
        let mut cfg = MemCtrlConfig::baseline();
        cfg.faults = Some(plan);
        cfg
    }

    #[test]
    fn inert_fault_plan_matches_no_plan() {
        let mut plain = mc(MemCtrlConfig::baseline(), 1_000_000);
        let mut faulty = mc(fault_cfg(FaultPlan::none()), 1_000_000);
        for m in [&mut plain, &mut faulty] {
            for i in 0..20 {
                m.submit(read(i, i % 8, 0)).unwrap();
            }
            m.drain();
        }
        assert_eq!(plain.stats(), faulty.stats());
        assert_eq!(plain.drain_completions(), faulty.drain_completions());
        assert_eq!(faulty.fault_injections(), 0);
    }

    #[test]
    fn refresh_nack_is_a_typed_fault() {
        let mut plan = FaultPlan::none();
        plan.refresh_nack = 1.0;
        let mut m = mc(fault_cfg(plan), 1_000_000);
        let err = m.refresh_row(1, CacheLineAddr(0), true).unwrap_err();
        assert!(matches!(err, Error::Fault(_)), "got {err:?}");
        // Demand traffic is unaffected.
        m.submit(read(2, 0, 0)).unwrap();
        m.drain();
        assert_eq!(m.drain_completions().len(), 1);
        assert_eq!(m.fault_injections(), 1);
    }

    #[test]
    fn wedged_controller_refuses_work_without_panicking() {
        let mut m = mc(MemCtrlConfig::baseline(), 1_000_000);
        m.submit(read(1, 0, 0)).unwrap();
        m.drain();
        m.record_fault("scheduler issued illegal ACT".into());
        assert!(matches!(m.fault_state(), Some(Error::Fault(_))));
        let err = m.submit(read(2, 1, 0)).unwrap_err();
        assert!(matches!(err, Error::Fault(_)));
        // Stepping a wedged controller is a no-op, not a panic.
        assert!(!m.step(Cycle::MAX));
        assert!(!m.step_reference(Cycle::MAX));
    }

    fn hammer_two_rows(m: &mut MemCtrl, pairs: u64) {
        let g = *m.map().geometry();
        let stripe = g.total_lines() / g.rows_per_bank() as u64;
        for i in 0..pairs {
            m.submit(read(2 * i, 0, 0)).unwrap();
            m.submit(read(2 * i + 1, stripe, 0)).unwrap();
            m.drain();
        }
    }

    #[test]
    fn dropped_interrupts_never_reach_the_host() {
        let mut cfg = MemCtrlConfig::baseline();
        cfg.act_counters = ActCounterConfig::precise(4);
        cfg.act_counters.randomize_reset_window = 0;
        let mut plan = FaultPlan::none();
        plan.dropped_interrupt = 1.0;
        cfg.faults = Some(plan);
        let mut m = mc(cfg, 1_000_000);
        hammer_two_rows(&mut m, 6);
        assert!(m.drain_interrupts().is_empty());
        assert!(m.fault_injections() > 0);
    }

    #[test]
    fn delayed_interrupts_arrive_late_with_shifted_timestamps() {
        let mut cfg = MemCtrlConfig::baseline();
        cfg.act_counters = ActCounterConfig::precise(4);
        cfg.act_counters.randomize_reset_window = 0;
        let delay = 10_000_000;
        let mut plan = FaultPlan::none();
        plan.delayed_interrupt = 1.0;
        plan.interrupt_delay = delay;
        cfg.faults = Some(plan);
        let mut m = mc(cfg, 1_000_000);
        hammer_two_rows(&mut m, 6);
        let raised_by = m.now();
        // Every interrupt is held back: nothing is deliverable yet.
        assert!(m.drain_interrupts().is_empty());
        assert!(m.fault_injections() > 0);
        // Once the clock passes the delayed delivery time they land,
        // timestamped after the original raise.
        m.advance_to(Cycle(raised_by.raw() + delay));
        let ints = m.drain_interrupts();
        assert!(!ints.is_empty(), "delayed interrupts must eventually land");
        for int in &ints {
            assert!(int.time > raised_by);
            assert!(int.time <= m.now());
        }
    }

    #[test]
    fn stuck_act_count_suppresses_counting_for_a_window() {
        let mut base = MemCtrlConfig::baseline();
        base.act_counters = ActCounterConfig::precise(4);
        base.act_counters.randomize_reset_window = 0;
        let mut stuck = base.clone();
        let mut plan = FaultPlan::none();
        plan.stuck_act_count = 1.0;
        plan.stuck_window = u64::MAX;
        stuck.faults = Some(plan);

        let mut healthy = mc(base, 1_000_000);
        let mut wedged = mc(stuck, 1_000_000);
        hammer_two_rows(&mut healthy, 6);
        hammer_two_rows(&mut wedged, 6);
        assert!(!healthy.drain_interrupts().is_empty());
        // With the counter stuck from the first ACT on, no threshold
        // crossing ever happens.
        assert!(wedged.drain_interrupts().is_empty());
        assert!(wedged.fault_injections() > 0);
    }

    #[test]
    fn remap_corruption_keeps_requests_completing() {
        let mut plan = FaultPlan::none();
        plan.remap_corrupt = 1.0;
        let mut m = mc(fault_cfg(plan), 1_000_000);
        for i in 0..8 {
            m.submit(read(i, i, 0)).unwrap();
        }
        m.drain();
        // Requests land on bit-flipped rows, but they still complete:
        // corruption degrades placement, not liveness.
        assert_eq!(m.drain_completions().len(), 8);
        assert_eq!(m.fault_injections(), 8);
    }

    #[test]
    fn fault_decisions_are_reproducible_across_runs() {
        let mut plan = FaultPlan::none();
        plan.refresh_nack = 0.5;
        plan.seed = 0xFEED;
        let outcomes = |_: ()| {
            let mut m = mc(fault_cfg(plan), 1_000_000);
            (0..32)
                .map(|i| m.refresh_row(i, CacheLineAddr(0), true).is_err())
                .collect::<Vec<_>>()
        };
        let a = outcomes(());
        let b = outcomes(());
        assert_eq!(a, b);
        assert!(a.iter().any(|&e| e) && a.iter().any(|&e| !e));
    }
}
