//! Multi-tenant scenario construction.
//!
//! The paper's threat model is a cloud host: an attacker VM tries to
//! flip bits in a victim VM's memory (§1). [`CloudScenario`] builds
//! that setup on a [`Machine`]: interleaved allocations (so
//! cross-domain adjacency exists unless an isolation defense prevents
//! it), attack-pattern targeting helpers that reproduce the published
//! attack methodologies, and optional benign background tenants for
//! overhead measurement.

use crate::machine::{Machine, MachineConfig};
use crate::metrics::SimReport;
use hammertime_common::geometry::BankId;
use hammertime_common::{CacheLineAddr, DetRng, DomainId, Result};
use hammertime_workloads::{
    DmaHammer, HammerPattern, RandomWorkload, StreamWorkload, ZipfianWorkload,
};
use serde::{Deserialize, Serialize};

/// Salt separating the fuzzed-hammer schedule stream from every other
/// consumer of the configuration seed.
const FUZZ_SALT: u64 = 0xB1AC_5317;

/// How an armed attack relates to the victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackTargeting {
    /// Aggressor rows sandwich (or neighbor) victim-owned rows: the
    /// cross-domain attack is physically possible.
    CrossDomain,
    /// Isolation prevented adjacency; the attacker can only hammer
    /// within its own allocation.
    IntraDomainOnly,
}

/// A two-domain attack scenario plus optional background tenants.
pub struct CloudScenario {
    /// The machine under test.
    pub machine: Machine,
    /// Attacker domain.
    pub attacker: DomainId,
    /// Victim domain.
    pub victim: DomainId,
    next_benign: u32,
}

impl CloudScenario {
    /// Builds the canonical two-tenant scenario: attacker pages,
    /// victim pages, attacker pages again — interleaving their row
    /// stripes wherever the placement policy allows it.
    ///
    /// # Errors
    ///
    /// Propagates machine construction/allocation failures.
    pub fn build(cfg: MachineConfig) -> Result<CloudScenario> {
        Self::build_sized(cfg, 2)
    }

    /// Like [`CloudScenario::build`] with `chunk` pages per
    /// allocation round (attacker gets `2 * chunk`, victim `chunk`).
    ///
    /// # Errors
    ///
    /// Propagates machine construction/allocation failures.
    pub fn build_sized(cfg: MachineConfig, chunk: u64) -> Result<CloudScenario> {
        let mut machine = Machine::new(cfg)?;
        let attacker = DomainId(1);
        let victim = DomainId(2);
        machine.add_tenant(attacker, chunk)?;
        machine.add_tenant(victim, chunk)?;
        machine.add_tenant(attacker, chunk)?;
        Ok(CloudScenario {
            machine,
            attacker,
            victim,
            next_benign: 10,
        })
    }

    /// Finds a double-sided sandwich: two attacker rows `r`, `r+2` in
    /// one bank with a victim-owned row between them. Falls back to
    /// the closest available pair when the exact sandwich doesn't
    /// exist; the returned targeting reflects whether any victim-owned
    /// row actually sits inside the pair's blast radius.
    pub fn find_double_sided(&self) -> (CacheLineAddr, CacheLineAddr, AttackTargeting) {
        let rows = self.machine.rows_of_domain(self.attacker);
        let radius = self.machine.config().assumed_radius;
        let victim_in_radius = |bank: &BankId, row: u32| {
            (1..=radius).any(|d| {
                [row.checked_sub(d), row.checked_add(d)]
                    .into_iter()
                    .flatten()
                    .any(|v| self.machine.owner_of_row(bank, v) == Some(self.victim))
            })
        };
        let targeting_of = |bank: &BankId, r1: u32, r2: u32| {
            if victim_in_radius(bank, r1) || victim_in_radius(bank, r2) {
                AttackTargeting::CrossDomain
            } else {
                AttackTargeting::IntraDomainOnly
            }
        };
        // Preferred: an exact sandwich around a victim row.
        for (b1, r1, l1) in &rows {
            for (b2, r2, l2) in &rows {
                if b1 == b2
                    && *r2 == r1 + 2
                    && self.machine.owner_of_row(b1, r1 + 1) == Some(self.victim)
                {
                    return (l1[0], l2[0], AttackTargeting::CrossDomain);
                }
            }
        }
        // Fallback: a gap-2 pair, then any pair in one bank.
        for want_gap in [Some(2u32), None] {
            for (b1, r1, l1) in &rows {
                for (b2, r2, l2) in &rows {
                    if b1 == b2 && *r2 > *r1 && want_gap.is_none_or(|g| r2 - r1 == g) {
                        return (l1[0], l2[0], targeting_of(b1, *r1, *r2));
                    }
                }
            }
        }
        panic!("attacker owns fewer than two rows in any bank");
    }

    /// Picks `n` attacker rows in one bank for a many-sided
    /// (TRRespass-style) pattern, preferring rows adjacent to
    /// victim-owned rows.
    pub fn find_many_sided(&self, n: usize) -> (Vec<CacheLineAddr>, AttackTargeting) {
        let rows = self.machine.rows_of_domain(self.attacker);
        // Group attacker rows per bank.
        type RowsByBank =
            std::collections::BTreeMap<(u32, u32, u32, u32), Vec<(u32, CacheLineAddr)>>;
        let mut by_bank: RowsByBank = RowsByBank::new();
        for (b, r, l) in &rows {
            by_bank
                .entry((b.channel, b.rank, b.bank_group, b.bank))
                .or_default()
                .push((*r, l[0]));
        }
        let mut best: Option<(Vec<CacheLineAddr>, usize)> = None;
        for ((ch, rk, bg, ba), mut rws) in by_bank {
            rws.sort_unstable_by_key(|(r, _)| *r);
            if rws.len() < 2 {
                continue;
            }
            let bank = BankId {
                channel: ch,
                rank: rk,
                bank_group: bg,
                bank: ba,
            };
            // Space aggressors at least two rows apart: contiguous
            // aggressors refresh each other's victims with their own
            // ACTs (an own-ACT repairs the row, §2.1), so effective
            // many-sided patterns leave victim gaps — exactly how
            // TRRespass structures its sets.
            let mut take: Vec<(u32, CacheLineAddr)> = Vec::new();
            for (r, l) in rws {
                if take.last().is_none_or(|(prev, _)| r >= prev + 2) {
                    take.push((r, l));
                    if take.len() == n {
                        break;
                    }
                }
            }
            let adjacency = take
                .iter()
                .filter(|(r, _)| {
                    [r.checked_sub(1), Some(r + 1)]
                        .into_iter()
                        .flatten()
                        .any(|v| self.machine.owner_of_row(&bank, v) == Some(self.victim))
                })
                .count();
            let lines: Vec<CacheLineAddr> = take.into_iter().map(|(_, l)| l).collect();
            if best.as_ref().is_none_or(|(b, a)| {
                lines.len() > b.len() || (lines.len() == b.len() && adjacency > *a)
            }) {
                best = Some((lines, adjacency));
            }
        }
        let (lines, adjacency) = best.expect("attacker owns rows in some bank");
        let targeting = if adjacency > 0 {
            AttackTargeting::CrossDomain
        } else {
            AttackTargeting::IntraDomainOnly
        };
        (lines, targeting)
    }

    /// Arms a CPU double-sided hammer on the attacker.
    ///
    /// # Errors
    ///
    /// Propagates workload attachment failures.
    pub fn arm_double_sided(&mut self, accesses: u64) -> Result<AttackTargeting> {
        let (above, below, targeting) = self.find_double_sided();
        self.machine.set_workload(
            self.attacker,
            Box::new(HammerPattern::double_sided(above, below, accesses)),
        )?;
        Ok(targeting)
    }

    /// Arms a many-sided hammer with `n` aggressors.
    ///
    /// # Errors
    ///
    /// Propagates workload attachment failures.
    pub fn arm_many_sided(&mut self, n: usize, accesses: u64) -> Result<AttackTargeting> {
        let (aggressors, targeting) = self.find_many_sided(n);
        self.machine.set_workload(
            self.attacker,
            Box::new(HammerPattern::many_sided(aggressors, accesses)),
        )?;
        Ok(targeting)
    }

    /// Arms a Blacksmith-style fuzzed hammer with `n` aggressors
    /// (non-uniform intensities, shuffled schedule). The schedule is
    /// drawn from an explicit fork of the *configuration* seed — not
    /// the machine's ambient stream, whose position depends on how
    /// much simulation already ran — so the same `(seed, n)` always
    /// produces the same schedule, on any worker.
    ///
    /// # Errors
    ///
    /// Propagates workload attachment failures.
    pub fn arm_fuzzed(&mut self, n: usize, accesses: u64) -> Result<AttackTargeting> {
        let rng = DetRng::new(self.machine.config().seed ^ FUZZ_SALT).fork(n as u64);
        self.arm_fuzzed_with(n, accesses, rng)
    }

    /// [`CloudScenario::arm_fuzzed`] with a caller-supplied rng fork
    /// (campaign layers that sweep many schedules per seed).
    ///
    /// # Errors
    ///
    /// Propagates workload attachment failures.
    pub fn arm_fuzzed_with(
        &mut self,
        n: usize,
        accesses: u64,
        rng: DetRng,
    ) -> Result<AttackTargeting> {
        let (aggressors, targeting) = self.find_many_sided(n);
        self.machine.set_workload(
            self.attacker,
            Box::new(hammertime_workloads::FuzzedHammer::generate(
                rng,
                &aggressors,
                accesses,
            )),
        )?;
        Ok(targeting)
    }

    /// Arms a DMA-based double-sided hammer (bypasses cache + PMU).
    ///
    /// # Errors
    ///
    /// Propagates workload attachment failures.
    pub fn arm_dma(&mut self, accesses: u64) -> Result<AttackTargeting> {
        let (above, below, targeting) = self.find_double_sided();
        self.machine.set_workload(
            self.attacker,
            Box::new(DmaHammer::new(0, vec![above, below], accesses)),
        )?;
        Ok(targeting)
    }

    /// Gives the victim a read workload over its own memory (so
    /// enclave integrity checks and corruption observations trigger).
    ///
    /// # Errors
    ///
    /// Propagates allocation/attachment failures.
    pub fn victim_reads(&mut self, accesses: u64) -> Result<()> {
        let rows = self.machine.rows_of_domain(self.victim);
        let arena: Vec<CacheLineAddr> = rows.iter().flat_map(|(_, _, l)| l.clone()).collect();
        self.machine.set_workload(
            self.victim,
            Box::new(StreamWorkload::new(arena, accesses, 0)),
        )
    }

    /// Adds a benign background tenant with the given traffic shape.
    ///
    /// # Errors
    ///
    /// Propagates allocation/attachment failures.
    pub fn add_benign(&mut self, kind: BenignKind, pages: u64, accesses: u64) -> Result<DomainId> {
        let domain = DomainId(self.next_benign);
        self.next_benign += 1;
        let arena = self.machine.add_tenant(domain, pages)?;
        let rng = DetRng::new(self.machine.config().seed ^ domain.0 as u64);
        let workload: Box<dyn hammertime_workloads::Workload> = match kind {
            BenignKind::Stream => Box::new(StreamWorkload::new(arena, accesses, 8)),
            BenignKind::Random => Box::new(RandomWorkload::new(arena, accesses, 0.2, rng)),
            BenignKind::Zipfian => Box::new(ZipfianWorkload::new(arena, accesses, 0.99, rng)),
        };
        self.machine.set_workload(domain, workload)?;
        Ok(domain)
    }

    /// Runs for `windows` refresh windows.
    pub fn run_windows(&mut self, windows: u64) {
        let t_refw = self.machine.config().timing.t_refw;
        self.machine.run(windows * t_refw);
    }

    /// Produces the report.
    pub fn report(&mut self) -> SimReport {
        self.machine.report()
    }
}

/// Background traffic shapes for overhead measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BenignKind {
    /// Sequential sweep.
    Stream,
    /// Uniform random.
    Random,
    /// Zipf-skewed.
    Zipfian,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::DefenseKind;

    #[test]
    fn default_placement_permits_cross_domain_targeting() {
        let s = CloudScenario::build(MachineConfig::fast(DefenseKind::None, 1_000)).unwrap();
        let (_, _, targeting) = s.find_double_sided();
        assert_eq!(targeting, AttackTargeting::CrossDomain);
    }

    #[test]
    fn subarray_isolation_forces_intra_domain() {
        let s = CloudScenario::build(MachineConfig::fast(DefenseKind::SubarrayIsolation, 1_000))
            .unwrap();
        let (_, _, targeting) = s.find_double_sided();
        assert_eq!(targeting, AttackTargeting::IntraDomainOnly);
    }

    #[test]
    fn bank_partition_forces_intra_domain() {
        let s = CloudScenario::build(MachineConfig::fast(
            DefenseKind::BankPartitionIsolation,
            1_000,
        ))
        .unwrap();
        let (_, _, targeting) = s.find_double_sided();
        assert_eq!(targeting, AttackTargeting::IntraDomainOnly);
    }

    #[test]
    fn zebram_guard_forces_intra_domain() {
        let s = CloudScenario::build(MachineConfig::fast(DefenseKind::ZebramGuard, 1_000)).unwrap();
        let (_, _, targeting) = s.find_double_sided();
        assert_eq!(targeting, AttackTargeting::IntraDomainOnly);
    }

    #[test]
    fn many_sided_finds_requested_aggressors() {
        let cfg = MachineConfig::fast(DefenseKind::None, 1_000);
        let mut s = CloudScenario::build_sized(cfg, 8).unwrap();
        let (aggressors, targeting) = s.find_many_sided(6);
        assert!(aggressors.len() >= 4, "got {}", aggressors.len());
        assert_eq!(targeting, AttackTargeting::CrossDomain);
        s.arm_many_sided(6, 100).unwrap();
    }

    #[test]
    fn end_to_end_attack_and_report() {
        let mut s = CloudScenario::build(MachineConfig::fast(DefenseKind::None, 24)).unwrap();
        let targeting = s.arm_double_sided(3_000).unwrap();
        assert_eq!(targeting, AttackTargeting::CrossDomain);
        s.victim_reads(200).unwrap();
        s.run_windows(200);
        let r = s.report();
        assert!(r.flips_cross_domain > 0);
        assert!(r.ops_by_tenant[&2] > 0, "victim made progress");
    }

    #[test]
    fn benign_tenants_add_throughput() {
        let mut s = CloudScenario::build(MachineConfig::fast(DefenseKind::None, 1_000)).unwrap();
        s.add_benign(BenignKind::Stream, 2, 300).unwrap();
        s.add_benign(BenignKind::Random, 2, 300).unwrap();
        s.add_benign(BenignKind::Zipfian, 2, 300).unwrap();
        s.run_windows(500);
        let r = s.report();
        assert_eq!(r.ops_by_tenant[&10], 300);
        assert_eq!(r.ops_by_tenant[&11], 300);
        assert_eq!(r.ops_by_tenant[&12], 300);
    }
}
