//! Unified simulation reports.
//!
//! Every experiment reduces to a [`SimReport`]: security outcomes
//! (flips, cross-domain flips, enclave events), performance (tenant
//! throughput, latency, row-buffer behaviour), and defense cost
//! (maintenance traffic, throttling, locks, migrated pages, SRAM area
//! proxy, energy proxy). The benchmark harness prints these as the
//! rows of each table/figure.

use hammertime_cache::CacheStats;
use hammertime_common::energy::EnergyModel;
use hammertime_dram::DramStats;
use hammertime_memctrl::McStats;
use hammertime_telemetry::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of simulated controller cycles, summed across
/// every [`crate::machine::Machine`] on every thread.
///
/// [`crate::machine::Machine::run`] credits the cycles it advances;
/// throughput harnesses (`--bench-json`, the `step_loop` bench) read
/// the delta around a run to report simulated cycles per wall-second.
static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Current process-wide simulated-cycle count (monotonic; take deltas).
pub fn sim_cycles() -> u64 {
    SIM_CYCLES.load(Ordering::Relaxed)
}

/// Credits `n` simulated cycles to the process-wide counter.
pub(crate) fn credit_sim_cycles(n: u64) {
    if n > 0 {
        SIM_CYCLES.fetch_add(n, Ordering::Relaxed);
    }
}

/// Security + performance + cost outcome of one simulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Defense under test.
    pub defense: String,
    /// Simulated cycles elapsed.
    pub cycles: u64,
    /// Total disturbance bit flips.
    pub flips_total: u64,
    /// Flips whose victim and aggressor belong to different domains.
    pub flips_cross_domain: u64,
    /// Flips per victim domain id.
    pub flips_by_victim: BTreeMap<u32, u64>,
    /// Cross-domain flips per victim domain id (victim owned by the
    /// domain, aggressor owned by a different one). This is the metric
    /// that matters for tenant safety: collateral flips a defense's
    /// own refreshes push into *other* rows are visible in
    /// [`SimReport::flips_cross_domain`] but not here.
    pub flips_cross_by_victim: BTreeMap<u32, u64>,
    /// Operations completed per tenant domain id.
    pub ops_by_tenant: BTreeMap<u32, u64>,
    /// Mitigation-trigger accounting per tenant domain id: every TRR
    /// sample, throttle delay, neighbor refresh, forced REF, and ACT
    /// interrupt the controller charged to the issuing tenant.
    pub triggers_by_tenant: BTreeMap<u32, hammertime_common::TriggerCounts>,
    /// Controller statistics.
    pub mc: McStats,
    /// Device statistics.
    pub dram: DramStats,
    /// LLC statistics.
    pub cache: CacheStats,
    /// Defense-side costs.
    pub overhead: DefenseOverhead,
    /// Energy proxy for the run.
    pub energy: f64,
    /// Platform lockup (enclave integrity DoS), if one occurred.
    pub lockup: Option<String>,
    /// Enclave outcomes keyed by domain id.
    pub enclaves: BTreeMap<u32, String>,
    /// Telemetry metrics snapshot (counters + histograms) taken at
    /// report time. `None` — serialized as `null` — on untraced runs.
    pub metrics: Option<MetricsSnapshot>,
}

/// What the defense cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DefenseOverhead {
    /// Defense actions executed.
    pub actions: u64,
    /// Victim-refresh operations (instruction or REF_NEIGHBORS).
    pub refresh_ops: u64,
    /// Convoluted (flush+load) refresh attempts.
    pub convoluted_refreshes: u64,
    /// Cache lines locked.
    pub lines_locked: u64,
    /// Lock failures that fell back to remapping.
    pub lock_fallbacks: u64,
    /// Pages migrated (remap defense).
    pub pages_remapped: u64,
    /// Cache-line copies performed by migrations.
    pub remap_copy_lines: u64,
    /// Frames retired to quarantine.
    pub frames_retired: u64,
    /// Frames lost to guard rows (ZebRAM).
    pub guard_frames: u64,
    /// ACT interrupts delivered to software.
    pub interrupts: u64,
    /// Throttle stall cycles imposed by the MC mitigation.
    pub throttle_cycles: u64,
    /// ACTs throttled by BreakHammer's per-tenant quota (a subset of
    /// the throttle work `throttle_cycles` prices).
    pub quota_throttles: u64,
    /// SRAM/CAM area proxy of the hardware mitigation, bits.
    pub sram_bits: u64,
}

impl SimReport {
    /// Total tenant operations completed.
    pub fn total_ops(&self) -> u64 {
        self.ops_by_tenant.values().sum()
    }

    /// Aggregate throughput in operations per kilocycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_ops() as f64 * 1000.0 / self.cycles as f64
        }
    }

    /// Throughput of one tenant in operations per kilocycle.
    pub fn tenant_throughput(&self, domain: u32) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.ops_by_tenant.get(&domain).copied().unwrap_or(0) as f64 * 1000.0 / self.cycles as f64
    }

    /// Cross-domain flips that landed on `domain`'s memory.
    pub fn cross_flips_against(&self, domain: u32) -> u64 {
        self.flips_cross_by_victim
            .get(&domain)
            .copied()
            .unwrap_or(0)
    }

    /// Whether the run ended with the attack fully defeated.
    pub fn attack_defeated(&self) -> bool {
        self.flips_cross_domain == 0 && self.lockup.is_none()
    }

    /// Computes and stores the energy proxy.
    pub fn finalize_energy(&mut self, model: &EnergyModel) {
        self.energy = self.dram.energy(model, self.cycles);
    }

    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "{:<26} flips={:<6} xdom={:<6} thrpt={:>8.2} ops/kcyc lat={:>7.1} cyc energy={:.2e}",
            self.defense,
            self.flips_total,
            self.flips_cross_domain,
            self.throughput(),
            self.mc.mean_latency(),
            self.energy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let mut r = SimReport {
            cycles: 2_000,
            ..Default::default()
        };
        r.ops_by_tenant.insert(1, 100);
        r.ops_by_tenant.insert(2, 300);
        assert_eq!(r.total_ops(), 400);
        assert!((r.throughput() - 200.0).abs() < 1e-9);
        assert!((r.tenant_throughput(1) - 50.0).abs() < 1e-9);
        assert_eq!(r.tenant_throughput(9), 0.0);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let r = SimReport::default();
        assert_eq!(r.throughput(), 0.0);
        assert!(r.attack_defeated());
    }

    #[test]
    fn attack_defeated_requires_no_cross_domain_flips_and_no_lockup() {
        let mut r = SimReport::default();
        assert!(r.attack_defeated());
        r.flips_cross_domain = 1;
        assert!(!r.attack_defeated());
        r.flips_cross_domain = 0;
        r.lockup = Some("integrity".into());
        assert!(!r.attack_defeated());
    }

    #[test]
    fn energy_finalization_uses_dram_stats() {
        let mut r = SimReport {
            cycles: 1_000,
            ..Default::default()
        };
        r.dram.acts = 100;
        r.finalize_energy(&EnergyModel::ddr4());
        assert!(r.energy > 0.0);
    }

    #[test]
    fn summary_contains_key_fields() {
        let r = SimReport {
            defense: "oracle".into(),
            ..SimReport::default()
        };
        let s = r.summary();
        assert!(s.contains("oracle") && s.contains("flips="));
    }

    #[test]
    fn report_serializes() {
        let r = SimReport::default();
        let json = serde_json::to_string(&r).unwrap();
        let _back: SimReport = serde_json::from_str(&json).unwrap();
    }
}
