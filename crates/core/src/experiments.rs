//! The evaluation suite: every table and figure of the reproduction.
//!
//! The paper defers quantitative evaluation to future work (§4); this
//! module *is* that evaluation, per the experiment index in DESIGN.md.
//! Each function regenerates one table/figure as an [`ExpTable`] the
//! benchmark harness prints and EXPERIMENTS.md records.
//!
//! All experiments run on the compressed "fast" machine scale
//! (medium geometry, compressed timing, scaled-down MACs) so the whole
//! suite completes in seconds; EXPERIMENTS.md documents the scaling
//! and why it preserves each claim's *shape*. `quick` mode further
//! shrinks access counts for use in unit tests.

use crate::machine::{Machine, MachineConfig};
use crate::scenario::{AttackTargeting, BenignKind, CloudScenario};
use crate::taxonomy::DefenseKind;
use hammertime_common::{DomainId, Result};
use hammertime_dram::DisturbanceProfile;
use hammertime_memctrl::mitigation::McMitigationConfig;
use hammertime_os::{AdjacencyMap, AttackResponse};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A rendered experiment result: one table or figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpTable {
    /// Experiment id (e.g. "E2").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl ExpTable {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> ExpTable {
        ExpTable {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.columns.len());
        self.rows.push(row);
    }

    /// Finds the value at (`row` matching first column, `column`).
    pub fn get(&self, first_col: &str, column: &str) -> Option<&str> {
        let ci = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|r| r[0] == first_col)
            .map(|r| r[ci].as_str())
    }
}

impl fmt::Display for ExpTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.columns)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

fn fmt_f(v: f64) -> String {
    format!("{v:.2}")
}

/// The standard fast-scale MAC used across experiments.
pub const FAST_MAC: u64 = 24;

fn accesses(quick: bool) -> u64 {
    if quick {
        2_500
    } else {
        8_000
    }
}

fn run_attack(
    defense: DefenseKind,
    mac: u64,
    arm: impl FnOnce(&mut CloudScenario) -> Result<AttackTargeting>,
    quick: bool,
) -> Result<crate::metrics::SimReport> {
    let cfg = MachineConfig::fast(defense, mac);
    let mut s = CloudScenario::build_sized(cfg, 4)?;
    arm(&mut s)?;
    s.victim_reads(if quick { 100 } else { 400 })?;
    let windows = if quick { 40 } else { 150 };
    s.run_windows(windows);
    Ok(s.report())
}

fn run_benign(defense: DefenseKind, mac: u64, quick: bool) -> Result<crate::metrics::SimReport> {
    use hammertime_common::DetRng;
    use hammertime_workloads::{RandomWorkload, StreamWorkload, ZipfianWorkload};
    let cfg = MachineConfig::fast(defense, mac);
    let windows = if quick { 100 } else { 400 };
    let t_refw = cfg.timing.t_refw;
    let n = accesses(quick) / 4;
    let mut m = Machine::new(cfg)?;
    let seed = m.config().seed;
    let a1 = m.add_tenant(DomainId(1), 2)?;
    let a2 = m.add_tenant(DomainId(2), 2)?;
    let a3 = m.add_tenant(DomainId(3), 2)?;
    m.set_workload(DomainId(1), Box::new(StreamWorkload::new(a1, n, 8)))?;
    m.set_workload(
        DomainId(2),
        Box::new(RandomWorkload::new(a2, n, 0.2, DetRng::new(seed ^ 2))),
    )?;
    m.set_workload(
        DomainId(3),
        Box::new(ZipfianWorkload::new(a3, n, 0.99, DetRng::new(seed ^ 3))),
    )?;
    // Run to completion (makespan), capped at the window budget so a
    // throttled/broken configuration still terminates.
    for _ in 0..windows {
        m.run(t_refw);
        if m.all_finished() {
            break;
        }
    }
    Ok(m.report())
}

/// **T1** (paper Table 1): the primitive × defense matrix. For every
/// defense in the catalog, does it stop each attack class, and what
/// does benign traffic pay?
pub fn t1_defense_matrix(quick: bool) -> Result<ExpTable> {
    let mut t = ExpTable::new(
        "T1",
        "Defense matrix: cross-domain flips per attack, benign throughput",
        &[
            "defense",
            "class",
            "locus",
            "double-sided",
            "many-sided(6)",
            "dma",
            "benign ops/kcyc",
        ],
    );
    let n = accesses(quick);
    for defense in DefenseKind::catalog(FAST_MAC) {
        let double = run_attack(defense, FAST_MAC, |s| s.arm_double_sided(n), quick)?;
        let many = run_attack(defense, FAST_MAC, |s| s.arm_many_sided(6, n), quick)?;
        let dma = run_attack(defense, FAST_MAC, |s| s.arm_dma(n), quick)?;
        let benign = run_benign(defense, FAST_MAC, quick)?;
        t.push(vec![
            defense.name().to_string(),
            defense
                .class()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
            defense
                .locus()
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
            double.cross_flips_against(2).to_string(),
            many.cross_flips_against(2).to_string(),
            dma.cross_flips_against(2).to_string(),
            fmt_f(benign.throughput()),
        ]);
    }
    Ok(t)
}

/// **F1** (paper Fig. 1): row-buffer semantics — measured latency of
/// hit, miss (empty bank), and conflict accesses.
pub fn f1_rowbuffer() -> Result<ExpTable> {
    use hammertime_common::{CacheLineAddr, Cycle, RequestSource};
    use hammertime_dram::DramConfig;
    use hammertime_memctrl::request::{MemRequest, RequestKind};
    use hammertime_memctrl::{MemCtrl, MemCtrlConfig};

    let mut t = ExpTable::new(
        "F1",
        "Row-buffer behaviour (DDR4-2400 command-clock cycles)",
        &["access type", "commands", "latency (cycles)"],
    );
    let mut dram_cfg = DramConfig::test_config(1_000_000);
    dram_cfg.geometry = hammertime_common::Geometry::medium();
    dram_cfg.timing = hammertime_dram::TimingParams::ddr4_2400();
    let mut mc = MemCtrl::new(MemCtrlConfig::baseline(), dram_cfg, 1)?;
    let g = *mc.map().geometry();
    let stripe = g.total_lines() / g.rows_per_bank() as u64;
    let submit = |mc: &mut MemCtrl, id: u64, line: u64| {
        mc.submit(MemRequest {
            id,
            line: CacheLineAddr(line),
            kind: RequestKind::Read,
            source: RequestSource::Core(0),
            domain: DomainId(1),
            arrival: mc.now(),
        })
        .expect("submit");
    };
    // Miss on an empty bank.
    submit(&mut mc, 1, 0);
    mc.drain();
    let miss = mc.drain_completions()[0].latency();
    // Hit on the now-open row.
    submit(&mut mc, 2, 4); // same row, next column under interleave
    mc.drain();
    let hit_c = mc.drain_completions();
    let hit = hit_c[0].latency();
    assert!(hit_c[0].row_hit);
    // Conflict: different row, same bank.
    submit(&mut mc, 3, stripe);
    mc.drain();
    let conflict = mc.drain_completions()[0].latency();
    let _ = Cycle::ZERO;
    t.push(vec!["row-buffer hit".into(), "RD".into(), hit.to_string()]);
    t.push(vec![
        "empty-bank miss".into(),
        "ACT+RD".into(),
        miss.to_string(),
    ]);
    t.push(vec![
        "row conflict".into(),
        "PRE+ACT+RD".into(),
        conflict.to_string(),
    ]);
    Ok(t)
}

/// **F2** (paper Fig. 2): subarray-isolated interleaving keeps the
/// bank-level-parallelism benefit of full interleaving while zeroing
/// cross-domain flips; bank partitioning sacrifices the parallelism.
///
/// Bank-level parallelism only shows under queue depth, so the benign
/// probe batch-submits random reads straight to the controller and
/// measures the makespan — the memory system's achievable random
/// throughput, independent of core-side pacing (cf. \[49\]'s >18%
/// parallelism benefit).
pub fn f2_interleaving(quick: bool) -> Result<ExpTable> {
    use hammertime_common::{Cycle, RequestSource};
    use hammertime_memctrl::request::{MemRequest, RequestKind};
    let mut t = ExpTable::new(
        "F2",
        "Interleaving schemes: random-batch throughput vs cross-domain flips",
        &[
            "scheme",
            "batch makespan (cyc)",
            "reads/kcyc",
            "attack xdom flips",
            "targeting",
        ],
    );
    let batch = if quick { 512 } else { 2_048 };
    for defense in [
        DefenseKind::None,
        DefenseKind::BankPartitionIsolation,
        DefenseKind::SubarrayIsolation,
    ] {
        // Benign probe at the controller: `batch` uniform random reads
        // over one tenant's 8 pages, all queued at cycle 0, served to
        // completion. The makespan is the latest data burst.
        use hammertime_memctrl::addrmap::MappingScheme;
        use hammertime_memctrl::{MemCtrl, MemCtrlConfig};
        let mapping = match defense {
            DefenseKind::BankPartitionIsolation => MappingScheme::BankPartition,
            DefenseKind::SubarrayIsolation => MappingScheme::SubarrayIsolated,
            _ => MappingScheme::CacheLineInterleave,
        };
        let mut mc_cfg = MemCtrlConfig::baseline();
        mc_cfg.mapping = mapping;
        mc_cfg.queue_capacity = 1 << 16;
        let mut dram_cfg = hammertime_dram::DramConfig::test_config(1_000_000);
        // Server geometry: 32 banks. Under bank partitioning, one
        // domain's region is one bank's worth of frames (the first
        // 8192); under (subarray-isolated) interleaving the same
        // frames spread across every bank. Random accesses over that
        // region are row-distinct, the irregular pattern of [49].
        dram_cfg.geometry = hammertime_common::Geometry::server();
        dram_cfg.timing = hammertime_dram::TimingParams::tiny_wide();
        let g = dram_cfg.geometry;
        let frames_per_bank =
            g.rows_per_bank() as u64 * g.columns as u64 / hammertime_common::addr::LINES_PER_PAGE;
        let mut mc = MemCtrl::new(mc_cfg, dram_cfg, 7)?;
        let lines_per_frame = 64u64;
        let mut rng = hammertime_common::DetRng::new(7);
        for i in 0..batch {
            let frame = rng.below(frames_per_bank);
            let line = hammertime_common::CacheLineAddr(
                frame * lines_per_frame + rng.below(lines_per_frame),
            );
            mc.submit(MemRequest {
                id: i,
                line,
                kind: RequestKind::Read,
                source: RequestSource::Core(0),
                domain: DomainId(1),
                arrival: Cycle::ZERO,
            })?;
        }
        mc.drain();
        let makespan = mc
            .drain_completions()
            .iter()
            .map(|c| c.done.raw())
            .max()
            .unwrap_or(1)
            .max(1);
        let n = accesses(quick);
        let cfg = MachineConfig::fast(defense, FAST_MAC);
        let mut s = CloudScenario::build_sized(cfg, 4)?;
        let targeting = s.arm_double_sided(n)?;
        s.run_windows(if quick { 40 } else { 150 });
        let attack = s.report();
        t.push(vec![
            defense.name().to_string(),
            makespan.to_string(),
            fmt_f(batch as f64 * 1000.0 / makespan as f64),
            attack.cross_flips_against(2).to_string(),
            format!("{targeting:?}"),
        ]);
    }
    Ok(t)
}

/// **E1** (§3): the worsening-Rowhammer trend — flips and
/// time-to-first-flip across DRAM generations (MACs scaled 1/1000 for
/// tractable runs; ratios preserved).
pub fn e1_generations(quick: bool) -> Result<ExpTable> {
    let mut t = ExpTable::new(
        "E1",
        "DRAM generations: same attack, worsening outcomes (MAC/1000 scale)",
        &[
            "generation",
            "mac",
            "blast radius",
            "flips",
            "first flip (cycles)",
            "victim rows hit",
        ],
    );
    for (name, profile) in DisturbanceProfile::generations() {
        let scaled = profile.scaled_down(1_000);
        let mut cfg = MachineConfig::fast(DefenseKind::None, scaled.mac);
        cfg.disturbance = DisturbanceProfile {
            mac: scaled.mac.max(4),
            flip_prob: 1.0,
            ..scaled
        };
        cfg.assumed_radius = scaled.blast_radius;
        let mut s = CloudScenario::build_sized(cfg, 4)?;
        s.arm_double_sided(accesses(quick))?;
        s.run_windows(if quick { 40 } else { 150 });
        let mut first = None;
        let flips = s.machine.drain_annotated_flips();
        let mut victims = std::collections::HashSet::new();
        for f in &flips {
            first = Some(first.map_or(f.time.raw(), |t: u64| t.min(f.time.raw())));
            victims.insert((f.flat_bank, f.victim_row));
        }
        t.push(vec![
            name.to_string(),
            cfg_mac_string(scaled.mac.max(4)),
            scaled.blast_radius.to_string(),
            flips.len().to_string(),
            first.map(|f| f.to_string()).unwrap_or_else(|| "-".into()),
            victims.len().to_string(),
        ]);
    }
    Ok(t)
}

fn cfg_mac_string(mac: u64) -> String {
    mac.to_string()
}

/// **E2** (§3): TRRespass — flips vs. aggressor count against an
/// in-DRAM TRR with a fixed-size tracker. Zero flips while the
/// tracker covers the aggressors; bypass beyond.
pub fn e2_trr_bypass(quick: bool) -> Result<ExpTable> {
    let mut t = ExpTable::new(
        "E2",
        "TRR bypass: flips vs aggressor count (tracker size 4)",
        &["aggressors", "total flips", "xdom flips", "trr refreshes"],
    );
    let counts: &[usize] = if quick {
        &[2, 6, 12]
    } else {
        &[2, 3, 4, 6, 8, 12, 16]
    };
    for &n_aggr in counts {
        let cfg = MachineConfig::fast(DefenseKind::InDramTrr { table_size: 4 }, FAST_MAC);
        let mut s = CloudScenario::build_sized(cfg, 16)?;
        s.arm_many_sided(n_aggr, accesses(quick) * 2)?;
        s.run_windows(if quick { 80 } else { 300 });
        let r = s.report();
        t.push(vec![
            n_aggr.to_string(),
            r.flips_total.to_string(),
            r.flips_cross_domain.to_string(),
            r.dram.trr_refresh_rows.to_string(),
        ]);
    }
    Ok(t)
}

/// **E3** (§1/§4.2): the ANVIL DMA blind spot — PMU-based defense vs
/// MC-counter-based defense against CPU and DMA hammers.
pub fn e3_dma_blindspot(quick: bool) -> Result<ExpTable> {
    let mut t = ExpTable::new(
        "E3",
        "DMA blind spot: xdom flips under CPU vs DMA attack",
        &["defense", "cpu attack", "dma attack", "defense refreshes"],
    );
    let n = accesses(quick);
    for defense in [
        DefenseKind::None,
        DefenseKind::Anvil { miss_threshold: 2 },
        DefenseKind::VictimRefreshInstr,
    ] {
        let cpu = run_attack(defense, FAST_MAC, |s| s.arm_double_sided(n), quick)?;
        let dma = run_attack(defense, FAST_MAC, |s| s.arm_dma(n), quick)?;
        t.push(vec![
            defense.name().to_string(),
            cpu.cross_flips_against(2).to_string(),
            dma.cross_flips_against(2).to_string(),
            (cpu.overhead.refresh_ops
                + cpu.overhead.convoluted_refreshes
                + dma.overhead.refresh_ops
                + dma.overhead.convoluted_refreshes)
                .to_string(),
        ]);
    }
    Ok(t)
}

/// **E4** (§4.2): frequency-centric defenses — remapping and line
/// locking under a straight hammer, and counter-pacing evasion vs the
/// randomized-reset countermeasure.
pub fn e4_frequency(quick: bool) -> Result<ExpTable> {
    use hammertime_workloads::HammerPattern;
    let mut t = ExpTable::new(
        "E4",
        "Frequency-centric defenses and counter evasion",
        &[
            "scenario",
            "xdom flips",
            "remaps/refreshes",
            "locks",
            "interrupts",
        ],
    );
    let n = accesses(quick);
    // Straight hammers vs both defenses.
    for defense in [DefenseKind::AggressorRemap, DefenseKind::LineLocking] {
        let r = run_attack(defense, FAST_MAC, |s| s.arm_double_sided(n), quick)?;
        t.push(vec![
            format!("{} vs double-sided", defense.name()),
            r.cross_flips_against(2).to_string(),
            r.overhead.pages_remapped.to_string(),
            r.overhead.lines_locked.to_string(),
            r.overhead.interrupts.to_string(),
        ]);
    }
    // Evasion: paced attack against deterministic vs randomized resets.
    // The defense is victim-refresh (its maintenance ACTs don't feed
    // the counters, so the attacker's phase tracking stays intact —
    // the cleanest demonstration of the evasion).
    for (label, randomize) in [
        ("paced vs fixed reset", false),
        ("paced vs randomized reset", true),
    ] {
        let mut cfg = MachineConfig::fast(DefenseKind::VictimRefreshInstr, FAST_MAC);
        cfg.randomize_counter_resets = randomize;
        let threshold = cfg.disturbance.mac / 8; // matches machine auto-threshold
        let mut s = CloudScenario::build_sized(cfg, 4)?;
        // Extra attacker pages so a decoy row exists far from the
        // aggressors in the same bank.
        s.machine.add_tenant(s.attacker, 8)?;
        let (above, below, _) = s.find_double_sided();
        // The attacker knows the threshold and inserts a decoy access
        // right where the counter overflows, so the reported address
        // is the decoy, not the aggressors. The decoy must live in the
        // same bank as the aggressors (so it row-conflicts and its
        // access really is an ACT) but outside their neighborhood.
        let decoy = {
            let rows = s.machine.rows_of_domain(s.attacker);
            let (bank_a, row_a) = s
                .machine
                .translate(s.attacker, above)
                .and_then(|p| s.machine.mc().locate(p))
                .expect("aggressor locates");
            rows.iter()
                .find(|(b, r, _)| *b == bank_a && r.abs_diff(row_a) > 4)
                .map(|(_, _, l)| l[0])
                .expect("attacker owns a far row in the bank")
        };
        // Period must equal the counter threshold so the decoy access
        // is always the one that overflows the (predictable) counter.
        let pattern = HammerPattern::double_sided(above, below, n)
            .paced(threshold.saturating_sub(1).max(1), decoy);
        s.machine.set_workload(s.attacker, Box::new(pattern))?;
        s.run_windows(if quick { 40 } else { 150 });
        let r = s.report();
        t.push(vec![
            label.to_string(),
            r.cross_flips_against(2).to_string(),
            r.overhead.refresh_ops.to_string(),
            r.overhead.lines_locked.to_string(),
            r.overhead.interrupts.to_string(),
        ]);
    }
    Ok(t)
}

/// **E5** (§4.3): refresh mechanisms — the proposed instruction vs
/// REF_NEIGHBORS vs the convoluted flush+load path, plus the
/// blast-radius adaptability sweep.
pub fn e5_refresh(quick: bool) -> Result<ExpTable> {
    let mut t = ExpTable::new(
        "E5",
        "Refresh mechanisms: effectiveness and cost",
        &[
            "mechanism",
            "assumed radius",
            "xdom flips",
            "refresh ops",
            "convoluted ops",
            "mean latency",
        ],
    );
    let n = accesses(quick);
    let cases = [
        (DefenseKind::VictimRefreshInstr, 2u32),
        (DefenseKind::VictimRefreshRefNeighbors, 2),
        (DefenseKind::VictimRefreshConvoluted, 2),
        // Radius mismatch: software believes radius 1, module is 2.
        (DefenseKind::VictimRefreshInstr, 1),
        (DefenseKind::VictimRefreshRefNeighbors, 1),
    ];
    for (defense, assumed) in cases {
        let mut cfg = MachineConfig::fast(defense, FAST_MAC);
        cfg.assumed_radius = assumed;
        let mut s = CloudScenario::build_sized(cfg, 4)?;
        s.arm_double_sided(n)?;
        s.add_benign(BenignKind::Random, 2, n / 4)?;
        s.run_windows(if quick { 40 } else { 150 });
        let r = s.report();
        t.push(vec![
            defense.name().to_string(),
            assumed.to_string(),
            r.cross_flips_against(2).to_string(),
            r.overhead.refresh_ops.to_string(),
            r.overhead.convoluted_refreshes.to_string(),
            fmt_f(r.mc.mean_latency()),
        ]);
    }
    Ok(t)
}

/// **E6** (§3): scalability — hardware tracker SRAM vs MAC, against
/// the flat footprint of the software primitives. Area is computed
/// for a server-scale system (32 banks x 64 K rows); entries scale as
/// the number of rows that can reach the threshold within a refresh
/// window.
pub fn e6_scaling() -> Result<ExpTable> {
    let mut t = ExpTable::new(
        "E6",
        "Hardware tracker SRAM (bits) vs MAC; software cost stays flat",
        &[
            "mac",
            "graphene bits",
            "blockhammer bits",
            "twice bits",
            "per-row oracle bits",
            "sw defense bits",
        ],
    );
    let banks: u64 = 32;
    let rows_per_bank: u32 = 65_536;
    // DDR4-2400 hammer budget per window.
    let budget = hammertime_dram::TimingParams::ddr4_2400().max_acts_per_window();
    for mac in [139_000u64, 50_000, 16_000, 10_000, 4_800, 1_000] {
        // A tracker must hold every row that could reach mac/2 within
        // one window: budget / (mac/2) entries (Graphene's bound).
        let entries = ((budget * 2) / mac).max(1) as usize;
        let graphene = McMitigationConfig::Graphene {
            table_size: entries,
            threshold: mac / 2,
            radius: 2,
        }
        .sram_bits(banks, rows_per_bank);
        // BlockHammer sizes its CBF so false-positive throttling stays
        // low: counters scale with the same bound (x8 headroom).
        let blockhammer = McMitigationConfig::BlockHammer {
            cbf_counters: entries * 8,
            hashes: 3,
            threshold: mac / 2,
            delay: 1_000,
            epoch: 1,
        }
        .sram_bits(banks, rows_per_bank);
        let twice = McMitigationConfig::TwiceLite {
            table_size: entries,
            threshold: mac / 2,
            radius: 2,
            prune_interval: 1,
        }
        .sram_bits(banks, rows_per_bank);
        let oracle = McMitigationConfig::Oracle {
            fraction: 0.7,
            mac,
            radius: 2,
        }
        .sram_bits(banks, rows_per_bank);
        t.push(vec![
            mac.to_string(),
            graphene.to_string(),
            blockhammer.to_string(),
            twice.to_string(),
            oracle.to_string(),
            // The software defenses need only the ACT counter block:
            // one counter + one address register per channel.
            (2u64 * (64 + 64)).to_string(),
        ]);
    }
    Ok(t)
}

/// **E7** (§2.1/§4.1): inference of subarray boundaries and internal
/// remaps from hammer-probe outcomes.
pub fn e7_inference(quick: bool) -> Result<ExpTable> {
    use hammertime_common::geometry::BankId;
    let mut t = ExpTable::new(
        "E7",
        "Subarray-boundary and remap inference accuracy",
        &[
            "remap fraction",
            "boundaries found",
            "boundary precision",
            "boundary recall",
            "remap suspects",
            "remap recall",
        ],
    );
    for remap_fraction in [0.0, 0.06] {
        let mut cfg = MachineConfig::fast(DefenseKind::None, 12);
        cfg.remap = hammertime_dram::remap::RemapConfig {
            remap_fraction,
            within_subarray: true,
        };
        let mut m = Machine::new(cfg)?;
        let g = m.config().geometry;
        let bank = BankId {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
        };
        let rows = if quick {
            g.rows_per_subarray * 2
        } else {
            g.rows_per_bank()
        };
        let rps = g.rows_per_subarray;
        let rounds = 40;
        let mut probe = |r: u32| -> Vec<u32> {
            // Dummy far away in the same subarray region space.
            let dummy = if r % g.rows_per_bank() < rps {
                (r + rps / 2) % g.rows_per_bank()
            } else {
                r - rps / 2
            };
            let flips = m.probe_hammer(&bank, r, dummy, rounds).unwrap_or_default();
            flips
                .into_iter()
                .filter(|f| f.aggressor_row == r)
                .map(|f| f.victim_row)
                .collect()
        };
        let map = AdjacencyMap::build(rows, &mut probe);
        let found = map.infer_boundaries(rows);
        let truth: Vec<u32> = (1..rows).filter(|p| p % rps == 0).collect();
        let tp = found.iter().filter(|p| truth.contains(p)).count();
        let precision = if found.is_empty() {
            1.0
        } else {
            tp as f64 / found.len() as f64
        };
        let recall = if truth.is_empty() {
            1.0
        } else {
            tp as f64 / truth.len() as f64
        };
        let suspects = map.infer_remap_suspects(m.config().disturbance.blast_radius);
        let truth_remapped: Vec<u32> = m
            .mc()
            .dram()
            .remapped_logical_rows(&bank)
            .into_iter()
            .filter(|&r| r < rows)
            .collect();
        let remap_tp = suspects
            .iter()
            .filter(|s| truth_remapped.contains(s))
            .count();
        let remap_recall = if truth_remapped.is_empty() {
            1.0
        } else {
            remap_tp as f64 / truth_remapped.len() as f64
        };
        t.push(vec![
            fmt_f(remap_fraction),
            found.len().to_string(),
            fmt_f(precision),
            fmt_f(recall),
            suspects.len().to_string(),
            fmt_f(remap_recall),
        ]);
    }
    Ok(t)
}

/// **E8** (§4.4): enclave outcomes — integrity-checked memory turns
/// corruption into DoS; unchecked memory needs enclave-visible
/// interrupts to stay safe.
pub fn e8_enclave(quick: bool) -> Result<ExpTable> {
    let mut t = ExpTable::new(
        "E8",
        "Enclave memory under attack",
        &[
            "configuration",
            "outcome",
            "lockup",
            "xdom flips",
            "enclave interrupts",
        ],
    );
    let n = accesses(quick);
    let cases: [(&str, bool, AttackResponse, bool); 4] = [
        (
            "integrity-checked, ignore",
            true,
            AttackResponse::Ignore,
            false,
        ),
        ("unchecked, ignore", false, AttackResponse::Ignore, false),
        (
            "unchecked, exit-on-interrupt",
            false,
            AttackResponse::Exit,
            true,
        ),
        (
            "unchecked, remap-on-interrupt",
            false,
            AttackResponse::RequestRemap,
            true,
        ),
    ];
    for (label, checked, response, counters) in cases {
        // MAC above the victim's own per-window activation count, so
        // self-reads under attacker-induced row conflicts don't flip
        // the victim's relocated pages (a fast-scale artifact real
        // MACs are orders of magnitude above).
        let mut cfg = MachineConfig::fast(DefenseKind::None, 64);
        cfg.force_act_counters = counters;
        let mut s = CloudScenario::build_sized(cfg, 4)?;
        let victim = s.victim;
        s.machine.make_enclave(victim, checked, response);
        s.arm_double_sided(n)?;
        s.victim_reads(if quick { 300 } else { 1_000 })?;
        s.run_windows(if quick { 40 } else { 150 });
        let enclave_ints = s
            .machine
            .enclave(victim)
            .map(|e| e.interrupts_seen)
            .unwrap_or(0);
        let status = s
            .machine
            .enclave(victim)
            .map(|e| format!("{:?}", e.status))
            .unwrap_or_default();
        let r = s.report();
        t.push(vec![
            label.to_string(),
            status,
            r.lockup.is_some().to_string(),
            r.cross_flips_against(2).to_string(),
            enclave_ints.to_string(),
        ]);
    }
    Ok(t)
}

/// **E9**: the practicality axis — benign throughput, latency, and
/// energy under every defense (no attack running).
pub fn e9_overhead(quick: bool) -> Result<ExpTable> {
    let mut t = ExpTable::new(
        "E9",
        "Benign overhead per defense (no attack)",
        &[
            "defense",
            "ops/kcyc",
            "mean latency",
            "energy",
            "extra refreshes",
            "throttle cycles",
        ],
    );
    let mut baseline_energy = None;
    for defense in DefenseKind::catalog(FAST_MAC) {
        let r = run_benign(defense, FAST_MAC, quick)?;
        if defense == DefenseKind::None {
            baseline_energy = Some(r.energy);
        }
        let _ = baseline_energy;
        t.push(vec![
            defense.name().to_string(),
            fmt_f(r.throughput()),
            fmt_f(r.mc.mean_latency()),
            format!("{:.3e}", r.energy),
            (r.dram.ref_neighbor_rows + r.dram.trr_refresh_rows + r.overhead.refresh_ops)
                .to_string(),
            r.overhead.throttle_cycles.to_string(),
        ]);
    }
    Ok(t)
}

/// Convenience: run the entire suite (quick scale) and return every
/// table, in experiment order.
pub fn run_all(quick: bool) -> Result<Vec<ExpTable>> {
    Ok(vec![
        t1_defense_matrix(quick)?,
        f1_rowbuffer()?,
        f2_interleaving(quick)?,
        e1_generations(quick)?,
        e2_trr_bypass(quick)?,
        e3_dma_blindspot(quick)?,
        e4_frequency(quick)?,
        e5_refresh(quick)?,
        e6_scaling()?,
        e7_inference(quick)?,
        e8_enclave(quick)?,
        e9_overhead(quick)?,
        e10_ecc(quick)?,
        e11_page_policy(quick)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_latency_ordering() {
        let t = f1_rowbuffer().unwrap();
        let get = |k: &str| -> u64 { t.get(k, "latency (cycles)").unwrap().parse().unwrap() };
        let hit = get("row-buffer hit");
        let miss = get("empty-bank miss");
        let conflict = get("row conflict");
        assert!(hit < miss, "hit {hit} must beat miss {miss}");
        assert!(miss < conflict, "miss {miss} must beat conflict {conflict}");
    }

    #[test]
    fn e6_sram_grows_as_mac_shrinks() {
        let t = e6_scaling().unwrap();
        let col = |row: usize, name: &str| -> u64 {
            let ci = t.columns.iter().position(|c| c == name).unwrap();
            t.rows[row][ci].parse().unwrap()
        };
        for name in ["graphene bits", "blockhammer bits", "twice bits"] {
            for w in 0..t.rows.len() - 1 {
                assert!(
                    col(w + 1, name) >= col(w, name),
                    "{name} must not shrink as MAC drops"
                );
            }
            assert!(
                col(t.rows.len() - 1, name) > col(0, name) * 10,
                "{name} must grow by >10x across the sweep"
            );
        }
        // Software cost is constant.
        let sw0 = col(0, "sw defense bits");
        let swn = col(t.rows.len() - 1, "sw defense bits");
        assert_eq!(sw0, swn);
    }

    #[test]
    fn e1_trend_worsens() {
        let t = e1_generations(true).unwrap();
        let flips: Vec<u64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        // Even the DDR3-era module flips (the original Rowhammer
        // finding), but successive generations flip far more, faster.
        assert!(flips[0] > 0, "DDR3 flips too (Kim et al. '14): {flips:?}");
        assert!(
            flips.windows(2).all(|w| w[1] >= w[0]),
            "flips must be monotone non-decreasing across generations: {flips:?}"
        );
        assert!(
            *flips.last().unwrap() > flips[0] * 10,
            "future node must flip >10x more than DDR3: {flips:?}"
        );
        let first_flip: Vec<u64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(
            first_flip.first() > first_flip.last(),
            "time-to-first-flip must shrink: {first_flip:?}"
        );
    }

    #[test]
    fn f2_subarray_isolation_keeps_parallelism() {
        let t = f2_interleaving(true).unwrap();
        let get = |scheme: &str, col: &str| -> f64 { t.get(scheme, col).unwrap().parse().unwrap() };
        let interleave = get("none", "reads/kcyc");
        let partition = get("bank-partition", "reads/kcyc");
        let subarray = get("subarray-isolation", "reads/kcyc");
        // The paper's middle ground: subarray isolation keeps the full
        // interleaving throughput (>18% over partitioning per [49];
        // here the gap is far larger) while also isolating.
        assert!(
            interleave > partition * 1.18,
            "interleaving benefit missing: {interleave} vs {partition}"
        );
        assert!(
            (subarray - interleave).abs() / interleave < 0.05,
            "subarray isolation must not cost parallelism: {subarray} vs {interleave}"
        );
        assert_eq!(
            t.get("subarray-isolation", "attack xdom flips").unwrap(),
            "0"
        );
        assert_ne!(t.get("none", "attack xdom flips").unwrap(), "0");
    }

    #[test]
    fn e10_ecc_masks_isolated_flips_only() {
        let t = e10_ecc(true).unwrap();
        let get = |row: usize, col: &str| -> u64 {
            let ci = t.columns.iter().position(|c| c == col).unwrap();
            t.rows[row][ci].parse().unwrap()
        };
        // Rows: [None/short, None/long, SecDed/short, SecDed/long].
        // Raw damage identical between modes at equal attack length.
        assert_eq!(get(0, "raw flips"), get(2, "raw flips"));
        assert_eq!(get(1, "raw flips"), get(3, "raw flips"));
        // Without ECC everything is visible.
        assert_eq!(
            get(0, "visible corrupted lines"),
            get(0, "damaged victim lines")
        );
        // SEC-DED hides the short attack entirely...
        assert!(get(2, "damaged victim lines") > 0);
        assert_eq!(get(2, "visible corrupted lines"), 0);
        // ...but the sustained attack overwhelms it.
        assert!(get(3, "visible corrupted lines") > 0);
    }

    #[test]
    fn e11_closed_page_is_not_a_defense() {
        let t = e11_page_policy(true).unwrap();
        let get = |row: usize, col: &str| -> f64 {
            let ci = t.columns.iter().position(|c| c == col).unwrap();
            t.rows[row][ci].parse().unwrap()
        };
        // Closed-page destroys benign row-buffer locality...
        assert!(get(1, "benign row hits") < get(0, "benign row hits") / 10.0);
        assert!(get(1, "benign mean latency") > get(0, "benign mean latency"));
        // ...while the flush-based hammer flips either way.
        assert!(get(0, "attack flips") > 0.0);
        assert!(get(1, "attack flips") > 0.0);
    }

    #[test]
    fn e3_blindspot_shape() {
        let t = e3_dma_blindspot(true).unwrap();
        let get = |d: &str, c: &str| -> u64 { t.get(d, c).unwrap().parse().unwrap() };
        assert!(get("none", "cpu attack") > 0);
        assert!(get("none", "dma attack") > 0);
        // ANVIL stops the CPU attack but not DMA.
        assert_eq!(get("anvil", "cpu attack"), 0, "{t}");
        assert!(get("anvil", "dma attack") > 0, "{t}");
        // The precise-ACT defense stops both.
        assert_eq!(get("victim-refresh/instr", "cpu attack"), 0, "{t}");
        assert_eq!(get("victim-refresh/instr", "dma attack"), 0, "{t}");
    }
}

/// **E10** (ablation; paper §1 cites ECC-aware attacks): SEC-DED ECC
/// masks isolated flips but multi-bit words survive as detectable-but-
/// uncorrectable errors once the hammer runs long enough.
pub fn e10_ecc(quick: bool) -> Result<ExpTable> {
    use hammertime_dram::module::EccMode;
    let mut t = ExpTable::new(
        "E10",
        "ECC ablation: identical raw damage, different software visibility",
        &[
            "ecc",
            "attack accesses",
            "raw flips",
            "damaged victim lines",
            "visible corrupted lines",
        ],
    );
    // Short: just past the MAC — isolated flips, the correctable
    // regime. Long: sustained hammer — multi-bit words accumulate.
    let short = FAST_MAC * 2;
    let long = accesses(quick) * 2;
    for ecc in [EccMode::None, EccMode::SecDed] {
        for n in [short, long] {
            let mut cfg = MachineConfig::fast(DefenseKind::None, FAST_MAC);
            cfg.ecc = ecc;
            let mut s = CloudScenario::build_sized(cfg, 4)?;
            s.arm_double_sided(n)?;
            s.run_windows(if quick { 60 } else { 200 });
            let victim = s.victim;
            let (_, corrected, uncorrectable) = s.machine.scan_domain_ecc(victim);
            let damaged = corrected + uncorrectable;
            let visible = match ecc {
                EccMode::None => damaged,
                EccMode::SecDed => uncorrectable,
            };
            let r = s.report();
            t.push(vec![
                format!("{ecc:?}"),
                n.to_string(),
                r.flips_total.to_string(),
                damaged.to_string(),
                visible.to_string(),
            ]);
        }
    }
    Ok(t)
}

/// **E11** (ablation; DESIGN.md design-choice list): row-buffer policy
/// vs hammer rate — closed-page policies tax every access with a full
/// row cycle but also slow the attacker's ACT stream.
pub fn e11_page_policy(quick: bool) -> Result<ExpTable> {
    use hammertime_memctrl::controller::PagePolicy;
    let mut t = ExpTable::new(
        "E11",
        "Page-policy ablation: closed-page taxes locality without stopping the hammer",
        &[
            "policy",
            "attack flips",
            "attack acts",
            "benign ops/kcyc",
            "benign mean latency",
            "benign row hits",
        ],
    );
    let n = accesses(quick);
    for policy in [PagePolicy::Open, PagePolicy::Closed] {
        let mut cfg = MachineConfig::fast(DefenseKind::None, FAST_MAC);
        cfg.page_policy = policy;
        let mut s = CloudScenario::build_sized(cfg, 4)?;
        s.arm_double_sided(n)?;
        s.run_windows(if quick { 40 } else { 150 });
        let attack = s.report();

        let mut cfg = MachineConfig::fast(DefenseKind::None, FAST_MAC);
        cfg.page_policy = policy;
        let benign = {
            let saved = cfg.clone();
            let _ = saved;
            run_benign_with(cfg, quick)?
        };
        t.push(vec![
            format!("{policy:?}"),
            attack.flips_total.to_string(),
            attack.dram.acts.to_string(),
            fmt_f(benign.throughput()),
            fmt_f(benign.mc.mean_latency()),
            benign.mc.row_hits.to_string(),
        ]);
    }
    Ok(t)
}

/// Variant of `run_benign` that takes a pre-built config (used by the
/// ablations that tweak controller knobs).
fn run_benign_with(cfg: MachineConfig, quick: bool) -> Result<crate::metrics::SimReport> {
    use hammertime_common::DetRng;
    use hammertime_workloads::{RandomWorkload, StreamWorkload, ZipfianWorkload};
    let windows = if quick { 100 } else { 400 };
    let t_refw = cfg.timing.t_refw;
    let n = accesses(quick) / 4;
    let mut m = Machine::new(cfg)?;
    let seed = m.config().seed;
    let a1 = m.add_tenant(DomainId(1), 2)?;
    let a2 = m.add_tenant(DomainId(2), 2)?;
    let a3 = m.add_tenant(DomainId(3), 2)?;
    m.set_workload(DomainId(1), Box::new(StreamWorkload::new(a1, n, 8)))?;
    m.set_workload(
        DomainId(2),
        Box::new(RandomWorkload::new(a2, n, 0.2, DetRng::new(seed ^ 2))),
    )?;
    m.set_workload(
        DomainId(3),
        Box::new(ZipfianWorkload::new(a3, n, 0.99, DetRng::new(seed ^ 3))),
    )?;
    for _ in 0..windows {
        m.run(t_refw);
        if m.all_finished() {
            break;
        }
    }
    Ok(m.report())
}
