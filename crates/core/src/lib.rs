//! `hammertime` — a full-system reproduction of *"Stop! Hammer Time:
//! Rethinking Our Approach to Rowhammer Mitigations"* (Loughlin,
//! Saroiu, Wolman, Kasikci — HotOS '21).
//!
//! The paper argues that Rowhammer defenses should be a
//! hardware-software co-design: CPU vendors add three small primitives
//! to the integrated memory controller, and host software builds
//! adaptable defenses on top — one per class of its mitigation
//! taxonomy:
//!
//! | Class | MC primitive | Software defense |
//! |---|---|---|
//! | isolation-centric | subarray-isolated interleaving | subarray-aware allocation |
//! | frequency-centric | precise ACT interrupts | aggressor remapping, cache-line locking |
//! | refresh-centric | `refresh` instruction (+ REF_NEIGHBORS) | victim refresh |
//!
//! This crate assembles the substrates (`hammertime-dram`,
//! `hammertime-memctrl`, `hammertime-cache`, `hammertime-os`,
//! `hammertime-workloads`) into a runnable machine and provides the
//! evaluation the paper deferred to future work:
//!
//! - [`taxonomy`] — the mitigation taxonomy and the catalog of
//!   defenses under test (proposals and baselines).
//! - [`machine`] — the full simulated host: cores, LLC, memory
//!   controller, DRAM, host OS, defense daemons, tenants.
//! - [`scenario`] — multi-tenant attack scenarios (double-sided,
//!   many-sided/TRRespass, DMA) and benign backgrounds.
//! - [`metrics`] — unified security/performance/cost reports.
//! - [`experiments`] — the table/figure generators (T1, F1, F2,
//!   E1–E9) the benchmark harness runs; see DESIGN.md for the index.
//!
//! # Examples
//!
//! ```
//! use hammertime::machine::MachineConfig;
//! use hammertime::scenario::CloudScenario;
//! use hammertime::taxonomy::DefenseKind;
//!
//! // Undefended host, double-sided hammer: the victim's memory flips.
//! let mut s = CloudScenario::build(MachineConfig::fast(DefenseKind::None, 24)).unwrap();
//! s.arm_double_sided(3_000).unwrap();
//! s.run_windows(40);
//! assert!(s.report().cross_flips_against(2) > 0);
//!
//! // Same attack against the paper's refresh-centric proposal: safe.
//! let mut s =
//!     CloudScenario::build(MachineConfig::fast(DefenseKind::VictimRefreshInstr, 24)).unwrap();
//! s.arm_double_sided(3_000).unwrap();
//! s.run_windows(40);
//! assert_eq!(s.report().cross_flips_against(2), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod machine;
pub mod metrics;
pub mod scenario;
pub mod taxonomy;

pub use machine::{Machine, MachineConfig, ProbeOutcome};
pub use metrics::{DefenseOverhead, SimReport};
pub use scenario::{AttackTargeting, BenignKind, CloudScenario};
pub use taxonomy::{DefenseKind, Locus, MitigationClass};

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use hammertime_cache as cache;
pub use hammertime_common as common;
pub use hammertime_dram as dram;
pub use hammertime_memctrl as memctrl;
pub use hammertime_os as os;
pub use hammertime_workloads as workloads;
