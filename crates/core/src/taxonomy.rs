//! The paper's taxonomy of Rowhammer mitigations, as an API.
//!
//! §2.2 derives three necessary conditions for a successful attack and
//! one mitigation class per condition:
//!
//! | Condition broken | Class | Paper's primitive |
//! |---|---|---|
//! | victim within blast radius of aggressor | [`MitigationClass::Isolation`] | subarray-isolated interleaving (§4.1) |
//! | aggressor exceeds MAC | [`MitigationClass::Frequency`] | precise ACT interrupts (§4.2) |
//! | victim unrefreshed before MAC crossing | [`MitigationClass::Refresh`] | `refresh` instruction / REF_NEIGHBORS (§4.3) |
//!
//! [`DefenseKind`] enumerates every concrete defense the evaluation
//! compares — the paper's proposals, the hardware baselines, and the
//! software baselines — each tagged with its class and where it lives
//! ([`Locus`]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which attack precondition a mitigation removes (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MitigationClass {
    /// No cross-domain aggressor/victim pairs can exist.
    Isolation,
    /// No aggressor can exceed the MAC.
    Frequency,
    /// Victims are refreshed before aggressors reach the MAC.
    Refresh,
}

impl fmt::Display for MitigationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MitigationClass::Isolation => "isolation-centric",
            MitigationClass::Frequency => "frequency-centric",
            MitigationClass::Refresh => "refresh-centric",
        })
    }
}

/// Where a defense's mechanism lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locus {
    /// Inside the DRAM device (blackbox, unfixable post-purchase).
    InDram,
    /// In the CPU's integrated memory controller.
    MemCtrl,
    /// Host software using MC primitives (the paper's proposal space).
    Software,
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Locus::InDram => "in-DRAM",
            Locus::MemCtrl => "memory-controller",
            Locus::Software => "software",
        })
    }
}

/// Every defense configuration the evaluation can run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DefenseKind {
    /// No defense: the vulnerable baseline.
    None,
    /// Vendor blackbox TRR inside the module.
    InDramTrr {
        /// Tracker entries per bank.
        table_size: usize,
    },
    /// PARA in the memory controller.
    Para {
        /// Per-ACT neighbor refresh probability.
        prob: f64,
    },
    /// Graphene-style Misra-Gries tracker in the MC.
    Graphene {
        /// Tracker entries per bank.
        table_size: usize,
    },
    /// BlockHammer-style CBF throttling in the MC.
    BlockHammer {
        /// Throttle delay per blacklisted ACT, cycles.
        delay: u64,
    },
    /// TWiCe-style pruned counter table in the MC.
    TwiceLite {
        /// Tracker entries per bank.
        table_size: usize,
    },
    /// White-box oracle refresher (upper bound, unimplementable).
    Oracle,
    /// The paper's isolation-centric proposal: subarray-isolated
    /// interleaving + subarray-aware allocation (§4.1).
    SubarrayIsolation,
    /// Prior isolation approach: per-domain banks, interleaving off.
    BankPartitionIsolation,
    /// Prior isolation approach: ZebRAM-style guard rows.
    ZebramGuard,
    /// The paper's frequency-centric proposal: precise ACT interrupts
    /// + page remapping (ACT wear-leveling, §4.2).
    AggressorRemap,
    /// The paper's frequency-centric proposal: precise ACT interrupts
    /// + LLC line locking with remap fallback (§4.2).
    LineLocking,
    /// The paper's refresh-centric proposal: precise interrupts + the
    /// host-privileged refresh instruction (§4.3).
    VictimRefreshInstr,
    /// Refresh-centric with the optional REF_NEIGHBORS DRAM command.
    VictimRefreshRefNeighbors,
    /// Refresh-centric but limited to today's convoluted flush+load
    /// path (what software can do *without* the primitive).
    VictimRefreshConvoluted,
    /// ANVIL baseline: PMU sampling + convoluted refresh.
    Anvil {
        /// Sampled misses per row before reacting.
        miss_threshold: u32,
    },
    /// BreakHammer-style per-tenant quota throttling in the MC: every
    /// mitigation trigger (TRR sample, interrupt, forced REF) raises
    /// the issuing tenant's suspect score; suspects above the
    /// threshold get their ACT quota throttled.
    BreakHammer {
        /// Suspect score at which a tenant's quota kicks in.
        score_threshold: u64,
    },
    /// Rubix-style randomized line→row mapping: a seeded bijective
    /// scramble of the row space dilutes any aggressor's blast radius
    /// across the bank at some row-buffer-locality cost.
    RubixMapping,
    /// CATT-style physical kernel/user partitioning in the frame
    /// allocator: guard rows separate the kernel region from user
    /// tenants so no cross-privilege aggressor/victim pair exists.
    CattPartition,
}

impl DefenseKind {
    /// The taxonomy class this defense belongs to (`None` for the
    /// undefended baseline).
    pub fn class(&self) -> Option<MitigationClass> {
        use DefenseKind::*;
        Some(match self {
            None => return Option::None,
            SubarrayIsolation
            | BankPartitionIsolation
            | ZebramGuard
            | RubixMapping
            | CattPartition => MitigationClass::Isolation,
            BlockHammer { .. } | AggressorRemap | LineLocking | BreakHammer { .. } => {
                MitigationClass::Frequency
            }
            InDramTrr { .. }
            | Para { .. }
            | Graphene { .. }
            | TwiceLite { .. }
            | Oracle
            | VictimRefreshInstr
            | VictimRefreshRefNeighbors
            | VictimRefreshConvoluted
            | Anvil { .. } => MitigationClass::Refresh,
        })
    }

    /// Where the defense's mechanism lives.
    pub fn locus(&self) -> Option<Locus> {
        use DefenseKind::*;
        Some(match self {
            None => return Option::None,
            InDramTrr { .. } => Locus::InDram,
            Para { .. }
            | Graphene { .. }
            | BlockHammer { .. }
            | TwiceLite { .. }
            | Oracle
            | BreakHammer { .. }
            | RubixMapping => Locus::MemCtrl,
            CattPartition
            | SubarrayIsolation
            | BankPartitionIsolation
            | ZebramGuard
            | AggressorRemap
            | LineLocking
            | VictimRefreshInstr
            | VictimRefreshRefNeighbors
            | VictimRefreshConvoluted
            | Anvil { .. } => Locus::Software,
        })
    }

    /// Whether the defense needs the paper's precise ACT interrupt
    /// primitive (§4.2) to function.
    pub fn needs_precise_interrupts(&self) -> bool {
        matches!(
            self,
            DefenseKind::AggressorRemap
                | DefenseKind::LineLocking
                | DefenseKind::VictimRefreshInstr
                | DefenseKind::VictimRefreshRefNeighbors
                | DefenseKind::VictimRefreshConvoluted
                | DefenseKind::BreakHammer { .. }
        )
    }

    /// Whether the defense is one of the paper's proposals (vs. a
    /// baseline).
    pub fn is_proposed(&self) -> bool {
        matches!(
            self,
            DefenseKind::SubarrayIsolation
                | DefenseKind::AggressorRemap
                | DefenseKind::LineLocking
                | DefenseKind::VictimRefreshInstr
                | DefenseKind::VictimRefreshRefNeighbors
        )
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        use DefenseKind::*;
        match self {
            None => "none",
            InDramTrr { .. } => "trr",
            Para { .. } => "para",
            Graphene { .. } => "graphene",
            BlockHammer { .. } => "blockhammer",
            TwiceLite { .. } => "twice",
            Oracle => "oracle",
            SubarrayIsolation => "subarray-isolation",
            BankPartitionIsolation => "bank-partition",
            ZebramGuard => "zebram-guard",
            AggressorRemap => "aggressor-remap",
            LineLocking => "line-locking",
            VictimRefreshInstr => "victim-refresh/instr",
            VictimRefreshRefNeighbors => "victim-refresh/refn",
            VictimRefreshConvoluted => "victim-refresh/convoluted",
            Anvil { .. } => "anvil",
            BreakHammer { .. } => "breakhammer",
            RubixMapping => "rubix",
            CattPartition => "catt",
        }
    }

    /// The full catalog with representative parameters for a module
    /// whose MAC is `mac` — the defense axis of experiments T1 and E9.
    pub fn catalog(mac: u64) -> Vec<DefenseKind> {
        vec![
            DefenseKind::None,
            DefenseKind::InDramTrr { table_size: 4 },
            DefenseKind::Para {
                prob: (8.0 / mac as f64).min(1.0),
            },
            DefenseKind::Graphene { table_size: 16 },
            DefenseKind::BlockHammer { delay: 2_000 },
            DefenseKind::TwiceLite { table_size: 16 },
            DefenseKind::Oracle,
            DefenseKind::SubarrayIsolation,
            DefenseKind::BankPartitionIsolation,
            DefenseKind::ZebramGuard,
            DefenseKind::AggressorRemap,
            DefenseKind::LineLocking,
            DefenseKind::VictimRefreshInstr,
            DefenseKind::VictimRefreshRefNeighbors,
            DefenseKind::VictimRefreshConvoluted,
            DefenseKind::Anvil { miss_threshold: 4 },
            DefenseKind::BreakHammer { score_threshold: 4 },
            DefenseKind::RubixMapping,
            DefenseKind::CattPartition,
        ]
    }
}

impl fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_classes_and_loci() {
        let catalog = DefenseKind::catalog(10_000);
        let classes: std::collections::HashSet<_> =
            catalog.iter().filter_map(|d| d.class()).collect();
        assert_eq!(classes.len(), 3, "all three taxonomy classes present");
        let loci: std::collections::HashSet<_> = catalog.iter().filter_map(|d| d.locus()).collect();
        assert_eq!(loci.len(), 3, "in-DRAM, MC, and software all present");
    }

    #[test]
    fn baseline_has_no_class() {
        assert_eq!(DefenseKind::None.class(), None);
        assert_eq!(DefenseKind::None.locus(), None);
        assert!(!DefenseKind::None.is_proposed());
    }

    #[test]
    fn proposed_defenses_use_the_primitives() {
        for d in DefenseKind::catalog(1000) {
            if d.is_proposed() && d != DefenseKind::SubarrayIsolation {
                assert!(
                    d.needs_precise_interrupts(),
                    "{d} is proposed but needs no primitive?"
                );
            }
        }
        // Baselines never need the new primitive.
        assert!(!DefenseKind::InDramTrr { table_size: 4 }.needs_precise_interrupts());
        assert!(!DefenseKind::Anvil { miss_threshold: 4 }.needs_precise_interrupts());
    }

    #[test]
    fn classes_match_the_paper_table() {
        assert_eq!(
            DefenseKind::SubarrayIsolation.class(),
            Some(MitigationClass::Isolation)
        );
        assert_eq!(
            DefenseKind::AggressorRemap.class(),
            Some(MitigationClass::Frequency)
        );
        assert_eq!(
            DefenseKind::LineLocking.class(),
            Some(MitigationClass::Frequency)
        );
        assert_eq!(
            DefenseKind::VictimRefreshInstr.class(),
            Some(MitigationClass::Refresh)
        );
    }

    #[test]
    fn names_are_unique() {
        let catalog = DefenseKind::catalog(1000);
        let names: std::collections::HashSet<_> = catalog.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), catalog.len());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(DefenseKind::Oracle.to_string(), "oracle");
        assert_eq!(MitigationClass::Isolation.to_string(), "isolation-centric");
        assert_eq!(Locus::Software.to_string(), "software");
    }
}
