//! The full simulated machine: cores + LLC + memory controller + DRAM
//! + host OS + defenses + tenants.
//!
//! [`Machine`] wires every substrate together and runs the closed
//! loop the paper's co-design implies:
//!
//! ```text
//! tenant workloads ──(virtual lines)──> page tables ──> LLC ──misses──> MC ──DDR──> DRAM
//!        ▲                                                │                      │
//!        │                                   PMU samples  │   ACT interrupts     │ flips
//!        └──────── defense daemon <────────────────────────┴──────────────────────┘
//!                        │ actions: refresh instr / REF_NEIGHBORS / lock / remap
//!                        └────────────> MC maintenance + LLC locks + page remaps
//! ```
//!
//! Tenants issue [`AccessOp`]s against *virtual* lines; the machine
//! translates through the owning domain's page table on every
//! operation, so the remap defense (§4.2) genuinely severs an
//! attacker's physical adjacency. Core traffic goes through the LLC;
//! DMA traffic goes straight to the controller (and is therefore
//! invisible to PMU-based defenses — the paper's §1 blind spot).

use crate::metrics::{DefenseOverhead, SimReport};
use crate::taxonomy::DefenseKind;
use hammertime_cache::{CacheConfig, Llc};
use hammertime_common::addr::LINES_PER_PAGE;
use hammertime_common::geometry::BankId;
use hammertime_common::{
    CacheLineAddr, Cycle, DetRng, DomainId, Error, FaultPlan, Geometry, RequestSource, Result,
};
use hammertime_dram::disturb::FlipEvent;
use hammertime_dram::remap::RemapConfig;
use hammertime_dram::{DisturbanceProfile, DramConfig, TimingParams, TrrConfig};
use hammertime_memctrl::addrmap::MappingScheme;
use hammertime_memctrl::mitigation::McMitigationConfig;
use hammertime_memctrl::request::{MemRequest, RequestKind};
use hammertime_memctrl::{ActCounterConfig, MemCtrl, MemCtrlConfig};
use hammertime_os::defense::anvil::{Anvil, AnvilConfig};
use hammertime_os::defense::frequency::{AggressorRemap, LineLocking};
use hammertime_os::defense::refresh::{RefreshMechanism, VictimRefresh, VictimRefreshConfig};
use hammertime_telemetry::{Event, Tracer};
use serde::{Deserialize, Serialize};

use hammertime_os::{
    AddressSpaces, AttackResponse, DefenseAction, Enclave, EnclaveReaction, EnclaveStatus,
    FrameAllocator, NoDefense, PlacementPolicy, SoftwareDefense, Topology,
};
use hammertime_workloads::{AccessOp, Workload};
use std::collections::BTreeMap;

/// Machine-wide configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// DRAM organization.
    pub geometry: Geometry,
    /// DDR timing.
    pub timing: TimingParams,
    /// Disturbance model.
    pub disturbance: DisturbanceProfile,
    /// Internal row remapping in the device.
    pub remap: RemapConfig,
    /// In-DRAM TRR independent of the defense choice (the defense
    /// [`DefenseKind::InDramTrr`] overrides this).
    pub trr: Option<TrrConfig>,
    /// LLC shape.
    pub cache: CacheConfig,
    /// The defense under test.
    pub defense: DefenseKind,
    /// RNG seed for the whole machine.
    pub seed: u64,
    /// The blast radius the *software* assumes (its belief; may lag
    /// the true radius — E5 sweeps this).
    pub assumed_radius: u32,
    /// ACT-counter overflow threshold for interrupt-driven defenses
    /// (0 = auto: MAC / 8).
    pub act_threshold: u64,
    /// LLC hit service time, cycles.
    pub llc_hit_cycles: u64,
    /// clflush cost, cycles.
    pub flush_cycles: u64,
    /// Per-op think time after completion, cycles.
    pub think_cycles: u64,
    /// Scheduler quantum: how often completions/interrupts are
    /// serviced, cycles.
    pub quantum: u64,
    /// Periodic REF on/off (failure injection).
    pub refresh_enabled: bool,
    /// Enable precise ACT counters even when the defense doesn't need
    /// them (enclave-visible interrupts, §4.4).
    pub force_act_counters: bool,
    /// Randomize counter reset values (the paper's anti-evasion
    /// measure, §4.2); `false` models a predictable counter an
    /// attacker can pace around.
    pub randomize_counter_resets: bool,
    /// ECC mode on the DRAM data path (E10 ablation).
    pub ecc: hammertime_dram::module::EccMode,
    /// Row-buffer management policy (E11 ablation).
    pub page_policy: hammertime_memctrl::controller::PagePolicy,
    /// Deterministic fault-injection plan, threaded into both the DRAM
    /// device and the memory controller (each derives an independent
    /// stream from the plan seed). `None` models healthy hardware and
    /// is byte-identical to a build without the fault subsystem.
    pub faults: Option<FaultPlan>,
    /// Cycle-stamped event tracer, threaded into the DRAM device and
    /// the memory controller and used for machine-level events
    /// (ACT-interrupt servicing, page remaps). `None` — the default —
    /// falls back to the experiment engine's ambient per-cell tracer
    /// (also usually `None`) and costs nothing on the simulation path.
    pub tracer: Option<Tracer>,
    /// Opt-in protocol-invariant shadow checker, threaded into the
    /// memory controller so every DDR command the scheduler puts on the
    /// bus is validated live against the `trace lint` invariant
    /// catalog. `None` — the default — costs one branch per issued
    /// command and changes no observable output.
    pub shadow: Option<hammertime_check::ShadowChecker>,
    /// Capture a [`MachineCheckpoint`] at every refresh-window (tREFW)
    /// rollover; the latest is kept and retrievable via
    /// [`Machine::last_checkpoint`]. Requires every workload and the
    /// defense daemon to be checkpointable (`box_clone` returns
    /// `Some`); capture is skipped silently otherwise.
    pub epoch_checkpoints: bool,
    /// Route the run loop through the controller's reference
    /// (full-scan) scheduler instead of the event wheel. Behaviour is
    /// byte-identical — the differential suites enforce it — so this
    /// exists only to measure the wheel and to pin dual-path
    /// regressions.
    pub reference_scheduler: bool,
}

impl MachineConfig {
    /// A fast test configuration: medium geometry, compressed timing,
    /// aggressive disturbance with the given `mac`.
    pub fn fast(defense: DefenseKind, mac: u64) -> MachineConfig {
        MachineConfig {
            geometry: Geometry::medium(),
            timing: TimingParams::tiny_wide(),
            disturbance: DisturbanceProfile {
                mac,
                blast_radius: 2,
                distance_decay: 0.5,
                flip_prob: 1.0,
                overshoot_step: 0.05,
            },
            remap: RemapConfig::identity(),
            trr: None,
            cache: CacheConfig::small_test(),
            defense,
            seed: 42,
            assumed_radius: 2,
            act_threshold: 0,
            llc_hit_cycles: 4,
            flush_cycles: 2,
            think_cycles: 0,
            quantum: 200,
            refresh_enabled: true,
            force_act_counters: false,
            randomize_counter_resets: true,
            ecc: hammertime_dram::module::EccMode::None,
            page_policy: hammertime_memctrl::controller::PagePolicy::Open,
            faults: None,
            tracer: None,
            shadow: None,
            epoch_checkpoints: false,
            reference_scheduler: false,
        }
    }

    /// A realistic configuration: server geometry, DDR4-2400 timing,
    /// the supplied disturbance profile (typically scaled down for
    /// tractable runs — document the factor in EXPERIMENTS.md).
    pub fn realistic(defense: DefenseKind, profile: DisturbanceProfile) -> MachineConfig {
        MachineConfig {
            geometry: Geometry::server(),
            timing: TimingParams::ddr4_2400(),
            disturbance: profile,
            remap: RemapConfig::identity(),
            trr: None,
            cache: CacheConfig::server(),
            defense,
            seed: 42,
            assumed_radius: profile.blast_radius,
            act_threshold: 0,
            llc_hit_cycles: 40,
            flush_cycles: 8,
            think_cycles: 0,
            quantum: 2_000,
            refresh_enabled: true,
            force_act_counters: false,
            randomize_counter_resets: true,
            ecc: hammertime_dram::module::EccMode::None,
            page_policy: hammertime_memctrl::controller::PagePolicy::Open,
            faults: None,
            tracer: None,
            shadow: None,
            epoch_checkpoints: false,
            reference_scheduler: false,
        }
    }

    fn effective_act_threshold(&self) -> u64 {
        if self.act_threshold > 0 {
            self.act_threshold
        } else {
            (self.disturbance.mac / 8).max(1)
        }
    }
}

struct Tenant {
    domain: DomainId,
    workload: Option<Box<dyn Workload>>,
    source: RequestSource,
    ready_at: Cycle,
    waiting_on: Option<u64>,
    waiting_line: Option<CacheLineAddr>,
    ops_done: u64,
    finished: bool,
}

impl Tenant {
    /// Deep copy for checkpointing; `None` if the workload is
    /// non-checkpointable (its `box_clone` returns `None`).
    fn try_clone(&self) -> Option<Tenant> {
        let workload = match &self.workload {
            None => None,
            Some(w) => Some(w.box_clone()?),
        };
        Some(Tenant {
            domain: self.domain,
            workload,
            source: self.source,
            ready_at: self.ready_at,
            waiting_on: self.waiting_on,
            waiting_line: self.waiting_line,
            ops_done: self.ops_done,
            finished: self.finished,
        })
    }
}

/// A tenant detached from its machine, ready to be admitted elsewhere.
///
/// This is the migration unit of the fleet layer: the workload is the
/// same deep snapshot the checkpoint machinery takes (`box_clone`),
/// moved out of the source machine rather than cloned, so the stream
/// resumes on the destination exactly where it stopped. Addresses
/// inside the workload are *virtual* lines of the tenant's arena;
/// re-admitting the export with the same page count onto a fresh
/// domain reproduces that arena (vpages `0..pages`), so the stream
/// stays valid even when the destination machine has a different
/// geometry — only the physical placement changes.
pub struct TenantExport {
    /// The tenant's trust domain id (fleet-unique by convention).
    pub domain: DomainId,
    /// Pages the tenant had mapped on the source machine.
    pub pages: u64,
    /// The workload, mid-stream (`None` if none was attached).
    pub workload: Option<Box<dyn Workload>>,
    /// Operations the tenant completed on the source machine.
    pub ops_done: u64,
    /// Mitigation triggers the source controller charged to this
    /// tenant. They travel with the export: the destination merges
    /// them into its own ledger (and re-seeds its suspect score from
    /// the total), so a hammering tenant cannot shed its history by
    /// migrating.
    pub triggers: hammertime_common::TriggerCounts,
}

impl std::fmt::Debug for TenantExport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantExport")
            .field("domain", &self.domain)
            .field("pages", &self.pages)
            .field("ops_done", &self.ops_done)
            .field("triggers", &self.triggers)
            .finish()
    }
}

/// A deep copy of every piece of mutable machine state at one instant.
///
/// Restoring a checkpoint rewinds the simulation exactly: a restored
/// machine replays the same commands, flips, and reports as the
/// original timeline (the determinism tests pin this). Two sharing
/// caveats, both deliberate: the tracer and shadow checker are shared
/// handles, so events recorded after the capture point are *not*
/// unwound by a restore — replayed spans appear twice in the trace —
/// and the engine's ambient per-cell step budget is not checkpointed.
pub struct MachineCheckpoint {
    at: Cycle,
    mc: MemCtrl,
    llc: Llc,
    allocator: FrameAllocator,
    spaces: AddressSpaces,
    daemon: Box<dyn SoftwareDefense>,
    enclaves: BTreeMap<u32, Enclave>,
    tenants: Vec<Tenant>,
    next_id: u64,
    window_start: Cycle,
    overhead: DefenseOverhead,
    flips: Vec<FlipEvent>,
    remapped_this_window: std::collections::HashSet<u64>,
    interrupt_log: Vec<hammertime_memctrl::ActInterrupt>,
    lockup: Option<String>,
    run_start: Option<Cycle>,
    rng: DetRng,
}

impl MachineCheckpoint {
    /// The simulated time at which this checkpoint was captured.
    pub fn at(&self) -> Cycle {
        self.at
    }
}

impl std::fmt::Debug for MachineCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachineCheckpoint")
            .field("at", &self.at)
            .field("tenants", &self.tenants.len())
            .finish()
    }
}

/// Memoized row→frames translations, keyed `(address-map generation,
/// per-(bank, row) results)`; see the `frames_cache` field.
type FramesMemo = (u64, std::collections::HashMap<(usize, u32), Vec<u64>>);

/// The assembled machine.
pub struct Machine {
    cfg: MachineConfig,
    mc: MemCtrl,
    llc: Llc,
    allocator: FrameAllocator,
    spaces: AddressSpaces,
    daemon: Box<dyn SoftwareDefense>,
    enclaves: BTreeMap<u32, Enclave>,
    tenants: Vec<Tenant>,
    next_id: u64,
    window_start: Cycle,
    overhead: DefenseOverhead,
    flips: Vec<FlipEvent>,
    /// Frames already migrated this refresh window (rate limit).
    remapped_this_window: std::collections::HashSet<u64>,
    /// Every interrupt the machine serviced (observability; drained
    /// via [`Machine::drain_interrupt_log`]).
    interrupt_log: Vec<hammertime_memctrl::ActInterrupt>,
    /// Memoized [`Machine::frames_of_row`] results, keyed on the
    /// address map's generation: the interrupt path asks about the same
    /// few victim rows on every overflow and would otherwise redo
    /// O(columns) translations each time. A map reconfiguration bumps
    /// the generation and the whole memo is discarded on next use —
    /// stale translations must never leak across a remap.
    frames_cache: std::cell::RefCell<FramesMemo>,
    /// Latest epoch checkpoint (captured at tREFW rollovers when
    /// [`MachineConfig::epoch_checkpoints`] is set, or explicitly via
    /// [`Machine::checkpoint`]).
    last_checkpoint: Option<Box<MachineCheckpoint>>,
    lockup: Option<String>,
    /// When the first [`Machine::run`] call began (`None` until then);
    /// lets callers distinguish warm-up work from the measured run.
    run_start: Option<Cycle>,
    /// The resolved tracer (config or ambient); also threaded into the
    /// controller and device configs.
    tracer: Option<Tracer>,
    rng: DetRng,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("defense", &self.cfg.defense.name())
            .field("now", &self.mc.now())
            .field("tenants", &self.tenants.len())
            .finish()
    }
}

/// What a latency measurement over a pair of lines reveals: the
/// attacker-observable output of [`Machine::probe_pair`]. Timing
/// distinguishes exactly these three cases on real DRAM — nothing
/// finer — which is why a SPOILER-style inference can recover the
/// bank/row *partition* of its arena but not absolute row numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeOutcome {
    /// Same bank, same row: the second access hits the open row
    /// buffer (fast).
    RowHit,
    /// Same bank, different row: the second access forces a
    /// precharge/activate round trip (slow).
    RowConflict,
    /// Different banks: no interaction (intermediate).
    NoConflict,
}

/// Inverts a flat bank index back to a [`BankId`].
fn bank_from_flat(g: &Geometry, flat: usize) -> BankId {
    let per_rank = g.banks_per_rank() as usize;
    let rank_idx = flat / per_rank;
    let in_rank = (flat % per_rank) as u32;
    BankId {
        channel: rank_idx as u32 / g.ranks,
        rank: rank_idx as u32 % g.ranks,
        bank_group: in_rank / g.banks_per_group,
        bank: in_rank % g.banks_per_group,
    }
}

impl Machine {
    /// Builds the machine for the configured defense.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any substrate.
    pub fn new(cfg: MachineConfig) -> Result<Machine> {
        let mac = cfg.disturbance.mac;
        let radius = cfg.assumed_radius;
        let t = cfg.timing;

        // Derive per-substrate configuration from the defense kind.
        let (mapping, policy, enforce) = match cfg.defense {
            DefenseKind::SubarrayIsolation => (
                MappingScheme::SubarrayIsolated,
                PlacementPolicy::SubarrayGroup,
                true,
            ),
            DefenseKind::BankPartitionIsolation => (
                MappingScheme::BankPartition,
                PlacementPolicy::BankPartition,
                false,
            ),
            DefenseKind::ZebramGuard => (
                MappingScheme::CacheLineInterleave,
                PlacementPolicy::ZebramGuard { radius },
                false,
            ),
            // The scramble seed is derived from the machine seed so two
            // machines with the same config install the same permutation
            // (determinism) while distinct seeds get distinct mappings.
            DefenseKind::RubixMapping => (
                MappingScheme::RubixScramble {
                    seed: cfg.seed ^ 0x5CB1,
                },
                PlacementPolicy::Default,
                false,
            ),
            DefenseKind::CattPartition => (
                MappingScheme::CacheLineInterleave,
                PlacementPolicy::CattPartition { radius },
                false,
            ),
            _ => (
                MappingScheme::CacheLineInterleave,
                PlacementPolicy::Default,
                false,
            ),
        };
        let mitigation = match cfg.defense {
            DefenseKind::Para { prob } => McMitigationConfig::Para { prob, radius },
            DefenseKind::Graphene { table_size } => McMitigationConfig::Graphene {
                table_size,
                threshold: (mac / 4).max(1),
                radius,
            },
            DefenseKind::BlockHammer { delay } => McMitigationConfig::BlockHammer {
                cbf_counters: 1024,
                hashes: 3,
                threshold: (mac / 4).max(1),
                delay,
                epoch: t.t_refw / 2,
            },
            DefenseKind::TwiceLite { table_size } => McMitigationConfig::TwiceLite {
                table_size,
                threshold: (mac / 4).max(1),
                radius,
                prune_interval: t.t_refi * 8,
            },
            // A double-sided pair splits the victim's pressure across
            // two aggressors, so the per-aggressor trigger must fire
            // well below MAC/2.
            DefenseKind::Oracle => McMitigationConfig::Oracle {
                fraction: 0.3,
                mac,
                radius: cfg.disturbance.blast_radius,
            },
            // The quota scales with the MAC (a tenant hammering at the
            // MAC per window is exactly who the throttle is for) and
            // decays on the same half-refresh-window epoch BlockHammer
            // uses, so rehabilitated tenants recover quickly.
            DefenseKind::BreakHammer { score_threshold } => McMitigationConfig::BreakHammer {
                score_threshold,
                quota: mac.max(8),
                delay: 1_000,
                epoch: t.t_refw / 2,
            },
            _ => McMitigationConfig::None,
        };
        let trr = match cfg.defense {
            DefenseKind::InDramTrr { table_size } => Some(TrrConfig {
                table_size,
                kind: hammertime_dram::TrrSamplerKind::MisraGries,
                targets_per_ref: 1,
                radius,
                min_count: 4,
            }),
            _ => cfg.trr,
        };
        let act_counters = if cfg.defense.needs_precise_interrupts() || cfg.force_act_counters {
            let mut c = ActCounterConfig::precise(cfg.effective_act_threshold());
            if !cfg.randomize_counter_resets {
                c.randomize_reset_window = 0;
            }
            c
        } else {
            ActCounterConfig::legacy(0)
        };
        let mut cache_cfg = cfg.cache;
        cache_cfg.pmu_sample_period = match cfg.defense {
            DefenseKind::Anvil { .. } => cfg.cache.pmu_sample_period.max(1),
            _ => 0,
        };

        // An explicit tracer on the config wins; otherwise inherit the
        // experiment engine's ambient per-cell tracer (set only while
        // `trace record` runs a cell on this thread).
        let tracer = cfg
            .tracer
            .clone()
            .or_else(crate::experiments::engine::ambient_tracer);
        let dram_config = DramConfig {
            geometry: cfg.geometry,
            timing: cfg.timing,
            disturbance: cfg.disturbance,
            trr,
            remap: cfg.remap,
            seed: cfg.seed ^ 0xD12A,
            ecc: cfg.ecc,
            // Machine runs demand byte-identical flip logs across
            // schedulers and job counts; keep per-ACT accounting.
            batched_pressure: false,
            faults: cfg.faults,
            tracer: tracer.clone(),
        };
        let mc_config = MemCtrlConfig {
            mapping,
            mitigation,
            act_counters,
            refresh_enabled: cfg.refresh_enabled,
            enforce_domain_groups: enforce,
            queue_capacity: 65_536,
            page_policy: cfg.page_policy,
            faults: cfg.faults,
            tracer: tracer.clone(),
            shadow: cfg.shadow.clone(),
        };
        let mc = MemCtrl::new(mc_config, dram_config, cfg.seed ^ 0x3C3C)?;
        let llc = Llc::new(cache_cfg)?;
        let allocator = FrameAllocator::new(policy, mc.map().clone())?;
        let topology = Topology::new(mc.map().clone(), radius);
        let daemon: Box<dyn SoftwareDefense> = match cfg.defense {
            DefenseKind::AggressorRemap => Box::new(AggressorRemap::new()),
            DefenseKind::LineLocking => Box::new(LineLocking::new()),
            DefenseKind::VictimRefreshInstr => Box::new(VictimRefresh::new(
                VictimRefreshConfig {
                    interrupts_before_action: 1,
                    mechanism: RefreshMechanism::Instruction,
                },
                topology,
            )),
            DefenseKind::VictimRefreshRefNeighbors => Box::new(VictimRefresh::new(
                VictimRefreshConfig {
                    interrupts_before_action: 1,
                    mechanism: RefreshMechanism::RefNeighbors,
                },
                topology,
            )),
            DefenseKind::VictimRefreshConvoluted => Box::new(VictimRefresh::new(
                VictimRefreshConfig {
                    interrupts_before_action: 1,
                    mechanism: RefreshMechanism::Convoluted,
                },
                topology,
            )),
            DefenseKind::Anvil { miss_threshold } => {
                Box::new(Anvil::new(AnvilConfig { miss_threshold }, topology))
            }
            _ => Box::new(NoDefense),
        };
        let overhead = DefenseOverhead {
            sram_bits: mitigation
                .sram_bits(cfg.geometry.total_banks(), cfg.geometry.rows_per_bank()),
            ..DefenseOverhead::default()
        };
        Ok(Machine {
            rng: DetRng::new(cfg.seed ^ 0x99AA),
            mc,
            llc,
            allocator,
            spaces: AddressSpaces::new(),
            daemon,
            enclaves: BTreeMap::new(),
            tenants: Vec::new(),
            next_id: 1,
            window_start: Cycle::ZERO,
            overhead,
            flips: Vec::new(),
            remapped_this_window: std::collections::HashSet::new(),
            interrupt_log: Vec::new(),
            frames_cache: std::cell::RefCell::new((0, std::collections::HashMap::new())),
            last_checkpoint: None,
            lockup: None,
            run_start: None,
            tracer,
            cfg,
        })
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.mc.now()
    }

    /// The cycle at which the first [`Machine::run`] call started, or
    /// `None` if the machine has never run.
    pub fn run_start(&self) -> Option<Cycle> {
        self.run_start
    }

    /// The host's topology view (for attack/defense construction).
    pub fn topology(&self) -> Topology {
        Topology::new(self.mc.map().clone(), self.cfg.assumed_radius)
    }

    /// Reconfigures the controller's address-mapping scheme, bumping
    /// the map generation (which invalidates the `frames_of_row` memo
    /// on next use).
    ///
    /// Only legal on a cold machine: queued requests or attached
    /// tenants hold translations under the old map, and silently
    /// reinterpreting them would corrupt the experiment.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if any tenant is attached or the controller
    /// has queued work; propagates scheme construction errors.
    pub fn set_mapping(&mut self, scheme: MappingScheme) -> Result<()> {
        if !self.tenants.is_empty() {
            return Err(Error::Config(
                "cannot change the address mapping with tenants attached".into(),
            ));
        }
        self.mc.set_mapping(scheme)
    }

    /// Registers a tenant and allocates `pages` pages, returning its
    /// *virtual* cache-line arena (the addresses its workload uses).
    ///
    /// # Errors
    ///
    /// Propagates allocation failures (region exhaustion etc.).
    pub fn add_tenant(&mut self, domain: DomainId, pages: u64) -> Result<Vec<CacheLineAddr>> {
        self.allocator.register_domain(domain)?;
        if let Some(region) = self.allocator.region_of(domain) {
            if self.cfg.defense == DefenseKind::SubarrayIsolation {
                self.mc.assign_group(region, Some(domain))?;
            }
        }
        let table = self.spaces.table_mut(domain);
        let base_vpage = table.len() as u64;
        let mut arena = Vec::with_capacity((pages * LINES_PER_PAGE) as usize);
        for i in 0..pages {
            let frame = self.allocator.alloc(domain)?;
            let vpage = base_vpage + i;
            self.spaces.table_mut(domain).map(vpage, frame)?;
            for l in 0..LINES_PER_PAGE {
                arena.push(CacheLineAddr(vpage * LINES_PER_PAGE + l));
            }
        }
        if !self.tenants.iter().any(|t| t.domain == domain) {
            self.tenants.push(Tenant {
                domain,
                workload: None,
                source: RequestSource::Core(self.tenants.len() as u32),
                ready_at: self.mc.now(),
                waiting_on: None,
                waiting_line: None,
                ops_done: 0,
                finished: false,
            });
        }
        Ok(arena)
    }

    /// Marks `domain` as an enclave with the given integrity and
    /// response configuration (§4.4). Must already be a tenant.
    pub fn make_enclave(
        &mut self,
        domain: DomainId,
        integrity_checked: bool,
        response: AttackResponse,
    ) {
        self.enclaves
            .insert(domain.0, Enclave::new(domain, integrity_checked, response));
    }

    /// Attaches a workload to a tenant. The workload's
    /// [`Workload::source`] decides whether it runs as core traffic
    /// (through the LLC) or DMA (bypassing it).
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for unknown domains.
    pub fn set_workload(&mut self, domain: DomainId, workload: Box<dyn Workload>) -> Result<()> {
        let t = self
            .tenants
            .iter_mut()
            .find(|t| t.domain == domain)
            .ok_or_else(|| Error::Config(format!("{domain} is not a tenant")))?;
        t.source = workload.source();
        t.workload = Some(workload);
        t.finished = false;
        Ok(())
    }

    /// Detaches a tenant (ASID destroy / migration source): removes it
    /// from the scheduler, tears down its address space, and
    /// quarantines its frames under [`DomainId::HOST`] so they are
    /// never handed to another tenant on this machine. Returns the
    /// [`TenantExport`] a destination machine needs to resume the
    /// tenant; dropping the export instead models plain destruction.
    ///
    /// An in-flight memory request of the detached tenant is
    /// deliberately left to drain: the completion path ignores
    /// requests whose issuer is gone.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for unknown domains.
    pub fn detach_tenant(&mut self, domain: DomainId) -> Result<TenantExport> {
        let pos = self
            .tenants
            .iter()
            .position(|t| t.domain == domain)
            .ok_or_else(|| Error::Config(format!("{domain} is not a tenant")))?;
        let tenant = self.tenants.remove(pos);
        self.enclaves.remove(&domain.0);
        let pages = self
            .spaces
            .remove_table(domain)
            .map(|t| t.len() as u64)
            .unwrap_or(0);
        for frame in self.allocator.frames_of(domain) {
            self.allocator.reassign(frame, DomainId::HOST)?;
        }
        Ok(TenantExport {
            domain,
            pages,
            workload: tenant.workload,
            ops_done: tenant.ops_done,
            triggers: self.mc.export_triggers(domain),
        })
    }

    /// Admits a detached tenant (migration destination): allocates a
    /// fresh arena of `export.pages` pages under the export's domain
    /// and resumes its workload mid-stream. The arena's *virtual*
    /// lines are the same `0..pages` range the tenant had on the
    /// source machine — [`TenantExport`] documents why that keeps the
    /// stream valid across geometries — while physical placement is
    /// decided by this machine's allocator and defense policy.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if the domain is already a tenant here;
    /// propagates allocation failures.
    pub fn admit_tenant(&mut self, export: TenantExport) -> Result<()> {
        if self.tenants.iter().any(|t| t.domain == export.domain) {
            return Err(Error::Config(format!(
                "{} is already a tenant of this machine",
                export.domain
            )));
        }
        self.add_tenant(export.domain, export.pages)?;
        self.mc.import_triggers(export.domain, export.triggers);
        if let Some(workload) = export.workload {
            self.set_workload(export.domain, workload)?;
        }
        Ok(())
    }

    /// Translates a tenant's virtual line to its current physical
    /// line.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn translate(&self, domain: DomainId, vline: CacheLineAddr) -> Result<CacheLineAddr> {
        let pa = self
            .spaces
            .translate(domain, hammertime_common::VirtAddr(vline.0 * 64))?;
        Ok(pa.line())
    }

    /// Groups a domain's virtual lines by their current physical
    /// (bank, row): the attacker's reverse-engineered view used to
    /// build hammer patterns. Returns `(bank, row, virtual lines)`
    /// sorted by bank then row.
    pub fn rows_of_domain(&self, domain: DomainId) -> Vec<(BankId, u32, Vec<CacheLineAddr>)> {
        let mut groups: BTreeMap<(usize, u32), Vec<CacheLineAddr>> = BTreeMap::new();
        let g = self.cfg.geometry;
        if let Some(table) = self.spaces.table(domain) {
            for (vpage, _) in table.iter() {
                for l in 0..LINES_PER_PAGE {
                    let vline = CacheLineAddr(vpage * LINES_PER_PAGE + l);
                    let Ok(pline) = self.translate(domain, vline) else {
                        continue;
                    };
                    let Ok((bank, row)) = self.mc.locate(pline) else {
                        continue;
                    };
                    groups.entry((bank.flat(&g), row)).or_default().push(vline);
                }
            }
        }
        groups
            .into_iter()
            .map(|((flat, row), lines)| (bank_from_flat(&g, flat), row, lines))
            .collect()
    }

    /// The domain owning the physical row (flip attribution).
    pub fn owner_of_row(&self, bank: &BankId, row: u32) -> Option<DomainId> {
        self.allocator.owner_of_row(bank, row)
    }

    /// Captures a deep copy of the machine's mutable state, or `None`
    /// if any tenant workload or the defense daemon is
    /// non-checkpointable (their `box_clone` returns `None` — e.g. a
    /// trace replayer borrowing external state).
    pub fn checkpoint(&self) -> Option<MachineCheckpoint> {
        let tenants = self
            .tenants
            .iter()
            .map(Tenant::try_clone)
            .collect::<Option<Vec<_>>>()?;
        let daemon = self.daemon.box_clone()?;
        Some(MachineCheckpoint {
            at: self.mc.now(),
            mc: self.mc.clone(),
            llc: self.llc.clone(),
            allocator: self.allocator.clone(),
            spaces: self.spaces.clone(),
            daemon,
            enclaves: self.enclaves.clone(),
            tenants,
            next_id: self.next_id,
            window_start: self.window_start,
            overhead: self.overhead,
            flips: self.flips.clone(),
            remapped_this_window: self.remapped_this_window.clone(),
            interrupt_log: self.interrupt_log.clone(),
            lockup: self.lockup.clone(),
            run_start: self.run_start,
            rng: self.rng.clone(),
        })
    }

    /// Rewinds the machine to `cp`, leaving the checkpoint reusable.
    /// The restored timeline is deterministic: re-running it replays
    /// the original commands, flips, and stats exactly (see
    /// [`MachineCheckpoint`] for the tracer/shadow sharing caveat).
    ///
    /// # Panics
    ///
    /// Never: the checkpoint was only constructible from checkpointable
    /// parts, so re-cloning them cannot fail.
    pub fn restore(&mut self, cp: &MachineCheckpoint) {
        self.mc = cp.mc.clone();
        self.llc = cp.llc.clone();
        self.allocator = cp.allocator.clone();
        self.spaces = cp.spaces.clone();
        self.daemon = cp
            .daemon
            .box_clone()
            .expect("checkpointed daemon is checkpointable");
        self.enclaves = cp.enclaves.clone();
        self.tenants = cp
            .tenants
            .iter()
            .map(|t| {
                t.try_clone()
                    .expect("checkpointed workload is checkpointable")
            })
            .collect();
        self.next_id = cp.next_id;
        self.window_start = cp.window_start;
        self.overhead = cp.overhead;
        self.flips = cp.flips.clone();
        self.remapped_this_window = cp.remapped_this_window.clone();
        self.interrupt_log = cp.interrupt_log.clone();
        self.lockup = cp.lockup.clone();
        self.run_start = cp.run_start;
        self.rng = cp.rng.clone();
        // The memo outlives the restore only if the map generation
        // matches; clearing unconditionally keeps restore simple.
        self.frames_cache.borrow_mut().1.clear();
    }

    /// The most recent epoch checkpoint, if any was captured.
    pub fn last_checkpoint(&self) -> Option<&MachineCheckpoint> {
        self.last_checkpoint.as_deref()
    }

    /// Rewinds to the most recent epoch checkpoint, leaving it in
    /// place for further rewinds. Returns the checkpoint's capture
    /// time, or `None` if no checkpoint exists.
    pub fn restore_last_checkpoint(&mut self) -> Option<Cycle> {
        let cp = self.last_checkpoint.take()?;
        self.restore(&cp);
        let at = cp.at();
        self.last_checkpoint = Some(cp);
        Some(at)
    }

    /// Runs the machine for `cycles` cycles (stops early on platform
    /// lockup).
    pub fn run(&mut self, cycles: u64) {
        let start = self.mc.now();
        self.run_inner(cycles);
        crate::metrics::credit_sim_cycles(self.mc.now().raw() - start.raw());
    }

    fn run_inner(&mut self, cycles: u64) {
        let end = self.mc.now() + cycles;
        if self.run_start.is_none() {
            self.run_start = Some(self.mc.now());
        }
        loop {
            if self.lockup.is_some() {
                break;
            }
            // 1. Issue every op that is ready at the current time.
            let now = self.mc.now();
            let mut progressed = true;
            while progressed {
                progressed = false;
                for i in 0..self.tenants.len() {
                    if self.lockup.is_some() {
                        return;
                    }
                    let t = &self.tenants[i];
                    if t.finished
                        || t.workload.is_none()
                        || t.waiting_on.is_some()
                        || t.ready_at > now
                    {
                        continue;
                    }
                    let op = self.tenants[i]
                        .workload
                        .as_mut()
                        .expect("checked above")
                        .next_op();
                    match op {
                        None => self.tenants[i].finished = true,
                        Some(op) => {
                            self.execute_op(i, op);
                            progressed = true;
                        }
                    }
                }
            }
            // 2. Pick the next interesting time.
            let waiting = self.tenants.iter().any(|t| t.waiting_on.is_some());
            let next_ready = self
                .tenants
                .iter()
                .filter(|t| !t.finished && t.workload.is_some() && t.waiting_on.is_none())
                .map(|t| t.ready_at)
                .min();
            if waiting {
                // Advance precisely until the outstanding requests
                // complete (or the quantum expires so interrupts get
                // serviced even under continuous congestion).
                let step = Cycle(now.raw() + self.cfg.quantum);
                let target = match next_ready {
                    Some(r) if r > now => step.min(r).min(end),
                    _ => step.min(end),
                };
                if self.cfg.reference_scheduler {
                    self.mc.run_while_busy_reference(target);
                } else {
                    self.mc.run_while_busy(target);
                }
            } else {
                let target = match next_ready {
                    Some(r) if r > now => r.min(end),
                    Some(_) => Cycle(now.raw() + 1).min(end),
                    None => end,
                };
                if self.cfg.reference_scheduler {
                    self.mc.advance_to_reference(target);
                } else {
                    self.mc.advance_to(target);
                }
            }
            // 3. Service completions, defenses, windows, flips.
            self.service_completions();
            self.service_defense();
            self.roll_windows();
            self.collect_flips();
            // Charge the engine's per-cell step budget in *simulated
            // cycles* (no-op outside a budgeted suite run). Both
            // scheduler paths advance `mc.now()` identically, so a
            // budget buys the same simulated span on either. The
            // `.max(1)` stall guard charges a wedged machine that stops
            // advancing, so runaway loops still terminate.
            crate::experiments::engine::charge_step_budget(
                (self.mc.now().raw() - now.raw()).max(1),
            );
            if self.mc.now() >= end {
                break;
            }
        }
        // Final drain of anything recorded at the boundary.
        self.service_completions();
        self.collect_flips();
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn execute_op(&mut self, idx: usize, op: AccessOp) {
        let domain = self.tenants[idx].domain;
        let source = self.tenants[idx].source;
        let now = self.mc.now();
        // Translate the virtual line through the domain's page table
        // (DMA goes through the IOMMU view of the same table).
        let Ok(pline) = self.translate(domain, op.line()) else {
            // Unmapped access: fault, drop the op.
            self.tenants[idx].ready_at = now + self.cfg.llc_hit_cycles;
            return;
        };
        match (op, source) {
            (AccessOp::Flush(_), RequestSource::Core(_)) => {
                if let Some(dirty) = self.llc.flush(pline) {
                    self.submit_host_write(dirty, now);
                }
                self.tenants[idx].ready_at = now + self.cfg.flush_cycles;
            }
            (AccessOp::Flush(_), RequestSource::Dma(_)) => {
                // DMA has no cache to flush; treat as a no-op delay.
                self.tenants[idx].ready_at = now + 1;
            }
            (AccessOp::Read(_), RequestSource::Core(_)) => {
                let r = self.llc.access(pline, false);
                if let Some(dirty) = r.writeback {
                    self.submit_host_write(dirty, now);
                }
                if r.hit {
                    self.tenants[idx].ready_at = now + self.cfg.llc_hit_cycles;
                    self.tenants[idx].ops_done += 1;
                    self.check_enclave_read(idx, pline);
                } else {
                    self.submit_tenant(idx, pline, RequestKind::Read, now);
                }
            }
            (AccessOp::Write(_, fill), RequestSource::Core(_)) => {
                // Functional write-through; write-back timing.
                let _ = self.mc.write_data(pline, &[fill; 64]);
                let r = self.llc.access(pline, true);
                if let Some(dirty) = r.writeback {
                    self.submit_host_write(dirty, now);
                }
                if r.hit {
                    self.tenants[idx].ready_at = now + self.cfg.llc_hit_cycles;
                    self.tenants[idx].ops_done += 1;
                } else {
                    self.submit_tenant(idx, pline, RequestKind::Write, now);
                }
            }
            (AccessOp::Read(_), RequestSource::Dma(_)) => {
                self.submit_tenant(idx, pline, RequestKind::Read, now);
            }
            (AccessOp::Write(_, fill), RequestSource::Dma(_)) => {
                let _ = self.mc.write_data(pline, &[fill; 64]);
                self.submit_tenant(idx, pline, RequestKind::Write, now);
            }
        }
    }

    fn submit_tenant(&mut self, idx: usize, pline: CacheLineAddr, kind: RequestKind, now: Cycle) {
        let id = self.fresh_id();
        let t = &self.tenants[idx];
        let req = MemRequest {
            id,
            line: pline,
            kind,
            source: t.source,
            domain: t.domain,
            arrival: now,
        };
        match self.mc.submit(req) {
            Ok(()) => {
                self.tenants[idx].waiting_on = Some(id);
                self.tenants[idx].waiting_line = Some(pline);
            }
            Err(_) => {
                // Privilege/translation rejection (e.g. subarray-group
                // enforcement): the access faults; the tenant moves on.
                self.tenants[idx].ready_at = now + self.cfg.llc_hit_cycles;
            }
        }
    }

    fn submit_host_write(&mut self, pline: CacheLineAddr, now: Cycle) {
        let id = self.fresh_id();
        let _ = self.mc.submit(MemRequest {
            id,
            line: pline,
            kind: RequestKind::Write,
            source: RequestSource::Core(0),
            domain: DomainId::HOST,
            arrival: now,
        });
    }

    fn service_completions(&mut self) {
        for c in self.mc.drain_completions() {
            if let Some(idx) = self.tenants.iter().position(|t| t.waiting_on == Some(c.id)) {
                self.tenants[idx].waiting_on = None;
                self.tenants[idx].ready_at = c.done + self.cfg.think_cycles;
                self.tenants[idx].ops_done += 1;
                if matches!(c.kind, RequestKind::Read) {
                    if let Some(line) = self.tenants[idx].waiting_line.take() {
                        self.check_enclave_read(idx, line);
                    }
                }
                self.tenants[idx].waiting_line = None;
            }
        }
    }

    fn check_enclave_read(&mut self, idx: usize, pline: CacheLineAddr) {
        let domain = self.tenants[idx].domain;
        let Some(enclave) = self.enclaves.get_mut(&domain.0) else {
            return;
        };
        if enclave.status != EnclaveStatus::Running {
            return;
        }
        let poisoned = self.mc.read_data(pline).map(|(_, p)| p).unwrap_or(false);
        match enclave.on_read(poisoned, self.mc.now()) {
            Ok(()) => {}
            Err(Error::MachineLockup(msg)) => {
                self.lockup = Some(msg);
            }
            Err(_) => {}
        }
    }

    fn service_defense(&mut self) {
        let ints = self.mc.drain_interrupts();
        self.overhead.interrupts += ints.len() as u64;
        self.interrupt_log.extend(ints.iter().copied());
        if let Some(tracer) = &self.tracer {
            let now = self.mc.now();
            for int in &ints {
                // Latency from the counter overflow raising the
                // interrupt to the quantum boundary servicing it.
                let latency = now.delta(int.time);
                tracer.emit(
                    now,
                    Event::ActInterrupt {
                        channel: int.channel,
                        raised_at: int.time.raw(),
                        latency,
                    },
                );
                tracer.observe("machine.act_interrupt_latency", latency);
            }
        }
        // Enclave-visible interrupts (§4.4): the CPU knows which rows
        // neighbor the reported aggressor, so it notifies enclaves
        // whose memory sits inside the blast radius — the enclave then
        // protects *its own* page (exit, or ask for it to be moved).
        let mut enclave_remaps: Vec<u64> = Vec::new();
        let mut enclave_exits: Vec<DomainId> = Vec::new();
        if !self.enclaves.is_empty() {
            let topo = self.topology();
            for int in &ints {
                let Some(line) = int.addr else { continue };
                let aggressor_owner = self.allocator.owner_of(line.page_frame());
                let Ok(victims) = topo.neighbor_row_lines(line, self.cfg.assumed_radius) else {
                    continue;
                };
                for vline in victims.into_iter().chain([line]) {
                    let Ok((vbank, vrow)) = topo.locate(vline) else {
                        continue;
                    };
                    for frame in self.frames_of_row(&vbank, vrow) {
                        let Some(owner) = self.allocator.owner_of(frame) else {
                            continue;
                        };
                        // An enclave's own accesses are not an attack on it.
                        if aggressor_owner == Some(owner) {
                            continue;
                        }
                        if let Some(enclave) = self.enclaves.get_mut(&owner.0) {
                            match enclave.on_act_interrupt() {
                                EnclaveReaction::None => {}
                                EnclaveReaction::Exit => enclave_exits.push(owner),
                                EnclaveReaction::Remap => enclave_remaps.push(frame),
                            }
                        }
                    }
                }
            }
        }
        for domain in enclave_exits {
            if let Some(t) = self.tenants.iter_mut().find(|t| t.domain == domain) {
                t.finished = true;
            }
        }
        for frame in enclave_remaps {
            self.do_remap(frame);
        }
        let mut actions = self.daemon.on_act_interrupts(&ints);
        let samples = self.llc.drain_samples();
        actions.extend(self.daemon.on_pmu_samples(&samples));
        self.execute_actions(actions);
    }

    fn roll_windows(&mut self) {
        let t_refw = self.cfg.timing.t_refw;
        let mut rolled = false;
        while self.mc.now().delta(self.window_start) >= t_refw {
            self.window_start += t_refw;
            self.remapped_this_window.clear();
            let actions = self.daemon.on_window_rollover(self.mc.now());
            self.execute_actions(actions);
            rolled = true;
        }
        // Epoch checkpoint at the window boundary: one capture per
        // rollover batch, after the daemon's window work settled, so a
        // restore resumes from a self-consistent window state.
        if rolled && self.cfg.epoch_checkpoints {
            if let Some(cp) = self.checkpoint() {
                self.last_checkpoint = Some(Box::new(cp));
            }
        }
    }

    fn execute_actions(&mut self, actions: Vec<DefenseAction>) {
        for a in actions {
            self.overhead.actions += 1;
            match a {
                DefenseAction::RefreshRow { line, auto_pre } => {
                    let id = self.fresh_id();
                    if self.mc.refresh_row(id, line, auto_pre).is_ok() {
                        self.overhead.refresh_ops += 1;
                    }
                }
                DefenseAction::RefNeighbors { line, radius } => {
                    let id = self.fresh_id();
                    if self.mc.ref_neighbors(id, line, radius).is_ok() {
                        self.overhead.refresh_ops += 1;
                    }
                }
                DefenseAction::ConvolutedRefresh { line } => {
                    self.overhead.convoluted_refreshes += 1;
                    if let Some(dirty) = self.llc.flush(line) {
                        self.submit_host_write(dirty, self.mc.now());
                    }
                    // The load may or may not ACT the row; the MC's row
                    // buffer state decides — exactly the imprecision of
                    // the status-quo path (§4.3).
                    let id = self.fresh_id();
                    let now = self.mc.now();
                    let _ = self.mc.submit(MemRequest {
                        id,
                        line,
                        kind: RequestKind::Read,
                        source: RequestSource::Core(0),
                        domain: DomainId::HOST,
                        arrival: now,
                    });
                }
                DefenseAction::LockLine { line } => match self.llc.lock(line) {
                    Ok(_) => self.overhead.lines_locked += 1,
                    Err(_) => {
                        self.overhead.lock_fallbacks += 1;
                        let more = self.daemon.on_lock_failed(line);
                        // One level of fallback is all the protocol
                        // defines; recursion is bounded by construction.
                        for m in more {
                            if let DefenseAction::RemapFrame { frame } = m {
                                self.overhead.actions += 1;
                                self.do_remap(frame);
                            }
                        }
                    }
                },
                DefenseAction::UnlockAll => self.llc.unlock_all(),
                DefenseAction::RemapFrame { frame } => self.do_remap(frame),
            }
        }
    }

    fn do_remap(&mut self, frame: u64) {
        let Some(owner) = self.allocator.owner_of(frame) else {
            return;
        };
        if owner.is_host() {
            return; // never migrate host/quarantined frames
        }
        if !self.remapped_this_window.insert(frame) {
            return; // one migration per frame per window
        }
        // Isolation-aware destination: first-fit would drop the page
        // next to other tenants' (possibly also-migrated) pages and
        // re-create the cross-domain adjacency we are escaping.
        let Ok(new_frame) = self
            .allocator
            .alloc_isolated(owner, self.cfg.assumed_radius)
        else {
            return; // no room to migrate: defense degrades, attack may proceed
        };
        let now = self.mc.now();
        if let Some(tracer) = &self.tracer {
            tracer.emit(now, Event::Remap { frame, new_frame });
        }
        for l in 0..LINES_PER_PAGE {
            let old = CacheLineAddr(frame * LINES_PER_PAGE + l);
            let new = CacheLineAddr(new_frame * LINES_PER_PAGE + l);
            if let Ok((data, _)) = self.mc.read_data(old) {
                let _ = self.mc.write_data(new, &data);
            }
            self.llc.flush(old);
            // Charge the copy: one read of the old line, one write of
            // the new line, as host traffic.
            let id = self.fresh_id();
            let _ = self.mc.submit(MemRequest {
                id,
                line: old,
                kind: RequestKind::Read,
                source: RequestSource::Core(0),
                domain: DomainId::HOST,
                arrival: now,
            });
            let id = self.fresh_id();
            let _ = self.mc.submit(MemRequest {
                id,
                line: new,
                kind: RequestKind::Write,
                source: RequestSource::Core(0),
                domain: DomainId::HOST,
                arrival: now,
            });
            self.overhead.remap_copy_lines += 1;
        }
        // Update the owning page table.
        if let Some(table) = self.spaces.table(owner) {
            if let Some(vpage) = table.vpage_of_frame(frame) {
                let _ = self.spaces.table_mut(owner).remap(vpage, new_frame);
            }
        }
        // Retire the hammered frame to the host quarantine pool.
        let _ = self.allocator.reassign(frame, DomainId::HOST);
        self.overhead.frames_retired += 1;
        self.overhead.pages_remapped += 1;
    }

    fn collect_flips(&mut self) {
        let g = self.cfg.geometry;
        for mut f in self.mc.drain_flips() {
            let bank = bank_from_flat(&g, f.flat_bank);
            // A row spans several page frames (one per column group),
            // so the victim owner is determined by the frame holding
            // the flipped bit, not the row's first frame.
            f.victim_domain = self.owner_of_bit(&bank, f.victim_row, f.bit);
            f.aggressor_domain = self.allocator.owner_of_row(&bank, f.aggressor_row);
            self.flips.push(f);
        }
    }

    /// The domain owning the frame that holds `bit` of `(bank, row)`.
    fn owner_of_bit(&self, bank: &BankId, row: u32, bit: u64) -> Option<DomainId> {
        let col = (bit / (hammertime_common::addr::CACHE_LINE_BYTES * 8)) as u32;
        let coord = hammertime_common::DramCoord {
            channel: bank.channel,
            rank: bank.rank,
            bank_group: bank.bank_group,
            bank: bank.bank,
            row,
            col,
        };
        let line = self.mc.map().to_line(&coord).ok()?;
        self.allocator.owner_of(line.page_frame())
    }

    /// Every distinct page frame overlapping `(bank, row)` — the unit
    /// an isolation- or migration-based response must cover.
    /// Memoized per address-map generation: each `(bank, row)` is
    /// translated once, and the whole memo is discarded when the map is
    /// reconfigured (the generation counter changes).
    pub fn frames_of_row(&self, bank: &BankId, row: u32) -> Vec<u64> {
        let g = self.cfg.geometry;
        let key = (bank.flat(&g), row);
        let generation = self.mc.map().generation();
        {
            let mut cache = self.frames_cache.borrow_mut();
            if cache.0 != generation {
                cache.0 = generation;
                cache.1.clear();
            } else if let Some(frames) = cache.1.get(&key) {
                return frames.clone();
            }
        }
        let mut frames: Vec<u64> = (0..g.columns)
            .filter_map(|col| {
                let coord = hammertime_common::DramCoord {
                    channel: bank.channel,
                    rank: bank.rank,
                    bank_group: bank.bank_group,
                    bank: bank.bank,
                    row,
                    col,
                };
                self.mc.map().to_line(&coord).ok().map(|l| l.page_frame())
            })
            .collect();
        frames.sort_unstable();
        frames.dedup();
        self.frames_cache.borrow_mut().1.insert(key, frames.clone());
        frames
    }

    /// Drains the annotated flip events accumulated so far.
    pub fn drain_annotated_flips(&mut self) -> Vec<FlipEvent> {
        self.collect_flips();
        std::mem::take(&mut self.flips)
    }

    /// Hammer-probes a row directly from the host (the inference
    /// methodology of §2.1/§4.1): alternates `rounds` read pairs
    /// between `row` and `dummy_row` in `bank` (forcing an ACT per
    /// read via bank conflicts) and returns the fresh flip events.
    /// The caller filters by `aggressor_row` to attribute victims.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn probe_hammer(
        &mut self,
        bank: &BankId,
        row: u32,
        dummy_row: u32,
        rounds: u64,
    ) -> Result<Vec<FlipEvent>> {
        let topo = self.topology();
        let line_a = topo.line_of_row(bank, row)?;
        let line_d = topo.line_of_row(bank, dummy_row)?;
        for _ in 0..rounds {
            for line in [line_a, line_d] {
                let id = self.fresh_id();
                let now = self.mc.now();
                self.mc.submit(MemRequest {
                    id,
                    line,
                    kind: RequestKind::Read,
                    source: RequestSource::Core(0),
                    domain: DomainId::HOST,
                    arrival: now,
                })?;
            }
            self.mc.drain();
            self.mc.drain_completions();
        }
        self.collect_flips();
        Ok(std::mem::take(&mut self.flips))
    }

    /// Direct white-box access to the controller (experiments and
    /// probing campaigns).
    pub fn mc(&self) -> &MemCtrl {
        &self.mc
    }

    /// Read access to the LLC (lock accounting, stats).
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// Scans every line a domain currently owns and classifies the
    /// damage ECC would report: `(clean, corrected, uncorrectable)`
    /// line counts. The E10 ablation's observable.
    pub fn scan_domain_ecc(&self, domain: DomainId) -> (u64, u64, u64) {
        use hammertime_dram::data::EccOutcome;
        let (mut clean, mut corrected, mut uncorrectable) = (0u64, 0u64, 0u64);
        if let Some(table) = self.spaces.table(domain) {
            for (vpage, _) in table.iter() {
                for l in 0..LINES_PER_PAGE {
                    let vline = CacheLineAddr(vpage * LINES_PER_PAGE + l);
                    let Ok(pline) = self.translate(domain, vline) else {
                        continue;
                    };
                    match self.mc.read_data_detailed(pline) {
                        Ok((_, EccOutcome::Clean)) => clean += 1,
                        Ok((_, EccOutcome::Corrected(_))) => corrected += 1,
                        Ok((_, EccOutcome::Uncorrectable(_))) => uncorrectable += 1,
                        Err(_) => {}
                    }
                }
            }
        }
        (clean, corrected, uncorrectable)
    }

    /// Retention check on a physical row (failure injection): records
    /// and reports decay if the row has gone unrefreshed longer than
    /// `margin` refresh windows.
    pub fn check_retention(&mut self, bank: &BankId, row: u32, margin: f64) -> bool {
        let now = self.mc.now();
        self.mc.dram_mut().check_retention(bank, row, now, margin)
    }

    /// Reprograms the ACT counter block (host MSR write, §4.2).
    pub fn configure_act_counters(&mut self, config: ActCounterConfig) {
        self.mc.configure_act_counters(config);
    }

    /// Drains the log of every ACT interrupt serviced so far.
    pub fn drain_interrupt_log(&mut self) -> Vec<hammertime_memctrl::ActInterrupt> {
        std::mem::take(&mut self.interrupt_log)
    }

    /// Host-issued refresh instruction on the row containing the
    /// physical `line` (§4.3).
    ///
    /// # Errors
    ///
    /// Propagates controller submission failures.
    pub fn host_refresh_row(&mut self, line: CacheLineAddr, auto_pre: bool) -> Result<()> {
        let id = self.fresh_id();
        self.mc.refresh_row(id, line, auto_pre)
    }

    /// Host-issued REF_NEIGHBORS around the row containing the
    /// physical `line` (§4.3).
    ///
    /// # Errors
    ///
    /// Propagates controller submission failures.
    pub fn host_ref_neighbors(&mut self, line: CacheLineAddr, radius: u32) -> Result<()> {
        let id = self.fresh_id();
        self.mc.ref_neighbors(id, line, radius)
    }

    /// Submits a raw request to the controller, bypassing the tenant
    /// machinery (privilege testing, probing).
    ///
    /// # Errors
    ///
    /// Propagates controller submission failures.
    pub fn submit_raw(&mut self, req: MemRequest) -> Result<()> {
        self.mc.submit(req)
    }

    /// A fresh deterministic RNG stream derived from the machine seed.
    pub fn fork_rng(&mut self) -> DetRng {
        self.rng.fork(self.next_id)
    }

    /// The pfn-leak surface ([`hammertime_os::AddressSpaces::pfn_map`]
    /// forwarded through the machine): `domain`'s `(vpage, frame)`
    /// pairs in ascending vpage order. This is the privileged oracle
    /// the pfn-based allocation strategy in `crates/attack` consumes;
    /// the SPOILER-style strategy deliberately avoids it and uses
    /// [`Machine::probe_pair`] instead.
    pub fn leak_pfns(&self, domain: DomainId) -> Vec<(u64, u64)> {
        self.spaces.pfn_map(domain)
    }

    /// A timing side-channel probe over two of `domain`'s own virtual
    /// lines, classifying the pair the way access-latency measurement
    /// would: row hit (same bank, same row — fast), row conflict (same
    /// bank, different row — slow), or no conflict (different banks).
    /// The probe leaks *only* what timing leaks on real hardware; it
    /// never exposes frame numbers or row indices, which is exactly
    /// the budget a SPOILER-like contiguity inference operates on.
    ///
    /// # Errors
    ///
    /// Propagates translation failures for unmapped lines.
    pub fn probe_pair(
        &self,
        domain: DomainId,
        a: CacheLineAddr,
        b: CacheLineAddr,
    ) -> Result<ProbeOutcome> {
        let (bank_a, row_a) = self.mc.locate(self.translate(domain, a)?)?;
        let (bank_b, row_b) = self.mc.locate(self.translate(domain, b)?)?;
        Ok(if bank_a != bank_b {
            ProbeOutcome::NoConflict
        } else if row_a == row_b {
            ProbeOutcome::RowHit
        } else {
            ProbeOutcome::RowConflict
        })
    }

    /// Inverts a flat bank index (as carried by
    /// [`FlipEvent::flat_bank`]) back to a [`BankId`] under this
    /// machine's geometry — the hook victim orchestrators use to
    /// attribute a flip to the frames of its row.
    pub fn bank_at(&self, flat: usize) -> BankId {
        bank_from_flat(&self.cfg.geometry, flat)
    }

    /// Produces the report for everything run so far.
    pub fn report(&mut self) -> SimReport {
        self.collect_flips();
        let mut report = SimReport {
            defense: self.cfg.defense.name().to_string(),
            cycles: self.mc.now().raw(),
            flips_total: self.flips.len() as u64,
            flips_cross_domain: self.flips.iter().filter(|f| f.is_cross_domain()).count() as u64,
            mc: self.mc.stats(),
            dram: self.mc.dram_stats(),
            cache: self.llc.stats(),
            overhead: self.overhead,
            lockup: self.lockup.clone(),
            ..Default::default()
        };
        report.overhead.guard_frames = self.allocator.guard_frames;
        report.overhead.throttle_cycles = self.mc.mitigation().throttle_cycles;
        report.overhead.quota_throttles = self.mc.mitigation().quota_throttles;
        for (&domain, &counts) in self.mc.trigger_ledger() {
            report.triggers_by_tenant.insert(domain, counts);
        }
        for f in &self.flips {
            if let Some(v) = f.victim_domain {
                *report.flips_by_victim.entry(v.0).or_insert(0) += 1;
                if f.is_cross_domain() {
                    *report.flips_cross_by_victim.entry(v.0).or_insert(0) += 1;
                }
            }
        }
        for t in &self.tenants {
            *report.ops_by_tenant.entry(t.domain.0).or_insert(0) += t.ops_done;
        }
        for (id, e) in &self.enclaves {
            report.enclaves.insert(*id, format!("{:?}", e.status));
        }
        report.finalize_energy(&hammertime_common::energy::EnergyModel::ddr4());
        if let Some(tracer) = &self.tracer {
            report.dram.register_metrics(tracer);
            report.mc.register_metrics(tracer);
            // Wheel health counters live outside `McStats` (the
            // reference path must produce identical stats), so they
            // reach observability through the metrics registry only.
            let (events, occupancy, peak) = self.mc.wheel_counters();
            tracer.counter_set("mc.wheel.events_processed", events);
            tracer.counter_set("mc.wheel.occupancy", occupancy);
            tracer.counter_set("mc.wheel.occupancy_peak", peak);
            report.metrics = Some(tracer.snapshot_metrics());
        }
        report
    }

    /// The enclave record for `domain`, if any.
    pub fn enclave(&self, domain: DomainId) -> Option<&Enclave> {
        self.enclaves.get(&domain.0)
    }

    /// Returns `true` when every attached workload has run to
    /// completion (makespan measurement).
    pub fn all_finished(&self) -> bool {
        self.tenants
            .iter()
            .filter(|t| t.workload.is_some())
            .all(|t| t.finished && t.waiting_on.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime_workloads::{HammerPattern, StreamWorkload};

    #[test]
    fn bank_from_flat_round_trips() {
        let g = Geometry::server();
        for flat in 0..g.total_banks() as usize {
            let bank = bank_from_flat(&g, flat);
            assert_eq!(bank.flat(&g), flat);
        }
    }

    #[test]
    fn frames_of_row_memo_matches_fresh_translation() {
        let m = Machine::new(MachineConfig::fast(DefenseKind::None, 1_000_000)).unwrap();
        let g = m.cfg.geometry;
        let bank = bank_from_flat(&g, 0);
        let first = m.frames_of_row(&bank, 3);
        assert!(!first.is_empty());
        // Second call is served from the cache and must be identical.
        assert_eq!(m.frames_of_row(&bank, 3), first);
        // A different row misses the cache and translates on its own.
        assert_ne!(m.frames_of_row(&bank, 4), first);
    }

    #[test]
    fn run_start_records_first_run_cycle() {
        let mut m = Machine::new(MachineConfig::fast(DefenseKind::None, 1_000_000)).unwrap();
        let d = DomainId(1);
        let arena = m.add_tenant(d, 4).unwrap();
        m.set_workload(d, Box::new(StreamWorkload::new(arena, 500, 0)))
            .unwrap();
        assert_eq!(m.run_start(), None, "never ran yet");
        m.run(1_000);
        let first = m.run_start().expect("recorded on first run");
        assert!(m.now() > first, "time advanced past the recorded start");
        m.run(1_000);
        assert_eq!(m.run_start(), Some(first), "start is sticky across runs");
    }

    #[test]
    fn benign_tenant_completes_work() {
        let mut m = Machine::new(MachineConfig::fast(DefenseKind::None, 1_000_000)).unwrap();
        let d = DomainId(1);
        let arena = m.add_tenant(d, 4).unwrap();
        assert_eq!(arena.len(), 4 * 64);
        m.set_workload(d, Box::new(StreamWorkload::new(arena, 500, 0)))
            .unwrap();
        m.run(500_000);
        let r = m.report();
        assert_eq!(r.ops_by_tenant[&1], 500);
        assert_eq!(r.flips_total, 0);
        assert!(r.mc.demand_completed() > 0);
    }

    #[test]
    fn undefended_double_sided_attack_flips_victim() {
        let mut m = Machine::new(MachineConfig::fast(DefenseKind::None, 24)).unwrap();
        let attacker = DomainId(1);
        let victim = DomainId(2);
        // Interleave allocations so the attacker's rows sandwich a
        // victim row: attacker takes row stripe 0, victim stripe 1,
        // attacker stripe 2.
        let _a1 = m.add_tenant(attacker, 2).unwrap();
        let _v = m.add_tenant(victim, 2).unwrap();
        let _a2 = m.add_tenant(attacker, 2).unwrap();
        // Find two attacker rows sandwiching a victim row.
        let rows = m.rows_of_domain(attacker);
        let mut pattern = None;
        'outer: for (b1, r1, l1) in &rows {
            for (b2, r2, l2) in &rows {
                if b1 == b2 && *r2 == r1 + 2 {
                    let mid = r1 + 1;
                    if m.owner_of_row(b1, mid) == Some(victim) {
                        pattern = Some((l1[0], l2[0]));
                        break 'outer;
                    }
                }
            }
        }
        let (above, below) = pattern.expect("interleaved allocation must sandwich");
        m.set_workload(
            attacker,
            Box::new(HammerPattern::double_sided(above, below, 4_000)),
        )
        .unwrap();
        m.run(4_000_000);
        let r = m.report();
        assert!(r.flips_total > 0, "undefended hammer must flip");
        assert!(r.flips_cross_domain > 0, "victim domain must be hit");
    }

    #[test]
    fn frames_of_row_memo_invalidates_on_map_reconfigure() {
        let mut m = Machine::new(MachineConfig::fast(DefenseKind::None, 1_000_000)).unwrap();
        let g = m.cfg.geometry;
        let bank = bank_from_flat(&g, 0);
        // Warm the memo under the original mapping.
        let before = m.frames_of_row(&bank, 3);
        assert!(!before.is_empty());
        m.set_mapping(MappingScheme::BankPartition).unwrap();
        // A fresh machine built directly on the new scheme is the
        // oracle: a stale memo entry would diverge from it.
        let after = m.frames_of_row(&bank, 3);
        let mut oracle_machine =
            Machine::new(MachineConfig::fast(DefenseKind::None, 1_000_000)).unwrap();
        oracle_machine
            .set_mapping(MappingScheme::BankPartition)
            .unwrap();
        assert_eq!(after, oracle_machine.frames_of_row(&bank, 3));
        assert_ne!(after, before, "schemes chosen to translate differently");
        // With tenants attached the reconfigure must refuse.
        let d = DomainId(1);
        m.add_tenant(d, 2).unwrap();
        assert!(m.set_mapping(MappingScheme::CacheLineInterleave).is_err());
    }

    #[test]
    fn checkpoint_restore_replays_identically() {
        let build = || {
            let mut m = Machine::new(MachineConfig::fast(DefenseKind::None, 24)).unwrap();
            let d = DomainId(1);
            let _arena = m.add_tenant(d, 2).unwrap();
            let rows = m.rows_of_domain(d);
            let (_, _, l1) = &rows[0];
            let (_, _, l2) = &rows[2];
            m.set_workload(
                d,
                Box::new(HammerPattern::double_sided(l1[0], l2[0], 2_000)),
            )
            .unwrap();
            m
        };
        let digest = |m: &mut Machine| {
            let r = m.report();
            (r.flips_total, r.mc, r.dram.acts, r.cycles, r.overhead)
        };
        let mut m = build();
        m.run(400_000);
        let cp = m.checkpoint().expect("hammer workloads are checkpointable");
        assert_eq!(cp.at(), m.now());
        m.run(600_000);
        let original = digest(&mut m);
        // Rewind and replay: the restored timeline must re-produce the
        // original byte-for-byte, including flip events and stats.
        m.restore(&cp);
        assert_eq!(m.now(), cp.at());
        m.run(600_000);
        assert_eq!(digest(&mut m), original);
        // The checkpoint survives the restore and works a second time.
        m.restore(&cp);
        m.run(600_000);
        assert_eq!(digest(&mut m), original);
    }

    #[test]
    fn epoch_checkpoints_capture_at_window_rollover() {
        let mut cfg = MachineConfig::fast(DefenseKind::None, 24);
        cfg.epoch_checkpoints = true;
        let t_refw = cfg.timing.t_refw;
        let mut m = Machine::new(cfg).unwrap();
        let d = DomainId(1);
        let arena = m.add_tenant(d, 2).unwrap();
        m.set_workload(d, Box::new(StreamWorkload::new(arena, u64::MAX / 2, 0)))
            .unwrap();
        assert!(m.last_checkpoint().is_none());
        m.run(3 * t_refw);
        let cp = m.last_checkpoint().expect("a window rolled over");
        assert!(
            cp.at().raw() >= t_refw,
            "checkpoint sits at/after the first rollover"
        );
        // Resuming from the epoch checkpoint replays to the same state.
        let end = 4 * t_refw;
        let mut resumed = Machine::new(MachineConfig::fast(DefenseKind::None, 24)).unwrap();
        let cp_at = cp.at().raw();
        resumed.restore(m.last_checkpoint().expect("still there"));
        m.run(end - m.now().raw());
        resumed.run(end - cp_at);
        let a = m.report();
        let b = resumed.report();
        assert_eq!((a.cycles, a.mc, a.dram.acts), (b.cycles, b.mc, b.dram.acts));
    }

    #[test]
    fn checkpoint_refuses_non_checkpointable_workloads() {
        #[derive(Debug)]
        struct Opaque;
        impl Workload for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn next_op(&mut self) -> Option<AccessOp> {
                None
            }
            // Default box_clone: None (non-checkpointable).
        }
        let mut m = Machine::new(MachineConfig::fast(DefenseKind::None, 24)).unwrap();
        let d = DomainId(1);
        let _ = m.add_tenant(d, 2).unwrap();
        assert!(m.checkpoint().is_some(), "no workload yet: checkpointable");
        m.set_workload(d, Box::new(Opaque)).unwrap();
        assert!(
            m.checkpoint().is_none(),
            "a workload without box_clone must block the checkpoint"
        );
    }

    #[test]
    fn deterministic_same_seed_same_report() {
        let run = || {
            let mut m = Machine::new(MachineConfig::fast(DefenseKind::None, 24)).unwrap();
            let d = DomainId(1);
            let arena = m.add_tenant(d, 2).unwrap();
            let rows = m.rows_of_domain(d);
            let (_, _, l1) = &rows[0];
            let (_, _, l2) = &rows[2];
            m.set_workload(
                d,
                Box::new(HammerPattern::double_sided(l1[0], l2[0], 1_000)),
            )
            .unwrap();
            let _ = arena;
            m.run(1_000_000);
            let r = m.report();
            (r.flips_total, r.mc.reads, r.dram.acts, r.cycles)
        };
        assert_eq!(run(), run());
    }
}
