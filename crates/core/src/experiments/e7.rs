//! **E7** (§2.1/§4.1): inference of subarray boundaries and internal
//! remaps from hammer-probe outcomes.

use super::engine::{Cell, CellCtx};
use super::table::fmt_f;
use super::Experiment;
use crate::machine::{Machine, MachineConfig};
use crate::taxonomy::DefenseKind;
use hammertime_os::AdjacencyMap;

pub struct E7;

impl Experiment for E7 {
    fn id(&self) -> &'static str {
        "E7"
    }

    fn title(&self) -> &'static str {
        "Subarray-boundary and remap inference accuracy"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "remap fraction",
            "boundaries found",
            "boundary precision",
            "boundary recall",
            "remap suspects",
            "remap recall",
        ]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        let quick = ctx.quick;
        [0.0, 0.06]
            .into_iter()
            .map(|remap_fraction| {
                Cell::new(format!("remap={remap_fraction}"), move || {
                    use hammertime_common::geometry::BankId;
                    let mut cfg = MachineConfig::fast(DefenseKind::None, 12);
                    cfg.remap = hammertime_dram::remap::RemapConfig {
                        remap_fraction,
                        within_subarray: true,
                    };
                    cfg.faults = ctx.faults;
                    let mut m = Machine::new(cfg)?;
                    let g = m.config().geometry;
                    let bank = BankId {
                        channel: 0,
                        rank: 0,
                        bank_group: 0,
                        bank: 0,
                    };
                    let rows = if quick {
                        g.rows_per_subarray * 2
                    } else {
                        g.rows_per_bank()
                    };
                    let rps = g.rows_per_subarray;
                    let rounds = 40;
                    let mut probe = |r: u32| -> Vec<u32> {
                        // Dummy far away in the same subarray region
                        // space.
                        let dummy = if r % g.rows_per_bank() < rps {
                            (r + rps / 2) % g.rows_per_bank()
                        } else {
                            r - rps / 2
                        };
                        let flips = m.probe_hammer(&bank, r, dummy, rounds).unwrap_or_default();
                        flips
                            .into_iter()
                            .filter(|f| f.aggressor_row == r)
                            .map(|f| f.victim_row)
                            .collect()
                    };
                    let map = AdjacencyMap::build(rows, &mut probe);
                    let found = map.infer_boundaries(rows);
                    let truth: Vec<u32> = (1..rows).filter(|p| p % rps == 0).collect();
                    let tp = found.iter().filter(|p| truth.contains(p)).count();
                    let precision = if found.is_empty() {
                        1.0
                    } else {
                        tp as f64 / found.len() as f64
                    };
                    let recall = if truth.is_empty() {
                        1.0
                    } else {
                        tp as f64 / truth.len() as f64
                    };
                    let suspects = map.infer_remap_suspects(m.config().disturbance.blast_radius);
                    let truth_remapped: Vec<u32> = m
                        .mc()
                        .dram()
                        .remapped_logical_rows(&bank)
                        .into_iter()
                        .filter(|&r| r < rows)
                        .collect();
                    let remap_tp = suspects
                        .iter()
                        .filter(|s| truth_remapped.contains(s))
                        .count();
                    let remap_recall = if truth_remapped.is_empty() {
                        1.0
                    } else {
                        remap_tp as f64 / truth_remapped.len() as f64
                    };
                    Ok(vec![vec![
                        fmt_f(remap_fraction),
                        found.len().to_string(),
                        fmt_f(precision),
                        fmt_f(recall),
                        suspects.len().to_string(),
                        fmt_f(remap_recall),
                    ]])
                })
            })
            .collect()
    }
}
