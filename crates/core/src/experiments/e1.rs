//! **E1** (§3): the worsening-Rowhammer trend — flips and
//! time-to-first-flip across DRAM generations (MACs scaled 1/1000 for
//! tractable runs; ratios preserved).

use super::common::accesses;
use super::engine::{Cell, CellCtx};
use super::Experiment;
use crate::machine::MachineConfig;
use crate::scenario::CloudScenario;
use crate::taxonomy::DefenseKind;
use hammertime_dram::DisturbanceProfile;

pub struct E1;

impl Experiment for E1 {
    fn id(&self) -> &'static str {
        "E1"
    }

    fn title(&self) -> &'static str {
        "DRAM generations: same attack, worsening outcomes (MAC/1000 scale)"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "generation",
            "mac",
            "blast radius",
            "flips",
            "first flip (cycles)",
            "victim rows hit",
        ]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        let quick = ctx.quick;
        DisturbanceProfile::generations()
            .into_iter()
            .map(|(name, profile)| {
                Cell::new(name, move || {
                    let scaled = profile.scaled_down(1_000);
                    let mut cfg = MachineConfig::fast(DefenseKind::None, scaled.mac);
                    cfg.disturbance = DisturbanceProfile {
                        mac: scaled.mac.max(4),
                        flip_prob: 1.0,
                        ..scaled
                    };
                    cfg.assumed_radius = scaled.blast_radius;
                    cfg.faults = ctx.faults;
                    let mut s = CloudScenario::build_sized(cfg, 4)?;
                    s.arm_double_sided(accesses(quick))?;
                    s.run_windows(if quick { 40 } else { 150 });
                    let mut first = None;
                    let flips = s.machine.drain_annotated_flips();
                    let mut victims = std::collections::HashSet::new();
                    for f in &flips {
                        first = Some(first.map_or(f.time.raw(), |t: u64| t.min(f.time.raw())));
                        victims.insert((f.flat_bank, f.victim_row));
                    }
                    Ok(vec![vec![
                        name.to_string(),
                        scaled.mac.max(4).to_string(),
                        scaled.blast_radius.to_string(),
                        flips.len().to_string(),
                        first.map(|f| f.to_string()).unwrap_or_else(|| "-".into()),
                        victims.len().to_string(),
                    ]])
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::experiments::e1_generations;

    #[test]
    fn e1_trend_worsens() {
        let t = e1_generations(true).unwrap();
        let flips: Vec<u64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        // Even the DDR3-era module flips (the original Rowhammer
        // finding), but successive generations flip far more, faster.
        assert!(flips[0] > 0, "DDR3 flips too (Kim et al. '14): {flips:?}");
        assert!(
            flips.windows(2).all(|w| w[1] >= w[0]),
            "flips must be monotone non-decreasing across generations: {flips:?}"
        );
        assert!(
            *flips.last().unwrap() > flips[0] * 10,
            "future node must flip >10x more than DDR3: {flips:?}"
        );
        let first_flip: Vec<u64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(
            first_flip.first() > first_flip.last(),
            "time-to-first-flip must shrink: {first_flip:?}"
        );
    }
}
