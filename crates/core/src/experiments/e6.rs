//! **E6** (§3): scalability — hardware tracker SRAM vs MAC, against
//! the flat footprint of the software primitives. Area is computed
//! for a server-scale system (32 banks x 64 K rows); entries scale as
//! the number of rows that can reach the threshold within a refresh
//! window.

use super::engine::{Cell, CellCtx};
use super::Experiment;
use hammertime_memctrl::mitigation::McMitigationConfig;

pub struct E6;

impl Experiment for E6 {
    fn id(&self) -> &'static str {
        "E6"
    }

    fn title(&self) -> &'static str {
        "Hardware tracker SRAM (bits) vs MAC; software cost stays flat"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "mac",
            "graphene bits",
            "blockhammer bits",
            "twice bits",
            "per-row oracle bits",
            "sw defense bits",
        ]
    }

    // Pure arithmetic — no machine, so faults cannot apply.
    fn cells(&self, _ctx: &CellCtx) -> Vec<Cell> {
        let banks: u64 = 32;
        let rows_per_bank: u32 = 65_536;
        [139_000u64, 50_000, 16_000, 10_000, 4_800, 1_000]
            .into_iter()
            .map(|mac| {
                Cell::new(format!("mac={mac}"), move || {
                    // DDR4-2400 hammer budget per window.
                    let budget = hammertime_dram::TimingParams::ddr4_2400().max_acts_per_window();
                    // A tracker must hold every row that could reach
                    // mac/2 within one window: budget / (mac/2)
                    // entries (Graphene's bound).
                    let entries = ((budget * 2) / mac).max(1) as usize;
                    let graphene = McMitigationConfig::Graphene {
                        table_size: entries,
                        threshold: mac / 2,
                        radius: 2,
                    }
                    .sram_bits(banks, rows_per_bank);
                    // BlockHammer sizes its CBF so false-positive
                    // throttling stays low: counters scale with the
                    // same bound (x8 headroom).
                    let blockhammer = McMitigationConfig::BlockHammer {
                        cbf_counters: entries * 8,
                        hashes: 3,
                        threshold: mac / 2,
                        delay: 1_000,
                        epoch: 1,
                    }
                    .sram_bits(banks, rows_per_bank);
                    let twice = McMitigationConfig::TwiceLite {
                        table_size: entries,
                        threshold: mac / 2,
                        radius: 2,
                        prune_interval: 1,
                    }
                    .sram_bits(banks, rows_per_bank);
                    let oracle = McMitigationConfig::Oracle {
                        fraction: 0.7,
                        mac,
                        radius: 2,
                    }
                    .sram_bits(banks, rows_per_bank);
                    Ok(vec![vec![
                        mac.to_string(),
                        graphene.to_string(),
                        blockhammer.to_string(),
                        twice.to_string(),
                        oracle.to_string(),
                        // The software defenses need only the ACT
                        // counter block: one counter + one address
                        // register per channel.
                        (2u64 * (64 + 64)).to_string(),
                    ]])
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::experiments::e6_scaling;

    #[test]
    fn e6_sram_grows_as_mac_shrinks() {
        let t = e6_scaling().unwrap();
        let col = |row: usize, name: &str| -> u64 {
            let ci = t.columns.iter().position(|c| c == name).unwrap();
            t.rows[row][ci].parse().unwrap()
        };
        for name in ["graphene bits", "blockhammer bits", "twice bits"] {
            for w in 0..t.rows.len() - 1 {
                assert!(
                    col(w + 1, name) >= col(w, name),
                    "{name} must not shrink as MAC drops"
                );
            }
            assert!(
                col(t.rows.len() - 1, name) > col(0, name) * 10,
                "{name} must grow by >10x across the sweep"
            );
        }
        // Software cost is constant.
        let sw0 = col(0, "sw defense bits");
        let swn = col(t.rows.len() - 1, "sw defense bits");
        assert_eq!(sw0, swn);
    }
}
