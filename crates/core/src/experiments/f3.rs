//! **F3**: degraded hardware — how much protection each defense
//! retains when the substrate misbehaves underneath it.
//!
//! Every defense assumes the machinery it rides on works: trackers
//! assume REF fires, interrupt-driven software assumes interrupts
//! arrive, remap tables assume their SRAM holds state. F3 sweeps a
//! canonical fault plan's intensity (0 = healthy, 1 = full plan)
//! against a representative defense slate — CRA-style counting
//! (Graphene), CBT-style counting (TwiceLite), probabilistic (PARA),
//! throttling (BlockHammer), in-DRAM TRR, and the paper's three
//! primitives — and reports surviving flips, fault injections, lost
//! defense activity ("missed" detections vs the healthy baseline),
//! and latency.
//!
//! F3 deliberately ignores the machine-wide [`CellCtx::faults`] plan:
//! its sweep *is* the fault axis, and pinning it to the built-in plan
//! keeps the healthy-baseline column meaningful even when the rest of
//! the suite runs in chaos mode.

use super::common::{accesses, run_attack_with, FAST_MAC};
use super::engine::{Cell, CellCtx};
use super::table::fmt_f;
use super::{ExpTable, Experiment};
use crate::machine::MachineConfig;
use crate::taxonomy::DefenseKind;
use hammertime_common::{FaultPlan, Result};

/// The canonical degraded-hardware plan, scaled by each cell's
/// intensity. Rates are per-opportunity, chosen so the full-intensity
/// run visibly degrades trackers without wedging every machine.
fn base_plan() -> FaultPlan {
    let mut p = FaultPlan::none();
    p.seed = 0xF3F3;
    p.dropped_ref = 0.02;
    p.ghost_ref = 0.01;
    p.trr_miss = 0.25;
    p.dropped_interrupt = 0.15;
    p.delayed_interrupt = 0.25;
    p.stuck_act_count = 0.02;
    p.refresh_nack = 0.10;
    p.remap_corrupt = 0.005;
    p
}

/// Fault-plan intensities swept per defense.
const INTENSITIES: [f64; 3] = [0.0, 0.5, 1.0];

/// The defense slate: the paper's taxonomy exemplars (counter-based
/// CRA≈Graphene, CBT≈TwiceLite, probabilistic PARA, throttling
/// BlockHammer, in-DRAM TRR) plus the three proposed primitives.
fn slate() -> Vec<DefenseKind> {
    DefenseKind::catalog(FAST_MAC)
        .into_iter()
        .filter(|d| {
            matches!(
                d,
                DefenseKind::Graphene { .. }
                    | DefenseKind::TwiceLite { .. }
                    | DefenseKind::Para { .. }
                    | DefenseKind::BlockHammer { .. }
                    | DefenseKind::InDramTrr { .. }
                    | DefenseKind::SubarrayIsolation
                    | DefenseKind::AggressorRemap
                    | DefenseKind::VictimRefreshInstr
            )
        })
        .collect()
}

/// Defense activity visible in a report: the events a healthy run
/// produces that faults can swallow.
fn detections(r: &crate::metrics::SimReport) -> u64 {
    r.overhead.interrupts + r.overhead.refresh_ops + r.mc.throttle_events + r.mc.maintenance_ops
}

pub struct F3;

impl Experiment for F3 {
    fn id(&self) -> &'static str {
        "F3"
    }

    fn title(&self) -> &'static str {
        "Degraded hardware: defense efficacy vs fault-plan intensity"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "defense",
            "intensity",
            "injected",
            "flips",
            "xdom flips",
            "detections",
            "missed",
            "mean latency",
        ]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let quick = ctx.quick;
        let n = accesses(quick);
        let mut cells = Vec::new();
        for defense in slate() {
            for intensity in INTENSITIES {
                cells.push(Cell::new(
                    format!("{}@{intensity:.2}", defense.name()),
                    move || {
                        let mut cfg = MachineConfig::fast(defense, FAST_MAC);
                        let plan = base_plan().scaled(intensity);
                        cfg.faults = if plan.is_inert() { None } else { Some(plan) };
                        let r = run_attack_with(cfg, |s| s.arm_double_sided(n), quick)?;
                        Ok(vec![vec![
                            defense.name().to_string(),
                            fmt_f(intensity),
                            (r.mc.fault_injections + r.dram.fault_injections).to_string(),
                            r.flips_total.to_string(),
                            r.cross_flips_against(2).to_string(),
                            detections(&r).to_string(),
                            // Filled by reduce() against the healthy
                            // baseline row.
                            String::new(),
                            fmt_f(r.mc.mean_latency()),
                        ]])
                    },
                ));
            }
        }
        cells
    }

    fn reduce(&self, quick: bool, results: Vec<super::CellRows>) -> Result<ExpTable> {
        let _ = quick;
        let mut t = ExpTable::new(self.id(), self.title(), self.columns());
        let rows: Vec<Vec<String>> = results.into_iter().flatten().collect();
        // "missed" = defense activity the healthy run produced that the
        // degraded run lost, per defense. A failed baseline cell leaves
        // the column as "-" for that defense.
        for mut row in rows.clone() {
            let baseline = rows
                .iter()
                .find(|r| r[0] == row[0] && r[1] == "0.00")
                .and_then(|r| r[5].parse::<u64>().ok());
            row[6] = match (baseline, row[5].parse::<u64>().ok()) {
                (Some(b), Some(d)) => b.saturating_sub(d).to_string(),
                _ => "-".to_string(),
            };
            t.push(row);
        }
        Ok(t)
    }
}
