//! **E10** (ablation; paper §1 cites ECC-aware attacks): SEC-DED ECC
//! masks isolated flips but multi-bit words survive as detectable-but-
//! uncorrectable errors once the hammer runs long enough.

use super::common::{accesses, FAST_MAC};
use super::engine::{Cell, CellCtx};
use super::Experiment;
use crate::machine::MachineConfig;
use crate::scenario::CloudScenario;
use crate::taxonomy::DefenseKind;
use hammertime_dram::module::EccMode;

pub struct E10;

impl Experiment for E10 {
    fn id(&self) -> &'static str {
        "E10"
    }

    fn title(&self) -> &'static str {
        "ECC ablation: identical raw damage, different software visibility"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "ecc",
            "attack accesses",
            "raw flips",
            "damaged victim lines",
            "visible corrupted lines",
        ]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        let quick = ctx.quick;
        // Short: just past the MAC — isolated flips, the correctable
        // regime. Long: sustained hammer — multi-bit words accumulate.
        let short = FAST_MAC * 2;
        let long = accesses(quick) * 2;
        let mut cells = Vec::new();
        for ecc in [EccMode::None, EccMode::SecDed] {
            for n in [short, long] {
                cells.push(Cell::new(format!("{ecc:?} n={n}"), move || {
                    let mut cfg = MachineConfig::fast(DefenseKind::None, FAST_MAC);
                    cfg.ecc = ecc;
                    cfg.faults = ctx.faults;
                    let mut s = CloudScenario::build_sized(cfg, 4)?;
                    s.arm_double_sided(n)?;
                    s.run_windows(if quick { 60 } else { 200 });
                    let victim = s.victim;
                    let (_, corrected, uncorrectable) = s.machine.scan_domain_ecc(victim);
                    let damaged = corrected + uncorrectable;
                    let visible = match ecc {
                        EccMode::None => damaged,
                        EccMode::SecDed => uncorrectable,
                    };
                    let r = s.report();
                    Ok(vec![vec![
                        format!("{ecc:?}"),
                        n.to_string(),
                        r.flips_total.to_string(),
                        damaged.to_string(),
                        visible.to_string(),
                    ]])
                }));
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use crate::experiments::e10_ecc;

    #[test]
    fn e10_ecc_masks_isolated_flips_only() {
        let t = e10_ecc(true).unwrap();
        let get = |row: usize, col: &str| -> u64 {
            let ci = t.columns.iter().position(|c| c == col).unwrap();
            t.rows[row][ci].parse().unwrap()
        };
        // Rows: [None/short, None/long, SecDed/short, SecDed/long].
        // Raw damage identical between modes at equal attack length.
        assert_eq!(get(0, "raw flips"), get(2, "raw flips"));
        assert_eq!(get(1, "raw flips"), get(3, "raw flips"));
        // Without ECC everything is visible.
        assert_eq!(
            get(0, "visible corrupted lines"),
            get(0, "damaged victim lines")
        );
        // SEC-DED hides the short attack entirely...
        assert!(get(2, "damaged victim lines") > 0);
        assert_eq!(get(2, "visible corrupted lines"), 0);
        // ...but the sustained attack overwhelms it.
        assert!(get(3, "visible corrupted lines") > 0);
    }
}
