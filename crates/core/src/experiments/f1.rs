//! **F1** (paper Fig. 1): row-buffer semantics — measured latency of
//! hit, miss (empty bank), and conflict accesses.

use super::engine::{Cell, CellCtx};
use super::Experiment;
use hammertime_common::DomainId;

pub struct F1;

impl Experiment for F1 {
    fn id(&self) -> &'static str {
        "F1"
    }

    fn title(&self) -> &'static str {
        "Row-buffer behaviour (DDR4-2400 command-clock cycles)"
    }

    fn columns(&self) -> &'static [&'static str] {
        &["access type", "commands", "latency (cycles)"]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        // One cell: the three probes share controller state (the hit
        // needs the row the miss opened), so they cannot be split.
        vec![Cell::new("rowbuffer-probes", move || {
            use hammertime_common::{CacheLineAddr, Cycle, RequestSource};
            use hammertime_dram::DramConfig;
            use hammertime_memctrl::request::{MemRequest, RequestKind};
            use hammertime_memctrl::{MemCtrl, MemCtrlConfig};

            let mut dram_cfg = DramConfig::test_config(1_000_000);
            dram_cfg.geometry = hammertime_common::Geometry::medium();
            dram_cfg.timing = hammertime_dram::TimingParams::ddr4_2400();
            dram_cfg.faults = ctx.faults;
            let mut mc_cfg = MemCtrlConfig::baseline();
            mc_cfg.faults = ctx.faults;
            let mut mc = MemCtrl::new(mc_cfg, dram_cfg, 1)?;
            let g = *mc.map().geometry();
            let stripe = g.total_lines() / g.rows_per_bank() as u64;
            let submit = |mc: &mut MemCtrl, id: u64, line: u64| {
                mc.submit(MemRequest {
                    id,
                    line: CacheLineAddr(line),
                    kind: RequestKind::Read,
                    source: RequestSource::Core(0),
                    domain: DomainId(1),
                    arrival: mc.now(),
                })
                .expect("submit");
            };
            // Miss on an empty bank.
            submit(&mut mc, 1, 0);
            mc.drain();
            let miss = mc.drain_completions()[0].latency();
            // Hit on the now-open row.
            submit(&mut mc, 2, 4); // same row, next column under interleave
            mc.drain();
            let hit_c = mc.drain_completions();
            let hit = hit_c[0].latency();
            assert!(hit_c[0].row_hit);
            // Conflict: different row, same bank.
            submit(&mut mc, 3, stripe);
            mc.drain();
            let conflict = mc.drain_completions()[0].latency();
            let _ = Cycle::ZERO;
            Ok(vec![
                vec!["row-buffer hit".into(), "RD".into(), hit.to_string()],
                vec!["empty-bank miss".into(), "ACT+RD".into(), miss.to_string()],
                vec![
                    "row conflict".into(),
                    "PRE+ACT+RD".into(),
                    conflict.to_string(),
                ],
            ])
        })]
    }
}

#[cfg(test)]
mod tests {
    use crate::experiments::f1_rowbuffer;

    #[test]
    fn f1_latency_ordering() {
        let t = f1_rowbuffer().unwrap();
        let get = |k: &str| -> u64 { t.get(k, "latency (cycles)").unwrap().parse().unwrap() };
        let hit = get("row-buffer hit");
        let miss = get("empty-bank miss");
        let conflict = get("row conflict");
        assert!(hit < miss, "hit {hit} must beat miss {miss}");
        assert!(miss < conflict, "miss {miss} must beat conflict {conflict}");
    }
}
