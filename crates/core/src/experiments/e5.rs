//! **E5** (§4.3): refresh mechanisms — the proposed instruction vs
//! REF_NEIGHBORS vs the convoluted flush+load path, plus the
//! blast-radius adaptability sweep.

use super::common::{accesses, FAST_MAC};
use super::engine::{Cell, CellCtx};
use super::table::fmt_f;
use super::Experiment;
use crate::machine::MachineConfig;
use crate::scenario::{BenignKind, CloudScenario};
use crate::taxonomy::DefenseKind;

pub struct E5;

impl Experiment for E5 {
    fn id(&self) -> &'static str {
        "E5"
    }

    fn title(&self) -> &'static str {
        "Refresh mechanisms: effectiveness and cost"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "mechanism",
            "assumed radius",
            "xdom flips",
            "refresh ops",
            "convoluted ops",
            "mean latency",
        ]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        let quick = ctx.quick;
        let n = accesses(quick);
        let cases = [
            (DefenseKind::VictimRefreshInstr, 2u32),
            (DefenseKind::VictimRefreshRefNeighbors, 2),
            (DefenseKind::VictimRefreshConvoluted, 2),
            // Radius mismatch: software believes radius 1, module is 2.
            (DefenseKind::VictimRefreshInstr, 1),
            (DefenseKind::VictimRefreshRefNeighbors, 1),
        ];
        cases
            .into_iter()
            .map(|(defense, assumed)| {
                Cell::new(format!("{} r{assumed}", defense.name()), move || {
                    let mut cfg = MachineConfig::fast(defense, FAST_MAC);
                    cfg.assumed_radius = assumed;
                    cfg.faults = ctx.faults;
                    let mut s = CloudScenario::build_sized(cfg, 4)?;
                    s.arm_double_sided(n)?;
                    s.add_benign(BenignKind::Random, 2, n / 4)?;
                    s.run_windows(if quick { 40 } else { 150 });
                    let r = s.report();
                    Ok(vec![vec![
                        defense.name().to_string(),
                        assumed.to_string(),
                        r.cross_flips_against(2).to_string(),
                        r.overhead.refresh_ops.to_string(),
                        r.overhead.convoluted_refreshes.to_string(),
                        fmt_f(r.mc.mean_latency()),
                    ]])
                })
            })
            .collect()
    }
}
